// Flight recorder: a bounded, always-on ring of recent notable events.
//
// Trace sinks are opt-in and usually absent in production runs, which
// makes post-mortems blind: when the supervised chain demotes a solver or
// a certificate is refused, the events explaining *why* were never
// captured. The flight recorder closes that gap. Instrumented sites call
// obs::flight_event(...) unconditionally; the event lands in a fixed-size
// ring (overwriting the oldest) regardless of sink state, and is
// additionally forwarded to attached sinks as a normal instant so traces
// stay complete.
//
// Consumers take a watermark (`flight().watermark()`) at the start of a
// unit of work and, on failure, dump everything recorded since as JSONL
// (`dump_jsonl`). guard::SupervisedScheduler does exactly this on
// demotion, certification failure, and refuted-infeasibility escalation;
// `letdma_report` renders the dump as a replayable timeline.
//
// The ring is mutex-protected: recording sites are rare (retries,
// demotions, incumbents, injected faults), so contention is not a
// concern, and a mutex keeps the sequence numbers and slots coherent.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "letdma/obs/obs.hpp"

namespace letdma::obs {

/// One recorded event with its global sequence number (monotonic from 0;
/// gaps after `since()` mean the ring wrapped and events were lost).
struct FlightEvent {
  std::uint64_t seq = 0;
  Event event;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Appends an event (overwriting the oldest when full); returns its
  /// sequence number.
  std::uint64_t record(Event event);

  /// The sequence number the *next* record() will get. Take this before a
  /// unit of work; pass it to since()/dump_jsonl() afterwards.
  std::uint64_t watermark() const;

  /// Events with seq >= `watermark` still present in the ring, oldest
  /// first. Events overwritten since the watermark are simply absent.
  std::vector<FlightEvent> since(std::uint64_t watermark = 0) const;

  /// Total events overwritten before they were ever read.
  std::uint64_t total_recorded() const { return watermark(); }
  std::size_t capacity() const { return capacity_; }

  /// Writes events since `watermark` as JSONL, one
  /// `{"type":"flight","seq":N,...}` object per line. Returns the number
  /// of lines written.
  std::size_t dump_jsonl(std::ostream& out, std::uint64_t watermark = 0) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<FlightEvent> ring_;  // slot = seq % capacity_
  std::uint64_t next_seq_ = 0;
};

/// The process-global recorder (leaked, like the Registry).
FlightRecorder& flight();

/// Records an instant into the flight ring *always*, and mirrors it to
/// attached trace sinks when any are present. This is what instrumented
/// sites call for events that must survive into a post-mortem.
void flight_event(std::string name, std::string category,
                  std::vector<Arg> args = {}, Level level = Level::kInfo);

}  // namespace letdma::obs
