// Log-bucketed latency/size histograms with lock-free recording.
//
// Like obs::Counter, histograms are *always on*: recording does not depend
// on any sink being attached, so benches and tests can read percentile
// snapshots back programmatically, and `letdma_report` can render them
// from the metrics stream. The record path is a handful of relaxed atomic
// RMWs on a registry-owned cell (stable for the process lifetime); there
// is no lock and no allocation.
//
// Buckets are geometric: kSubBuckets buckets per octave (powers of two),
// so relative resolution is constant (~19% at 4 sub-buckets) across the
// full range — the right shape for latencies spanning nanoseconds to
// minutes. Percentiles are reconstructed from the bucket counts using the
// geometric midpoint of the owning bucket, which bounds the error by the
// bucket width.
//
// Intended use:
//
//   static obs::Histogram solve_ms("engine.solve_ms.milp");
//   solve_ms.record(outcome.wall_sec * 1e3);
//
//   const obs::HistogramSnapshot s = solve_ms.snapshot();
//   printf("p99=%.3f max=%.3f\n", s.p99, s.max);
//
// or, scope-timed (records microseconds on destruction):
//
//   { obs::ScopedLatency t("milp.node_lp_us"); lp.solve(); }
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace letdma::obs {

namespace detail {

/// Geometric bucket layout: bucket i covers values in
/// [2^((i - kZeroBucket) / kSubBuckets), 2^((i + 1 - kZeroBucket) / kSubBuckets)).
/// With kZeroBucket = 40 and 192 buckets the representable range is
/// ~1e-3 .. ~2.4e11 (in the caller's unit); values outside clamp to the
/// edge buckets, and values <= 0 land in bucket 0.
inline constexpr int kHistogramBuckets = 192;
inline constexpr int kSubBuckets = 4;
inline constexpr int kZeroBucket = 40;

int bucket_index(double value);
/// Geometric midpoint of bucket `i` — the value a percentile inside the
/// bucket is reported as.
double bucket_value(int i);

/// Registry-owned storage; pointers stay stable for the process lifetime.
struct HistogramCell {
  std::array<std::atomic<std::int64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::int64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> max{0.0};

  void record(double value);
  void reset();
};

}  // namespace detail

/// A point-in-time view of one histogram. Percentiles are bucket-midpoint
/// reconstructions (exact for `max`, which is tracked separately).
struct HistogramSnapshot {
  std::int64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::array<std::int64_t, detail::kHistogramBuckets> buckets{};

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Bucket-midpoint value at quantile `q` in [0, 1].
  double percentile(double q) const;
};

HistogramSnapshot snapshot_of(const detail::HistogramCell& cell);

/// Always-on histogram with a lock-free record path; the cell is resolved
/// by name once at construction (same registry discipline as Counter).
class Histogram {
 public:
  explicit Histogram(const std::string& name);
  void record(double value) { cell_->record(value); }
  HistogramSnapshot snapshot() const { return snapshot_of(*cell_); }

 private:
  detail::HistogramCell* cell_;
};

/// RAII scope timer: records the scope's wall time into a histogram on
/// destruction. `scale` converts from microseconds (1.0 = record us,
/// 1e-3 = record ms).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& hist, double scale = 1.0)
      : hist_(&hist), scale_(scale),
        t0_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0_)
            .count();
    hist_->record(us * scale_);
  }

 private:
  Histogram* hist_;
  double scale_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace letdma::obs
