// letdma::obs — structured tracing, metrics, and logging for the whole
// stack.
//
// Three independent facilities share one process-global Registry:
//
//   * Trace events. Spans (RAII ScopedSpan -> Chrome "complete" events),
//     instants, and counter samples flow to attached Sinks. With no sink
//     attached the emit path is a single relaxed atomic load; with
//     LETDMA_OBS_ENABLED=0 (CMake -DLETDMA_ENABLE_TRACING=OFF) it compiles
//     out entirely.
//   * Counters. Always-on monotonic accumulators (lock-free after first
//     registration) that benches and tests can read back; `sample()`
//     additionally publishes the current value as a trace event.
//   * Logging. Leveled, category-tagged diagnostics in one consistent
//     format. Delivered to sinks that opt in (`wants_logs()`), falling
//     back to stderr when none is attached, so library code never prints
//     ad hoc. Logging stays functional when tracing is compiled out.
//
// Sinks are provided in sinks.hpp: StderrLogSink (human-readable),
// JsonlMetricsSink (one JSON object per line), and ChromeTraceSink
// (trace-event JSON loadable in Perfetto / chrome://tracing).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#ifndef LETDMA_OBS_ENABLED
#define LETDMA_OBS_ENABLED 1
#endif

namespace letdma::obs {

enum class Level { kDebug = 0, kInfo, kWarn, kError };

/// One-letter tag used by the textual renderings ("D", "I", "W", "E").
const char* level_tag(Level level);

using ArgValue = std::variant<std::int64_t, double, bool, std::string>;

struct Arg {
  std::string key;
  ArgValue value;
};

enum class Phase {
  kComplete,  // a span with a start and a duration
  kInstant,   // a point event
  kCounter,   // a sampled counter value (in args["value"])
  kLog,       // a log line (level + message in args["message"])
};

/// A single observation. Timestamps are microseconds; trace events use
/// the registry's wall clock (us since process start) unless the emitter
/// overrides `ts_us` with a domain clock (the simulator uses simulated
/// time on its own track group).
struct Event {
  Phase phase = Phase::kInstant;
  std::string name;
  std::string category;
  double ts_us = 0.0;
  double dur_us = 0.0;  // complete events only
  int track = 0;        // registry track id (maps to pid/tid in sinks)
  Level level = Level::kInfo;
  std::vector<Arg> args;
};

/// Consumer of events. `consume` is serialized by the Registry, but sinks
/// used directly (tests, tools) should be internally thread-safe.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void consume(const Event& event) = 0;
  virtual void flush() {}
  /// Log-phase events are delivered only to sinks that opt in.
  virtual bool wants_logs() const { return false; }
};

/// A named timeline. Track 0 is the default "letdma" track (pid 0);
/// the simulator registers per-core tracks under pid 1 ("simulation") so
/// wall-clock and simulated-time events do not interleave in viewers.
struct TrackInfo {
  int id = 0;
  std::string name;
  int pid = 0;
};

namespace detail {
struct HistogramCell;  // histogram.hpp
}

class Registry {
 public:
  static Registry& instance();

  // --- trace sinks --------------------------------------------------------
  void attach(std::shared_ptr<Sink> sink);
  void detach(const std::shared_ptr<Sink>& sink);
  /// True when at least one sink is attached (single relaxed load).
  bool tracing_active() const {
    return sink_count_.load(std::memory_order_relaxed) > 0;
  }
  void emit(Event event);
  /// Flushes every attached sink. Registered with std::atexit on first
  /// construction so JSONL / Chrome-trace files are terminated even when
  /// a tool exits without detaching its sinks.
  void flush_sinks();

  // --- clock --------------------------------------------------------------
  /// Microseconds of wall time since the registry was created.
  double now_us() const;

  // --- tracks -------------------------------------------------------------
  /// Returns the id for `name`, registering it on first use.
  int track(const std::string& name, int pid = 0);
  std::vector<TrackInfo> tracks() const;

  // --- counters -----------------------------------------------------------
  /// Monotonic add; the counter is created on first use. Counters are
  /// always live (independent of sinks) so code can assert on them.
  void counter_add(const std::string& name, std::int64_t delta);
  std::int64_t counter_value(const std::string& name) const;
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  /// Zeroes every counter (test isolation; ids/names stay registered).
  void reset_counters();
  /// Emits the counter's current value as a kCounter trace event.
  void sample_counter(const std::string& name);

  // --- logging ------------------------------------------------------------
  void set_log_threshold(Level level);
  Level log_threshold() const;
  /// Routes to log-accepting sinks; falls back to stderr ("[letdma] T
  /// <category>: <message>" with T the level tag) when none is attached.
  void log(Level level, std::string_view category, std::string_view message);

  /// Pointer to the counter cell for `name` (stable for process lifetime).
  std::atomic<std::int64_t>* counter_cell(const std::string& name);

  // --- histograms ---------------------------------------------------------
  /// Pointer to the histogram cell for `name` (stable for process
  /// lifetime; created on first use). See histogram.hpp for the
  /// Histogram/HistogramSnapshot API layered on top.
  detail::HistogramCell* histogram_cell(const std::string& name);
  /// Names of every registered histogram, sorted.
  std::vector<std::string> histogram_names() const;
  /// Zeroes every histogram (test isolation; names stay registered).
  void reset_histograms();
  /// Emits the histogram's p50/p90/p99/max as one kCounter trace event
  /// (multi-series counter in Chrome trace viewers).
  void sample_histogram(const std::string& name);

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
  std::atomic<int> sink_count_{0};
};

// ---------------------------------------------------------------------------
// Free-function convenience layer (what instrumentation sites call).
// ---------------------------------------------------------------------------

inline bool enabled() {
#if LETDMA_OBS_ENABLED
  return Registry::instance().tracing_active();
#else
  return false;
#endif
}

inline double now_us() { return Registry::instance().now_us(); }

inline void emit(Event event) {
#if LETDMA_OBS_ENABLED
  Registry::instance().emit(std::move(event));
#else
  (void)event;
#endif
}

/// Emits an instant event (no-op without sinks / when compiled out).
inline void instant(std::string name, std::string category,
                    std::vector<Arg> args = {}, int track = 0) {
#if LETDMA_OBS_ENABLED
  if (!enabled()) return;
  Event e;
  e.phase = Phase::kInstant;
  e.name = std::move(name);
  e.category = std::move(category);
  e.ts_us = Registry::instance().now_us();
  e.track = track;
  e.args = std::move(args);
  Registry::instance().emit(std::move(e));
#else
  (void)name;
  (void)category;
  (void)args;
  (void)track;
#endif
}

inline void log(Level level, std::string_view category,
                std::string_view message) {
  Registry::instance().log(level, category, message);
}
inline void log_debug(std::string_view cat, std::string_view msg) {
  log(Level::kDebug, cat, msg);
}
inline void log_info(std::string_view cat, std::string_view msg) {
  log(Level::kInfo, cat, msg);
}
inline void log_warn(std::string_view cat, std::string_view msg) {
  log(Level::kWarn, cat, msg);
}
inline void log_error(std::string_view cat, std::string_view msg) {
  log(Level::kError, cat, msg);
}

/// Always-on monotonic counter with a lock-free hot path. Intended use:
///
///   static obs::Counter builds("let.greedy.builds");
///   builds.add();
class Counter {
 public:
  explicit Counter(const std::string& name)
      : cell_(Registry::instance().counter_cell(name)) {}
  void add(std::int64_t delta = 1) {
    cell_->fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t>* cell_;
};

/// RAII span: emits a Chrome "complete" event covering its lifetime.
/// Construction snapshots the clock only when a sink is attached; a span
/// armed at construction still emits even if sinks detach first (the
/// registry drops events with no consumer).
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string category, int track = 0) {
#if LETDMA_OBS_ENABLED
    if (!enabled()) return;
    armed_ = true;
    event_.phase = Phase::kComplete;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.track = track;
    event_.ts_us = Registry::instance().now_us();
#else
    (void)name;
    (void)category;
    (void)track;
#endif
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value to the span (shown under "args" in viewers).
  void arg(std::string key, ArgValue value) {
#if LETDMA_OBS_ENABLED
    if (armed_) event_.args.push_back({std::move(key), std::move(value)});
#else
    (void)key;
    (void)value;
#endif
  }

  ~ScopedSpan() {
#if LETDMA_OBS_ENABLED
    if (!armed_) return;
    event_.dur_us = Registry::instance().now_us() - event_.ts_us;
    Registry::instance().emit(std::move(event_));
#endif
  }

 private:
#if LETDMA_OBS_ENABLED
  Event event_;
  bool armed_ = false;
#endif
};

}  // namespace letdma::obs
