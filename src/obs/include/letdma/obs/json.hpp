// Minimal JSON writing helpers shared by the obs sinks, the simulator
// trace export, and the bench metrics emitter. Writing only — the test
// suite carries its own tiny reader for validation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "letdma/obs/obs.hpp"

namespace letdma::obs::json {

/// Appends `s` as a quoted, escaped JSON string.
void append_string(std::string& out, std::string_view s);

/// Appends a finite double with round-trip precision; non-finite values
/// (which JSON cannot represent) become null.
void append_number(std::string& out, double v);

/// Appends an ArgValue as the matching JSON scalar.
void append_value(std::string& out, const ArgValue& v);

/// Appends `{"k":v,...}` for an arg list (empty list -> `{}`).
void append_args_object(std::string& out, const std::vector<Arg>& args);

/// Renders one event as a JSONL line (trailing newline included) in the
/// schema JsonlMetricsSink writes. When `type_override` is non-null it
/// replaces the phase-derived "type" and a "seq":`seq` field is added —
/// the flight-recorder dump format.
std::string event_jsonl_line(const Event& event,
                             const char* type_override = nullptr,
                             std::uint64_t seq = 0);

}  // namespace letdma::obs::json
