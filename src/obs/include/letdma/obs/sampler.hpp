// Low-rate background sampling of solver internals.
//
// Spans and instants show *events*; they cannot show slowly-evolving
// state like "how deep is the branch-and-bound queue" or "what fraction
// of workers are idle right now". A Sampler owns a thread that wakes at a
// fixed low rate (default 20 Hz, override with LETDMA_SAMPLE_HZ) and
// publishes a set of registered gauges as Chrome-trace counter events, so
// the existing trace export grows gauge timelines alongside the spans.
//
// Gauges are closures evaluated on the sampler thread — they must be
// thread-safe with respect to the code they observe (read atomics, or
// take the same lock the producer takes) and must outlive the sampler.
// The canonical scoped use inside a solve:
//
//   obs::Sampler sampler;
//   sampler.add_gauge("milp.queue_depth", [&] { ... });
//   sampler.add_counter_rate("ls.accept_per_sec",
//                            "let.local_search.accepted");
//   sampler.start();          // no-op when no trace sink is attached
//   ... solve ...
//   sampler.stop();           // joins; also runs one final sample
//
// Samplers never start a thread when tracing is inactive, so the hot path
// of an untraced run pays nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace letdma::obs {

class Sampler {
 public:
  struct Options {
    /// Seconds between samples; LETDMA_SAMPLE_HZ (samples per second)
    /// overrides when set and positive.
    double period_sec = 0.05;
    std::string category = "sampler";
    int track = 0;
  };

  Sampler() : Sampler(Options{}) {}
  explicit Sampler(Options options);
  ~Sampler();  // stops and joins

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registers a gauge published as counter event `name` each tick.
  /// Call before start().
  void add_gauge(std::string name, std::function<double()> fn);

  /// Convenience gauge: the per-second rate of a registry counter,
  /// computed from the delta between consecutive samples.
  void add_counter_rate(std::string name, std::string counter_name);

  /// Spawns the sampler thread when tracing is active and gauges exist;
  /// otherwise a no-op. Idempotent.
  void start();

  /// Stops the thread (emitting one final sample) and joins. Idempotent;
  /// also called by the destructor.
  void stop();

  bool running() const { return running_; }

 private:
  struct Gauge {
    std::string name;
    std::function<double()> fn;
  };

  void run();
  void sample_once(double now_us);

  Options options_;
  std::vector<Gauge> gauges_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace letdma::obs
