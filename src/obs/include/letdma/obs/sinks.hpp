// Event sinks: human-readable stderr logging, JSONL metrics, and Chrome
// trace-event JSON (Perfetto / chrome://tracing).
#pragma once

#include <cstdio>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "letdma/obs/obs.hpp"

namespace letdma::obs {

/// Renders every event (including logs) as one stderr line in the same
/// format the registry's fallback logger uses, e.g.
///   [letdma +12.3ms] I milp: incumbent obj=16 nodes=4
///   [letdma +40.1ms] span let.milp.solve (27.7ms) vars=812
/// Attach one to see the full event stream while debugging.
class StderrLogSink : public Sink {
 public:
  explicit StderrLogSink(Level threshold = Level::kDebug)
      : threshold_(threshold) {}
  void consume(const Event& event) override;
  bool wants_logs() const override { return true; }

 private:
  Level threshold_;
  std::mutex mutex_;
};

/// One JSON object per event per line — the machine-readable metrics
/// stream benches append to. Log events are included (they carry the
/// level under "level").
class JsonlMetricsSink : public Sink {
 public:
  /// Appends to `path` ("a" mode); throws support::PreconditionError when
  /// the file cannot be opened.
  explicit JsonlMetricsSink(const std::string& path);
  /// Writes to a caller-owned stream (tests).
  explicit JsonlMetricsSink(std::ostream& out);
  ~JsonlMetricsSink() override;

  void consume(const Event& event) override;
  void flush() override;
  bool wants_logs() const override { return true; }

 private:
  std::FILE* file_ = nullptr;   // owned, used for the path constructor
  std::ostream* stream_ = nullptr;
  std::mutex mutex_;
};

/// Buffers events and serializes them as Chrome trace-event JSON:
/// `{"traceEvents":[...]}` with process/thread metadata derived from the
/// registry's track table. Complete events become "X" slices, instants
/// "i", counters "C"; log events are rendered as instants on their track
/// so they show up in context.
class ChromeTraceSink : public Sink {
 public:
  ChromeTraceSink() = default;
  /// With a path, flush() rewrites the complete (terminated) trace file.
  /// Combined with the registry's atexit flush, the file on disk is
  /// always loadable even when the process exits mid-trace.
  explicit ChromeTraceSink(std::string path) : path_(std::move(path)) {}

  void consume(const Event& event) override;
  void flush() override;
  bool wants_logs() const override { return true; }

  std::size_t size() const;
  void write(std::ostream& out) const;
  /// Returns false (and logs an error) when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::string path_;
};

}  // namespace letdma::obs
