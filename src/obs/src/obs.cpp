#include "letdma/obs/obs.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>

#include "letdma/obs/histogram.hpp"

namespace letdma::obs {

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "D";
    case Level::kInfo: return "I";
    case Level::kWarn: return "W";
    case Level::kError: return "E";
  }
  return "?";
}

struct Registry::Impl {
  using Clock = std::chrono::steady_clock;
  Clock::time_point epoch = Clock::now();

  mutable std::mutex mutex;
  std::vector<std::shared_ptr<Sink>> sinks;
  bool any_log_sink = false;

  // Counter/histogram cells live in deques so pointers stay stable
  // forever.
  std::deque<std::atomic<std::int64_t>> cells;
  std::map<std::string, std::atomic<std::int64_t>*> counters;
  std::deque<detail::HistogramCell> hist_cells;
  std::map<std::string, detail::HistogramCell*> histograms;

  std::vector<TrackInfo> tracks;
  std::map<std::string, int> track_ids;

  std::atomic<int> log_threshold{static_cast<int>(Level::kInfo)};
};

Registry::Registry() : impl_(new Impl) {
  // Track 0 always exists: the process-wide default timeline.
  impl_->tracks.push_back({0, "letdma", 0});
  impl_->track_ids.emplace("letdma", 0);
  // Terminate file-backed sinks on normal exit even when a tool forgets
  // to detach: an unterminated Chrome-trace array is unloadable, and a
  // truncated JSONL tail corrupts the metrics stream.
  std::atexit([] { Registry::instance().flush_sinks(); });
}

Registry& Registry::instance() {
  // Leaked on purpose: instrumentation may run during static destruction.
  static Registry* g = new Registry();
  return *g;
}

void Registry::attach(std::shared_ptr<Sink> sink) {
  if (sink == nullptr) return;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->sinks.push_back(std::move(sink));
  impl_->any_log_sink = false;
  for (const auto& s : impl_->sinks) {
    if (s->wants_logs()) impl_->any_log_sink = true;
  }
  sink_count_.store(static_cast<int>(impl_->sinks.size()),
                    std::memory_order_relaxed);
}

void Registry::detach(const std::shared_ptr<Sink>& sink) {
  std::shared_ptr<Sink> removed;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto& sinks = impl_->sinks;
    for (auto it = sinks.begin(); it != sinks.end(); ++it) {
      if (*it == sink) {
        removed = *it;
        sinks.erase(it);
        break;
      }
    }
    impl_->any_log_sink = false;
    for (const auto& s : sinks) {
      if (s->wants_logs()) impl_->any_log_sink = true;
    }
    sink_count_.store(static_cast<int>(sinks.size()),
                      std::memory_order_relaxed);
  }
  // Flushed outside the lock: sink flushes may re-enter the registry
  // (ChromeTraceSink::flush reads the track table).
  if (removed != nullptr) removed->flush();
}

void Registry::emit(Event event) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& sink : impl_->sinks) sink->consume(event);
}

void Registry::flush_sinks() {
  // Copy first: flushes may re-enter the registry (see detach()).
  std::vector<std::shared_ptr<Sink>> sinks;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    sinks = impl_->sinks;
  }
  for (const auto& sink : sinks) sink->flush();
}

double Registry::now_us() const {
  return std::chrono::duration<double, std::micro>(Impl::Clock::now() -
                                                   impl_->epoch)
      .count();
}

int Registry::track(const std::string& name, int pid) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->track_ids.find(name);
  if (it != impl_->track_ids.end()) return it->second;
  const int id = static_cast<int>(impl_->tracks.size());
  impl_->tracks.push_back({id, name, pid});
  impl_->track_ids.emplace(name, id);
  return id;
}

std::vector<TrackInfo> Registry::tracks() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->tracks;
}

std::atomic<std::int64_t>* Registry::counter_cell(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return it->second;
  impl_->cells.emplace_back(0);
  std::atomic<std::int64_t>* cell = &impl_->cells.back();
  impl_->counters.emplace(name, cell);
  return cell;
}

void Registry::counter_add(const std::string& name, std::int64_t delta) {
  counter_cell(name)->fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Registry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) return 0;
  return it->second->load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::int64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, cell] : impl_->counters) {
    out.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return out;
}

void Registry::reset_counters() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, cell] : impl_->counters) {
    (void)name;
    cell->store(0, std::memory_order_relaxed);
  }
}

void Registry::sample_counter(const std::string& name) {
  if (!tracing_active()) return;
  Event e;
  e.phase = Phase::kCounter;
  e.name = name;
  e.category = "counter";
  e.ts_us = now_us();
  e.args.push_back({"value", counter_value(name)});
  emit(std::move(e));
}

detail::HistogramCell* Registry::histogram_cell(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return it->second;
  impl_->hist_cells.emplace_back();
  detail::HistogramCell* cell = &impl_->hist_cells.back();
  impl_->histograms.emplace(name, cell);
  return cell;
}

std::vector<std::string> Registry::histogram_names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, cell] : impl_->histograms) {
    (void)cell;
    out.push_back(name);
  }
  return out;
}

void Registry::reset_histograms() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, cell] : impl_->histograms) {
    (void)name;
    cell->reset();
  }
}

void Registry::sample_histogram(const std::string& name) {
  if (!tracing_active()) return;
  const HistogramSnapshot snap = snapshot_of(*histogram_cell(name));
  Event e;
  e.phase = Phase::kCounter;
  e.name = name;
  e.category = "histogram";
  e.ts_us = now_us();
  e.args.push_back({"p50", snap.p50});
  e.args.push_back({"p90", snap.p90});
  e.args.push_back({"p99", snap.p99});
  e.args.push_back({"max", snap.max});
  e.args.push_back({"count", snap.count});
  emit(std::move(e));
}

void Registry::set_log_threshold(Level level) {
  impl_->log_threshold.store(static_cast<int>(level),
                             std::memory_order_relaxed);
}

Level Registry::log_threshold() const {
  return static_cast<Level>(
      impl_->log_threshold.load(std::memory_order_relaxed));
}

void Registry::log(Level level, std::string_view category,
                   std::string_view message) {
  if (static_cast<int>(level) <
      impl_->log_threshold.load(std::memory_order_relaxed)) {
    return;
  }
  const double ts = now_us();
  bool delivered = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->any_log_sink) {
      Event e;
      e.phase = Phase::kLog;
      e.name = std::string(category);
      e.category = std::string(category);
      e.level = level;
      e.ts_us = ts;
      e.args.push_back({"message", std::string(message)});
      for (const auto& sink : impl_->sinks) {
        if (sink->wants_logs()) {
          sink->consume(e);
          delivered = true;
        }
      }
    }
  }
  if (!delivered) {
    std::fprintf(stderr, "[letdma +%.1fms] %s %.*s: %.*s\n", ts / 1000.0,
                 level_tag(level), static_cast<int>(category.size()),
                 category.data(), static_cast<int>(message.size()),
                 message.data());
  }
}

}  // namespace letdma::obs
