#include "letdma/obs/sinks.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "letdma/obs/json.hpp"
#include "letdma/support/error.hpp"

namespace letdma::obs {

namespace json {

void append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_value(std::string& out, const ArgValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, *i);
    out += buf;
  } else if (const auto* d = std::get_if<double>(&v)) {
    append_number(out, *d);
  } else if (const auto* b = std::get_if<bool>(&v)) {
    out += *b ? "true" : "false";
  } else {
    append_string(out, std::get<std::string>(v));
  }
}

void append_args_object(std::string& out, const std::vector<Arg>& args) {
  out.push_back('{');
  bool first = true;
  for (const Arg& a : args) {
    if (!first) out.push_back(',');
    first = false;
    append_string(out, a.key);
    out.push_back(':');
    append_value(out, a.value);
  }
  out.push_back('}');
}

}  // namespace json

namespace {

const char* phase_name(Phase phase);

}  // namespace

namespace json {

std::string event_jsonl_line(const Event& event, const char* type_override,
                             std::uint64_t seq) {
  std::string line = "{\"type\":\"";
  line += type_override != nullptr ? type_override : phase_name(event.phase);
  line += '"';
  if (type_override != nullptr) {
    line += ",\"seq\":" + std::to_string(seq);
  }
  line += ",\"name\":";
  append_string(line, event.name);
  line += ",\"cat\":";
  append_string(line, event.category);
  line += ",\"ts_us\":";
  append_number(line, event.ts_us);
  if (event.phase == Phase::kComplete) {
    line += ",\"dur_us\":";
    append_number(line, event.dur_us);
  }
  if (event.phase == Phase::kLog || type_override != nullptr) {
    line += ",\"level\":\"";
    line += level_tag(event.level);
    line += '"';
  }
  if (!event.args.empty()) {
    line += ",\"args\":";
    append_args_object(line, event.args);
  }
  line += "}\n";
  return line;
}

}  // namespace json

namespace {

std::string render_arg_value(const ArgValue& v) {
  std::string out;
  if (const auto* s = std::get_if<std::string>(&v)) {
    out = *s;
  } else {
    json::append_value(out, v);
  }
  return out;
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kComplete: return "span";
    case Phase::kInstant: return "instant";
    case Phase::kCounter: return "counter";
    case Phase::kLog: return "log";
  }
  return "?";
}

}  // namespace

// --- StderrLogSink ---------------------------------------------------------

void StderrLogSink::consume(const Event& event) {
  if (event.phase == Phase::kLog &&
      static_cast<int>(event.level) < static_cast<int>(threshold_)) {
    return;
  }
  std::string line;
  char head[64];
  std::snprintf(head, sizeof head, "[letdma +%.1fms] ", event.ts_us / 1000.0);
  line += head;
  switch (event.phase) {
    case Phase::kLog: {
      line += level_tag(event.level);
      line += ' ';
      line += event.category;
      line += ':';
      for (const Arg& a : event.args) {
        if (a.key == "message") {
          line += ' ';
          line += render_arg_value(a.value);
        }
      }
      break;
    }
    case Phase::kComplete: {
      char dur[40];
      std::snprintf(dur, sizeof dur, " (%.3gms)", event.dur_us / 1000.0);
      line += "span ";
      line += event.name;
      line += dur;
      for (const Arg& a : event.args) {
        line += ' ';
        line += a.key;
        line += '=';
        line += render_arg_value(a.value);
      }
      break;
    }
    case Phase::kInstant:
    case Phase::kCounter: {
      line += phase_name(event.phase);
      line += ' ';
      line += event.name;
      for (const Arg& a : event.args) {
        line += ' ';
        line += a.key;
        line += '=';
        line += render_arg_value(a.value);
      }
      break;
    }
  }
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

// --- JsonlMetricsSink ------------------------------------------------------

JsonlMetricsSink::JsonlMetricsSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {
  if (file_ == nullptr) {
    throw support::PreconditionError("cannot open metrics file " + path);
  }
}

JsonlMetricsSink::JsonlMetricsSink(std::ostream& out) : stream_(&out) {}

JsonlMetricsSink::~JsonlMetricsSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlMetricsSink::consume(const Event& event) {
  const std::string line = json::event_jsonl_line(event);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
  } else {
    stream_->write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

void JsonlMetricsSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fflush(file_);
  } else {
    stream_->flush();
  }
}

// --- ChromeTraceSink -------------------------------------------------------

void ChromeTraceSink::consume(const Event& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

void ChromeTraceSink::flush() {
  if (!path_.empty()) (void)write_file(path_);
}

std::size_t ChromeTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void ChromeTraceSink::write(std::ostream& out) const {
  const std::vector<TrackInfo> tracks = Registry::instance().tracks();
  std::string body = "{\"traceEvents\":[\n";
  bool first = true;
  auto begin_record = [&] {
    if (!first) body += ",\n";
    first = false;
  };

  // Process/thread metadata so Perfetto labels the tracks. Wall-clock
  // events (pid 0) and simulated-time events (other pids) become separate
  // process groups and never share a timeline.
  std::vector<int> pids;
  for (const TrackInfo& t : tracks) {
    bool seen = false;
    for (const int p : pids) seen = seen || p == t.pid;
    if (!seen) pids.push_back(t.pid);
  }
  for (const int pid : pids) {
    begin_record();
    body += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
            std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":";
    json::append_string(body, pid == 0 ? "letdma" : "simulation");
    body += "}}";
  }
  for (const TrackInfo& t : tracks) {
    begin_record();
    body += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
            std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.id) +
            ",\"args\":{\"name\":";
    json::append_string(body, t.name);
    body += "}}";
  }

  auto pid_of = [&](int track) {
    for (const TrackInfo& t : tracks) {
      if (t.id == track) return t.pid;
    }
    return 0;
  };

  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  for (const Event& e : events) {
    begin_record();
    body += "{\"name\":";
    json::append_string(body, e.phase == Phase::kLog
                                  ? ("log:" + e.category)
                                  : e.name);
    body += ",\"cat\":";
    json::append_string(body, e.category.empty() ? "letdma" : e.category);
    body += ",\"ph\":\"";
    switch (e.phase) {
      case Phase::kComplete: body += 'X'; break;
      case Phase::kCounter: body += 'C'; break;
      case Phase::kInstant:
      case Phase::kLog: body += 'i'; break;
    }
    body += "\",\"ts\":";
    json::append_number(body, e.ts_us);
    if (e.phase == Phase::kComplete) {
      body += ",\"dur\":";
      json::append_number(body, e.dur_us);
    }
    if (e.phase == Phase::kInstant || e.phase == Phase::kLog) {
      body += ",\"s\":\"t\"";  // thread-scoped instant
    }
    body += ",\"pid\":" + std::to_string(pid_of(e.track)) +
            ",\"tid\":" + std::to_string(e.track);
    if (!e.args.empty() || e.phase == Phase::kLog) {
      body += ",\"args\":";
      if (e.phase == Phase::kLog) {
        std::vector<Arg> args = e.args;
        args.push_back({"level", std::string(level_tag(e.level))});
        json::append_args_object(body, args);
      } else {
        json::append_args_object(body, e.args);
      }
    }
    body += "}";
  }
  body += "\n]}\n";
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
}

bool ChromeTraceSink::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    Registry::instance().log(Level::kError, "obs",
                             "cannot write trace file " + path);
    return false;
  }
  std::string buffer;
  {
    std::ostringstream os;
    write(os);
    buffer = os.str();
  }
  std::fwrite(buffer.data(), 1, buffer.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace letdma::obs
