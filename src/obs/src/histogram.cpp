#include "letdma/obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "letdma/obs/obs.hpp"

namespace letdma::obs {

namespace detail {

int bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN land in the first bucket
  const int idx =
      kZeroBucket +
      static_cast<int>(std::floor(std::log2(value) *
                                  static_cast<double>(kSubBuckets)));
  return std::clamp(idx, 0, kHistogramBuckets - 1);
}

double bucket_value(int i) {
  return std::exp2((static_cast<double>(i - kZeroBucket) + 0.5) /
                   static_cast<double>(kSubBuckets));
}

void HistogramCell::record(double value) {
  buckets[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) {
    sum.fetch_add(value, std::memory_order_relaxed);
    double seen = max.load(std::memory_order_relaxed);
    while (value > seen &&
           !max.compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
    }
  }
}

void HistogramCell::reset() {
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  count.store(0, std::memory_order_relaxed);
  sum.store(0.0, std::memory_order_relaxed);
  max.store(0.0, std::memory_order_relaxed);
}

}  // namespace detail

double HistogramSnapshot::percentile(double q) const {
  if (count <= 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based (nearest-rank definition).
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(clamped * static_cast<double>(count))));
  std::int64_t seen = 0;
  for (int i = 0; i < detail::kHistogramBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // The top bucket's midpoint can overshoot the true maximum; clamp.
      return std::min(detail::bucket_value(i), max > 0.0 ? max : detail::bucket_value(i));
    }
  }
  return max;
}

HistogramSnapshot snapshot_of(const detail::HistogramCell& cell) {
  HistogramSnapshot s;
  for (int i = 0; i < detail::kHistogramBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        cell.buckets[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    s.count += s.buckets[static_cast<std::size_t>(i)];
  }
  s.sum = cell.sum.load(std::memory_order_relaxed);
  s.max = cell.max.load(std::memory_order_relaxed);
  s.p50 = s.percentile(0.50);
  s.p90 = s.percentile(0.90);
  s.p99 = s.percentile(0.99);
  return s;
}

Histogram::Histogram(const std::string& name)
    : cell_(Registry::instance().histogram_cell(name)) {}

}  // namespace letdma::obs
