#include "letdma/obs/sampler.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <utility>

#include "letdma/obs/obs.hpp"

namespace letdma::obs {

Sampler::Sampler(Options options) : options_(std::move(options)) {
  if (const char* env = std::getenv("LETDMA_SAMPLE_HZ")) {
    const double hz = std::atof(env);
    if (hz > 0.0) options_.period_sec = 1.0 / hz;
  }
}

Sampler::~Sampler() { stop(); }

void Sampler::add_gauge(std::string name, std::function<double()> fn) {
  gauges_.push_back({std::move(name), std::move(fn)});
}

void Sampler::add_counter_rate(std::string name, std::string counter_name) {
  // State lives in a shared_ptr so the closure stays copyable.
  struct RateState {
    std::int64_t last_value = 0;
    double last_us = 0.0;
    bool primed = false;
  };
  auto state = std::make_shared<RateState>();
  auto counter = std::move(counter_name);
  add_gauge(std::move(name), [state, counter] {
    Registry& reg = Registry::instance();
    const std::int64_t value = reg.counter_value(counter);
    const double now = reg.now_us();
    double rate = 0.0;
    if (state->primed && now > state->last_us) {
      rate = static_cast<double>(value - state->last_value) /
             ((now - state->last_us) * 1e-6);
    }
    state->last_value = value;
    state->last_us = now;
    state->primed = true;
    return rate;
  });
}

void Sampler::start() {
  if (running_ || gauges_.empty()) return;
  if (!Registry::instance().tracing_active()) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void Sampler::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void Sampler::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    lock.unlock();
    sample_once(Registry::instance().now_us());
    lock.lock();
    if (stop_requested_) return;
    cv_.wait_for(lock, std::chrono::duration<double>(options_.period_sec),
                 [this] { return stop_requested_; });
    if (stop_requested_) {
      // One closing sample so timelines end at the stop edge.
      lock.unlock();
      sample_once(Registry::instance().now_us());
      return;
    }
  }
}

void Sampler::sample_once(double now_us) {
  if (!Registry::instance().tracing_active()) return;
  for (const Gauge& g : gauges_) {
    Event e;
    e.phase = Phase::kCounter;
    e.name = g.name;
    e.category = options_.category;
    e.ts_us = now_us;
    e.track = options_.track;
    e.args.push_back({"value", g.fn()});
    Registry::instance().emit(std::move(e));
  }
}

}  // namespace letdma::obs
