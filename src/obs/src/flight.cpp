#include "letdma/obs/flight.hpp"

#include <mutex>
#include <utility>

#include "letdma/obs/json.hpp"

namespace letdma::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

std::uint64_t FlightRecorder::record(Event event) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  FlightEvent& slot = ring_[static_cast<std::size_t>(seq % capacity_)];
  slot.seq = seq;
  slot.event = std::move(event);
  return seq;
}

std::uint64_t FlightRecorder::watermark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::vector<FlightEvent> FlightRecorder::since(std::uint64_t watermark) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEvent> out;
  if (next_seq_ == 0) return out;
  const std::uint64_t oldest =
      next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
  const std::uint64_t first = std::max(watermark, oldest);
  out.reserve(static_cast<std::size_t>(next_seq_ - first));
  for (std::uint64_t s = first; s < next_seq_; ++s) {
    out.push_back(ring_[static_cast<std::size_t>(s % capacity_)]);
  }
  return out;
}

std::size_t FlightRecorder::dump_jsonl(std::ostream& out,
                                       std::uint64_t watermark) const {
  const std::vector<FlightEvent> events = since(watermark);
  for (const FlightEvent& fe : events) {
    std::string line =
        json::event_jsonl_line(fe.event, "flight", fe.seq);
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
  return events.size();
}

FlightRecorder& flight() {
  static FlightRecorder* g = new FlightRecorder();  // leaked, like Registry
  return *g;
}

void flight_event(std::string name, std::string category,
                  std::vector<Arg> args, Level level) {
  Event e;
  e.phase = Phase::kInstant;
  e.name = std::move(name);
  e.category = std::move(category);
  e.level = level;
  e.ts_us = Registry::instance().now_us();
  e.args = std::move(args);
  if (Registry::instance().tracing_active()) {
    flight().record(e);
    Registry::instance().emit(std::move(e));
  } else {
    flight().record(std::move(e));
  }
}

}  // namespace letdma::obs
