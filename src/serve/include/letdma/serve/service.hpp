// letdma::serve — multi-tenant scheduling service with a certified solve
// cache.
//
// Service::handle() is one request end to end:
//
//   1. Admission: the tenant's in-flight count is checked against its
//      policy and the requested budget is clamped to the tenant cap
//      (engine::Budget carries it into the solve). Rejections are cheap,
//      counted ("serve.admission.rejected") and never touch the solver.
//   2. Canonicalization: the submitted model is reduced to its canonical
//      form + 128-bit fingerprint (model::canonicalize). Isomorphic
//      submissions — renamed, reordered, renumbered — collapse onto one
//      cache key: (fingerprint, objective).
//   3. Cache: on a hit the cached canonical schedule is un-permuted onto
//      the *requesting* instance (translate_schedule) and independently
//      re-certified by guard::certify against it. Only a certificate
//      makes it a hit; a failure invalidates the entry, records a flight
//      event and falls through to a fresh solve.
//   4. Near-miss reuse: on a fingerprint miss, the cache is scanned for
//      the structurally closest instance (model::canonical_distance on
//      the canonical forms) within nearmiss_max_distance; when one
//      exists, the fresh solve runs the IncrementalScheduler warm-started
//      from its schedule + diff — a certified repair in a fraction of a
//      cold solve. "serve.nearmiss.hit" counts solves the repair served;
//      "serve.nearmiss.reject" counts candidates whose repair fell
//      through to the cold chain.
//   5. Fresh solve: engine::SupervisedScheduler (or the incremental
//      engine when a near-miss candidate seeded it) on the canonical
//      instance (so the result is reusable by every isomorphic tenant),
//      with incumbent streaming through the caller's callback for long
//      solves. Feasible results are cached, then translated + certified
//      exactly like a hit.
//
// Every response that carries a schedule was certified against the
// requesting instance in this process, whether it came from the cache or
// a solver. Per-tenant counters and latency histograms ("serve.requests",
// "serve.request_ms.<tenant>", ...) are always on.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "letdma/engine/supervised.hpp"
#include "letdma/serve/cache.hpp"
#include "letdma/serve/journal.hpp"

namespace letdma::serve {

struct Request {
  /// "solve" (the default), "health" or "stats". The non-solve types are
  /// answered by the socket server without entering the solve path, so a
  /// loaded daemon still answers liveness probes promptly.
  std::string type = "solve";
  /// Caller-chosen id echoed back in the response (and in incumbent
  /// events), so pipelined responses can be matched to requests.
  std::string id;
  std::string tenant = "default";
  /// model::io application text.
  std::string model_text;
  engine::Objective objective = engine::Objective::kMinMaxLatencyRatio;
  /// Wall-clock budget for a fresh solve (cache hits ignore it); clamped
  /// to the tenant policy's max_budget_sec.
  double budget_sec = 1.0;
  /// Include the schedule text (let::write_schedule) in the response.
  bool want_schedule = true;
  /// Emit incumbent updates while the solve runs (socket clients receive
  /// them as "incumbent" events before the final "result" line).
  bool stream_incumbents = false;
  /// Absolute patience for this request in seconds from arrival (0 = no
  /// deadline). Unlike budget_sec — which each supervised chain level
  /// re-bases — the deadline is converted to an absolute
  /// engine::Budget::deadline, so a degrading chain cannot overrun the
  /// caller's cutoff.
  double deadline_sec = 0.0;
};

struct Response {
  std::string id;
  bool ok = false;
  std::string error;  // set when !ok (parse failure, admission, ...)
  engine::Status status = engine::Status::kTimeout;
  /// The served schedule passed guard::certify against the requesting
  /// instance (always true when ok && a schedule is present).
  bool certified = false;
  bool cache_hit = false;
  /// The solve was warm-started from a structurally close cached instance
  /// and the repaired schedule was served (always certified like any
  /// other response).
  bool near_miss = false;
  std::string fingerprint;  // canonical 128-bit hash, 32 hex chars
  /// Canonicalization was exact (see model::Canonicalization::exact).
  bool exact = true;
  double objective_value = 0.0;
  std::string strategy;  // engine strategy that produced the schedule
  double wall_ms = 0.0;  // service-side handling time
  int incumbents = 0;    // improving incumbents seen during a fresh solve
  /// let::write_schedule text on the requesting instance (when ok, a
  /// schedule exists and want_schedule was set).
  std::string schedule_text;

  bool has_schedule() const { return ok && !schedule_text.empty(); }
};

struct IncumbentUpdate {
  double objective = 0.0;
  std::string strategy;
};

/// Per-tenant admission limits.
struct TenantPolicy {
  /// Concurrent requests allowed in the solve path; further requests are
  /// rejected (load shedding, not queueing — the client owns retry).
  int max_inflight = 16;
  /// Hard cap on the per-request solve budget.
  double max_budget_sec = 5.0;
};

struct ServiceOptions {
  std::size_t cache_capacity = 1024;
  int cache_shards = 8;
  TenantPolicy default_policy;
  /// Overrides per tenant name.
  std::map<std::string, TenantPolicy> tenant_policies;
  /// Supervised-chain configuration for fresh solves. The objective field
  /// is overridden per request.
  engine::GuardOptions guard;
  /// Near-miss reuse: on a fingerprint miss, warm-start the solve from
  /// the structurally closest cached instance whose canonical distance
  /// (model::canonical_distance, in [0,1]) is at most this. <= 0 disables
  /// the scan entirely.
  double nearmiss_max_distance = 0.2;
  /// At most this many MRU cache entries are examined per miss (each
  /// examination diffs two canonical forms — cheap, but bounded).
  int nearmiss_scan_limit = 32;
  /// Write-ahead journal path for cache durability; empty disables
  /// journaling. On construction the Service replays the journal,
  /// re-certifies every record (see journal.hpp) and compacts the file to
  /// the surviving set, so a crash-torn or bitrotten journal self-heals.
  std::string journal_path;
  /// Compact once this many records have been appended since the last
  /// compaction (bounds journal growth to O(cache) + O(compact_every)).
  std::int64_t journal_compact_every = 1024;
};

struct ServiceStats {
  std::int64_t requests = 0;
  std::int64_t rejected = 0;
  std::int64_t certified = 0;
  bool draining = false;
  CacheStats cache;
  JournalStats journal;
};

class Service {
 public:
  using IncumbentCallback = std::function<void(const IncumbentUpdate&)>;

  explicit Service(ServiceOptions options = {});

  /// Handles one request synchronously. Thread-safe; the socket server
  /// calls this from its worker fleet.
  Response handle(const Request& request,
                  const IncumbentCallback& on_incumbent = {});

  SolveCache& cache() { return cache_; }
  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

  /// Graceful-drain phase 1: every subsequent request is shed with an
  /// explicit "draining" rejection; in-flight solves keep running.
  void begin_drain();
  /// Graceful-drain phase 2 (drain budget spent): raises the shared stop
  /// token that every in-flight solve's engine::Budget polls.
  void cancel_inflight();
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  /// Requests currently inside handle() across all tenants (the drain
  /// loop polls this down to zero).
  int inflight() const;

  /// Compacts the journal to the live cache contents (no-op when
  /// journaling is off). Called by the drain path and periodically after
  /// journal_compact_every appends.
  void flush_journal();

 private:
  const TenantPolicy& policy_for(const std::string& tenant) const;
  void recover_journal();
  void append_journal(const std::string& canonical_text,
                      engine::Objective objective, const CachedSolve& entry);

  ServiceOptions options_;
  SolveCache cache_;
  mutable std::mutex mu_;
  std::map<std::string, int> inflight_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> cancel_{false};
  /// Serializes journal appends/compactions (the Journal itself is not
  /// thread-safe).
  mutable std::mutex journal_mu_;
  std::unique_ptr<Journal> journal_;
  JournalStats journal_stats_;
};

/// Wire names used by the line protocol and the tools ("del" | "dmat" |
/// "none", matching letdma_tool).
bool parse_objective(const std::string& name, engine::Objective* out);
const char* objective_wire_name(engine::Objective objective);

}  // namespace letdma::serve
