// letdma::serve — multi-tenant scheduling service with a certified solve
// cache.
//
// Service::handle() is one request end to end:
//
//   1. Admission: the tenant's in-flight count is checked against its
//      policy and the requested budget is clamped to the tenant cap
//      (engine::Budget carries it into the solve). Rejections are cheap,
//      counted ("serve.admission.rejected") and never touch the solver.
//   2. Canonicalization: the submitted model is reduced to its canonical
//      form + 128-bit fingerprint (model::canonicalize). Isomorphic
//      submissions — renamed, reordered, renumbered — collapse onto one
//      cache key: (fingerprint, objective).
//   3. Cache: on a hit the cached canonical schedule is un-permuted onto
//      the *requesting* instance (translate_schedule) and independently
//      re-certified by guard::certify against it. Only a certificate
//      makes it a hit; a failure invalidates the entry, records a flight
//      event and falls through to a fresh solve.
//   4. Fresh solve: engine::SupervisedScheduler on the canonical
//      instance (so the result is reusable by every isomorphic tenant),
//      with incumbent streaming through the caller's callback for long
//      solves. Feasible results are cached, then translated + certified
//      exactly like a hit.
//
// Every response that carries a schedule was certified against the
// requesting instance in this process, whether it came from the cache or
// a solver. Per-tenant counters and latency histograms ("serve.requests",
// "serve.request_ms.<tenant>", ...) are always on.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "letdma/engine/supervised.hpp"
#include "letdma/serve/cache.hpp"

namespace letdma::serve {

struct Request {
  /// Caller-chosen id echoed back in the response (and in incumbent
  /// events), so pipelined responses can be matched to requests.
  std::string id;
  std::string tenant = "default";
  /// model::io application text.
  std::string model_text;
  engine::Objective objective = engine::Objective::kMinMaxLatencyRatio;
  /// Wall-clock budget for a fresh solve (cache hits ignore it); clamped
  /// to the tenant policy's max_budget_sec.
  double budget_sec = 1.0;
  /// Include the schedule text (let::write_schedule) in the response.
  bool want_schedule = true;
  /// Emit incumbent updates while the solve runs (socket clients receive
  /// them as "incumbent" events before the final "result" line).
  bool stream_incumbents = false;
};

struct Response {
  std::string id;
  bool ok = false;
  std::string error;  // set when !ok (parse failure, admission, ...)
  engine::Status status = engine::Status::kTimeout;
  /// The served schedule passed guard::certify against the requesting
  /// instance (always true when ok && a schedule is present).
  bool certified = false;
  bool cache_hit = false;
  std::string fingerprint;  // canonical 128-bit hash, 32 hex chars
  /// Canonicalization was exact (see model::Canonicalization::exact).
  bool exact = true;
  double objective_value = 0.0;
  std::string strategy;  // engine strategy that produced the schedule
  double wall_ms = 0.0;  // service-side handling time
  int incumbents = 0;    // improving incumbents seen during a fresh solve
  /// let::write_schedule text on the requesting instance (when ok, a
  /// schedule exists and want_schedule was set).
  std::string schedule_text;

  bool has_schedule() const { return ok && !schedule_text.empty(); }
};

struct IncumbentUpdate {
  double objective = 0.0;
  std::string strategy;
};

/// Per-tenant admission limits.
struct TenantPolicy {
  /// Concurrent requests allowed in the solve path; further requests are
  /// rejected (load shedding, not queueing — the client owns retry).
  int max_inflight = 16;
  /// Hard cap on the per-request solve budget.
  double max_budget_sec = 5.0;
};

struct ServiceOptions {
  std::size_t cache_capacity = 1024;
  int cache_shards = 8;
  TenantPolicy default_policy;
  /// Overrides per tenant name.
  std::map<std::string, TenantPolicy> tenant_policies;
  /// Supervised-chain configuration for fresh solves. The objective field
  /// is overridden per request.
  engine::GuardOptions guard;
};

struct ServiceStats {
  std::int64_t requests = 0;
  std::int64_t rejected = 0;
  std::int64_t certified = 0;
  CacheStats cache;
};

class Service {
 public:
  using IncumbentCallback = std::function<void(const IncumbentUpdate&)>;

  explicit Service(ServiceOptions options = {});

  /// Handles one request synchronously. Thread-safe; the socket server
  /// calls this from its worker fleet.
  Response handle(const Request& request,
                  const IncumbentCallback& on_incumbent = {});

  SolveCache& cache() { return cache_; }
  ServiceStats stats() const;
  const ServiceOptions& options() const { return options_; }

 private:
  const TenantPolicy& policy_for(const std::string& tenant) const;

  ServiceOptions options_;
  SolveCache cache_;
  mutable std::mutex mu_;
  std::map<std::string, int> inflight_;
};

/// Wire names used by the line protocol and the tools ("del" | "dmat" |
/// "none", matching letdma_tool).
bool parse_objective(const std::string& name, engine::Objective* out);
const char* objective_wire_name(engine::Objective objective);

}  // namespace letdma::serve
