// Schedule translation between isomorphic instances.
//
// A cached solve lives on the *canonical* instance. To answer a request
// it must be mapped back onto the requesting instance through the
// canonicalization permutations: memory orders are re-indexed slot by
// slot, every s0 transfer is rebuilt with make_transfer() (which
// re-verifies contiguity in both memories — the translation is
// self-checking), and the per-instant schedule is re-derived. If the
// "isomorphism" is not one (a fingerprint collision), some step throws
// PreconditionError; the service treats that exactly like a failed
// certificate: invalidate and solve fresh.
#pragma once

#include "letdma/let/greedy.hpp"
#include "letdma/model/canonical.hpp"

namespace letdma::serve {

/// Maps `canonical_result` (solved on the canonical form that `canon`
/// describes) onto `target` (the LetComms of the instance `canon` was
/// computed from). Throws support::PreconditionError when the mapping is
/// structurally impossible.
let::ScheduleResult translate_schedule(
    const let::ScheduleResult& canonical_result,
    const model::Canonicalization& canon, const let::LetComms& target);

}  // namespace letdma::serve
