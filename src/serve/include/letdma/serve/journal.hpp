// Append-only write-ahead journal for the serve layer's solve cache.
//
// Every fresh certified solve appends one record — the canonical instance
// text, the objective it was solved under, and the schedule solved on the
// canonical form — so a daemon restart replays the journal and reopens
// with a warm cache instead of an empty one. The canonical text IS the
// serialization: recovery re-parses it, re-canonicalizes it (dropping
// records whose canonical form drifted across versions), re-reads the
// schedule and re-certifies with guard::certify before anything is
// admitted. A journal can therefore be corrupted, truncated or tampered
// with arbitrarily and the worst outcome is a cold entry, never a wrong
// answer.
//
// Wire format (little-endian, binary):
//
//   record  := magic "LDJ1" | u32 payload_len | u32 crc32(payload) | payload
//   payload := u8 version(=1) | u8 objective | u8 status
//            | f64 objective_value
//            | u32 strategy_len      | strategy bytes
//            | u32 canonical_len     | canonical model text
//            | u32 schedule_len      | schedule text
//
// Length-prefixed strings make embedded newlines a non-issue (model and
// schedule texts are multi-line). Decoding is torn-tail tolerant: a
// record whose framing runs past the buffer (the classic crash between
// write() and completion) terminates the scan and the tail is discarded;
// a record with intact framing but a CRC mismatch (bitrot) is skipped
// individually and the scan continues, so one bad sector does not cost
// the rest of the journal.
//
// Compaction rewrites the live cache contents into a temporary file,
// fsyncs, and rename()s over the journal — crash-atomic on POSIX — so the
// file stays proportional to the cache rather than to request history.
//
// Fault sites (guard injector): "io.journal.torn_write" truncates an
// append mid-record; "io.journal.crc" flips a payload byte after the CRC
// was computed. Both are exercised by the chaos suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "letdma/engine/engine.hpp"

namespace letdma::serve {

/// One journaled solve. `canonical_text` and `schedule_text` are the
/// model::io / let::schedule_io serializations on the canonical instance.
struct JournalRecord {
  std::string canonical_text;
  engine::Objective objective = engine::Objective::kMinMaxLatencyRatio;
  engine::Status status = engine::Status::kFeasible;
  double objective_value = 0.0;
  std::string strategy;
  std::string schedule_text;
};

/// Counters describing one journal's lifetime in this process. Recovery
/// fills recovered/dropped_*; append/compact maintain the rest.
struct JournalStats {
  std::int64_t appended = 0;
  std::int64_t recovered = 0;          // decoded, certified and admitted
  std::int64_t dropped_corrupt = 0;    // CRC mismatch or undecodable payload
  std::int64_t dropped_uncertified = 0;  // failed guard::certify on load
  std::int64_t dropped_stale = 0;      // canonical form drifted / unparsable
  std::int64_t compactions = 0;
  std::int64_t torn_bytes = 0;  // bytes discarded from the torn tail
};

/// CRC-32 (IEEE 802.3 reflected, poly 0xEDB88320). crc32("123456789")
/// == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// Serializes one record into its framed wire form.
std::string encode_record(const JournalRecord& record);

/// Scans `buffer` for consecutive records, appending decoded ones to
/// `out`. Returns the number of bytes consumed (the torn tail, if any, is
/// buffer.size() - consumed). CRC-mismatched records with intact framing
/// are skipped and counted in stats->dropped_corrupt; a record whose
/// framing runs past the end of the buffer stops the scan.
std::size_t decode_buffer(std::string_view buffer,
                          std::vector<JournalRecord>* out,
                          JournalStats* stats);

/// The on-disk journal. Not internally synchronized: the Service serializes
/// appends behind its own mutex.
class Journal {
 public:
  /// Opens (creating if absent) the journal at `path` for appending.
  /// Throws support::Error when the file cannot be opened.
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Reads the whole journal and decodes every intact record. Torn tails
  /// and CRC failures are tolerated and counted into `stats`.
  std::vector<JournalRecord> load(JournalStats* stats);

  /// Appends one record (write + fsync). Polls the io.journal.torn_write
  /// and io.journal.crc fault sites.
  void append(const JournalRecord& record);

  /// Atomically replaces the journal with exactly `records` (temp file +
  /// fsync + rename). Resets appends_since_compact().
  void compact(const std::vector<JournalRecord>& records);

  const std::string& path() const { return path_; }
  std::int64_t appends_since_compact() const { return appends_; }

 private:
  void open_for_append();

  std::string path_;
  int fd_ = -1;
  std::int64_t appends_ = 0;
};

}  // namespace letdma::serve
