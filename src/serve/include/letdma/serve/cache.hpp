// Fingerprint-keyed LRU cache of certified solves.
//
// The serve layer's workload is dominated by near-duplicate instances:
// the same application resubmitted with renamed tasks, reordered labels
// or renumbered cores. All of those canonicalize to one fingerprint, so
// one solved canonical instance answers every isomorphic request. The
// cache key is (fingerprint, engine objective); the value co-owns the
// canonical application, its LetComms and the schedule solved on it —
// ScheduleResult holds pointers into the application, so the three must
// share one lifetime.
//
// A cached schedule is NEVER trusted blindly: the service re-certifies
// every hit against the requesting instance after un-permuting (see
// service.hpp), and calls invalidate() when certification fails — a
// fingerprint collision or a corrupted entry degrades to a miss, never
// to a wrong answer.
//
// The LRU is sharded by fingerprint to keep mutex contention off the
// request fast path; hits, misses, evictions and invalidations bump the
// always-on "serve.cache.*" counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "letdma/engine/engine.hpp"
#include "letdma/let/let_comms.hpp"
#include "letdma/model/canonical.hpp"

namespace letdma::serve {

struct CacheKey {
  model::Fingerprint fingerprint;
  engine::Objective objective = engine::Objective::kMinMaxLatencyRatio;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.fingerprint == b.fingerprint && a.objective == b.objective;
  }
  friend auto operator<=>(const CacheKey& a, const CacheKey& b) {
    if (!(a.fingerprint == b.fingerprint)) {
      return a.fingerprint <=> b.fingerprint;
    }
    return a.objective <=> b.objective;
  }
};

/// One cached solve. Declaration order is a lifetime contract: `schedule`
/// and `comms` reference `*app`, so `app` must be declared (and therefore
/// destroyed) last.
struct CachedSolve {
  std::unique_ptr<model::Application> app;  // canonical instance
  std::unique_ptr<let::LetComms> comms;     // over *app
  let::ScheduleResult schedule;             // solved on the canonical form
  engine::Status status = engine::Status::kFeasible;
  double objective_value = 0.0;
  std::string strategy;
};

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t invalidations = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;

  double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class SolveCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `shards`
  /// independent LRU lists (shard chosen by fingerprint bits).
  explicit SolveCache(std::size_t capacity = 1024, int shards = 8);

  /// Returns the entry and refreshes its LRU position, or null on a miss.
  std::shared_ptr<const CachedSolve> lookup(const CacheKey& key);

  /// Inserts (or replaces) an entry, evicting the shard's least recently
  /// used entry when the shard is full.
  void insert(const CacheKey& key, std::shared_ptr<const CachedSolve> value);

  /// Drops an entry (a hit that failed re-certification). Returns true
  /// when the key was present.
  bool invalidate(const CacheKey& key);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  CacheStats stats() const;

  /// Point-in-time copy of every live entry (shard by shard, MRU first
  /// within a shard). Feeds journal compaction: the snapshot is exactly
  /// what a restart should recover.
  std::vector<std::pair<CacheKey, std::shared_ptr<const CachedSolve>>>
  snapshot() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Most recently used at the front.
    std::list<std::pair<CacheKey, std::shared_ptr<const CachedSolve>>> lru;
    std::map<CacheKey, decltype(lru)::iterator> index;
  };

  Shard& shard_of(const CacheKey& key);

  std::size_t capacity_ = 0;
  std::size_t per_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace letdma::serve
