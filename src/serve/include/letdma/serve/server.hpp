// Socket front end of letdma::serve.
//
// Protocol: newline-delimited JSON over a Unix domain socket. One request
// object per line; the server answers each with one "result" line, in
// request order per connection. A request with "stream":true additionally
// receives zero or more "incumbent" event lines before its result.
//
//   -> {"id":"r1","tenant":"acme","objective":"del","budget_sec":0.5,
//       "model":"platform cores=2 ...\ntask ...","schedule":false}
//   <- {"id":"r1","event":"result","ok":true,"status":"optimal",
//       "certified":true,"cache":"hit","fingerprint":"ab..12",
//       "objective":0.125,"strategy":"milp","wall_ms":0.4}
//
// Connections are independent; within one connection the server drains
// every complete line that has arrived and processes the batch on the
// shared engine::BatchRunner worker fleet (responses keep arrival order),
// so a pipelining client gets fan-out for free. Streaming requests are
// processed one at a time — incumbent events interleave with nothing.
//
// stop() (also run by the destructor) closes the listener and every live
// connection and joins all threads, so a server can be started and torn
// down repeatedly in one process without leaking fds or threads — the
// property the ASan CI smoke job asserts.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "letdma/engine/batch.hpp"
#include "letdma/serve/service.hpp"

namespace letdma::serve {

struct ServerOptions {
  /// Filesystem path of the Unix socket; unlinked on start and stop.
  std::string socket_path;
  /// Worker threads for per-connection request batches (0 = hardware
  /// concurrency).
  int threads = 0;
  /// Largest request batch drained from one connection at a time.
  std::size_t max_batch = 64;
};

class Server {
 public:
  Server(Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + spawns the accept loop. Throws support::Error when
  /// the socket cannot be created.
  void start();
  /// Idempotent: closes the listener and all connections, joins threads.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  Service& service_;
  ServerOptions options_;
  engine::BatchRunner runner_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

// --- line protocol (shared by server, client, tools and the replay
// bench) --------------------------------------------------------------

/// Parses one request line; throws support::ParseError on malformed JSON
/// or bad fields.
Request parse_request_line(const std::string& line);

/// Renders a request as one JSON line (trailing newline included).
std::string render_request_line(const Request& request);

/// Renders the final "result" line (trailing newline included).
std::string render_response_line(const Response& response);

/// Renders one "incumbent" event line (trailing newline included).
std::string render_incumbent_line(const std::string& id,
                                  const IncumbentUpdate& update);

/// Parses a "result" line back into a Response (client side; event lines
/// other than "result" are rejected). Throws support::ParseError.
Response parse_response_line(const std::string& line);

/// Blocking client for the protocol above.
class Client {
 public:
  /// Connects immediately; throws support::Error on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request and reads until its result line; incumbent events
  /// for the request are delivered to `on_incumbent`.
  Response call(const Request& request,
                const Service::IncumbentCallback& on_incumbent = {});

  /// Pipelines a whole batch (one write, then reads all results in
  /// order). Streaming is ignored in batch mode.
  std::vector<Response> call_batch(const std::vector<Request>& requests);

 private:
  bool read_line(std::string* line);

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace letdma::serve
