// Socket front end of letdma::serve.
//
// Protocol: newline-delimited JSON over a Unix domain socket. One request
// object per line; the server answers each with one "result" line, in
// request order per connection. A request with "stream":true additionally
// receives zero or more "incumbent" event lines before its result.
//
//   -> {"id":"r1","tenant":"acme","objective":"del","budget_sec":0.5,
//       "model":"platform cores=2 ...\ntask ...","schedule":false}
//   <- {"id":"r1","event":"result","ok":true,"status":"optimal",
//       "certified":true,"cache":"hit","fingerprint":"ab..12",
//       "objective":0.125,"strategy":"milp","wall_ms":0.4}
//
// Two lightweight request types skip the solve path entirely:
// {"type":"health","id":"h"} answers with an "health" event (ok +
// draining), {"type":"stats","id":"s"} with a "stats" event carrying the
// service counters — both are answered even while every solver thread is
// busy.
//
// Connections are independent; within one connection the server drains
// every complete line that has arrived and processes the batch on the
// shared engine::BatchRunner worker fleet (responses keep arrival order),
// so a pipelining client gets fan-out for free. Streaming requests are
// processed one at a time — incumbent events interleave with nothing.
//
// Robustness: reads are poll()-driven with a per-connection idle timeout
// (a stalled client gets a "timeout" error line and its connection
// closed, and cannot pin a thread), connection count is bounded (excess
// connections receive an explicit load-shed line, not a silent close),
// and drain() implements graceful shutdown — stop accepting, shed new
// requests, finish or cancel in-flight within the drain budget, flush
// the journal.
//
// stop() (also run by the destructor) closes the listener and every live
// connection and joins all threads, so a server can be started and torn
// down repeatedly in one process without leaking fds or threads — the
// property the ASan CI smoke job asserts.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "letdma/engine/batch.hpp"
#include "letdma/serve/service.hpp"

namespace letdma::serve {

struct ServerOptions {
  /// Filesystem path of the Unix socket; a stale socket left by a
  /// crashed daemon is unlinked on start (a *live* one — still accepting
  /// connections — makes start() throw instead of stealing it).
  std::string socket_path;
  /// Worker threads for per-connection request batches (0 = hardware
  /// concurrency).
  int threads = 0;
  /// Largest request batch drained from one connection at a time.
  std::size_t max_batch = 64;
  /// A connection idle (no complete request line) for this long is sent
  /// a timeout error and closed, so a stalled client cannot pin a
  /// connection thread forever. <= 0 disables the timeout.
  double read_timeout_sec = 30.0;
  /// Connections beyond this receive an explicit load-shed error line
  /// and are closed (shedding, not queueing).
  int max_connections = 256;
};

class Server {
 public:
  Server(Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + spawns the accept loop. Throws support::Error when
  /// the socket cannot be created or another live daemon owns the path.
  void start();
  /// Idempotent: closes the listener and all connections, joins threads.
  void stop();
  /// Graceful shutdown: sheds new connections and requests, waits up to
  /// `timeout_sec` for in-flight solves to finish, cancels the stragglers
  /// through their budget stop tokens, flushes the journal, then stop()s.
  /// Returns true when everything finished without cancellation.
  bool drain(double timeout_sec);
  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(int fd);
  /// Joins and erases finished connections (conn_mu_ must NOT be held).
  void reap_connections();

  Service& service_;
  ServerOptions options_;
  engine::BatchRunner runner_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::list<Conn> conns_;
};

// --- line protocol (shared by server, client, tools and the replay
// bench) --------------------------------------------------------------

/// Parses one request line; throws support::ParseError on malformed JSON
/// or bad fields.
Request parse_request_line(const std::string& line);

/// Renders a request as one JSON line (trailing newline included).
std::string render_request_line(const Request& request);

/// Renders the final "result" line (trailing newline included).
std::string render_response_line(const Response& response);

/// Renders one "incumbent" event line (trailing newline included).
std::string render_incumbent_line(const std::string& id,
                                  const IncumbentUpdate& update);

/// Parses a "result" line back into a Response (client side; event lines
/// other than "result" are rejected). Throws support::ParseError.
Response parse_response_line(const std::string& line);

/// The "stats" event payload: service counters flattened for the wire.
struct ServerStatsReply {
  bool ok = false;
  bool draining = false;
  std::int64_t requests = 0;
  std::int64_t rejected = 0;
  std::int64_t certified = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::size_t cache_size = 0;
  std::int64_t journal_appended = 0;
  std::int64_t journal_recovered = 0;
  std::int64_t journal_dropped_corrupt = 0;
  std::int64_t journal_dropped_uncertified = 0;
  std::int64_t journal_dropped_stale = 0;
  std::int64_t journal_compactions = 0;

  double cache_hit_rate() const {
    const std::int64_t total = cache_hits + cache_misses;
    return total > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(total)
               : 0.0;
  }
};

std::string render_stats_line(const std::string& id,
                              const ServiceStats& stats);
ServerStatsReply parse_stats_line(const std::string& line);

/// Client-side reconnect discipline. Disabled by default: a missing or
/// crashed daemon fails fast with an errno-bearing message; with
/// `enabled` the client retries the connect (and re-sends in-flight
/// requests after a mid-exchange disconnect) under exponential backoff
/// with deterministic jitter. Re-sending is idempotent by construction:
/// the service is a fingerprint-keyed cache, so a duplicate solve is at
/// worst a cache hit.
struct RetryPolicy {
  bool enabled = false;
  int max_attempts = 5;
  double initial_backoff_sec = 0.05;
  double max_backoff_sec = 2.0;
  double backoff_multiplier = 2.0;
  /// Seed for the jitter sequence (deterministic per client).
  std::uint64_t jitter_seed = 1;
};

struct ClientOptions {
  /// Patience for one read while awaiting a response; <= 0 blocks
  /// forever.
  double read_timeout_sec = 0.0;
  RetryPolicy retry;
};

/// Blocking client for the protocol above.
class Client {
 public:
  /// Connects immediately; throws support::Error on failure (with the
  /// errno and a hint when the daemon looks absent). With retry enabled
  /// the connect itself is retried under backoff first.
  explicit Client(const std::string& socket_path, ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request and reads until its result line; incumbent events
  /// for the request are delivered to `on_incumbent`. With retry enabled
  /// a mid-call disconnect reconnects and re-sends the request.
  Response call(const Request& request,
                const Service::IncumbentCallback& on_incumbent = {});

  /// Pipelines a whole batch (one write, then reads all results in
  /// order). Streaming is ignored in batch mode. Throws when the
  /// connection dies mid-batch (after exhausting retries, which re-send
  /// only the unanswered suffix).
  std::vector<Response> call_batch(const std::vector<Request>& requests);

  /// Partial-tolerant variant: on a mid-batch disconnect with retries
  /// exhausted (or disabled), returns the responses received so far and
  /// sets *disconnected instead of throwing.
  std::vector<Response> call_batch(const std::vector<Request>& requests,
                                   bool* disconnected);

  /// {"type":"health"} round trip; false when the daemon is unreachable
  /// or answers malformed. `draining` (optional) reports drain state.
  bool health(bool* draining = nullptr);

  /// {"type":"stats"} round trip; throws on a dead connection.
  ServerStatsReply stats();

 private:
  void connect_once();
  /// Reconnects under the retry policy. Returns false when retries are
  /// disabled or exhausted.
  bool reconnect_with_backoff();
  bool read_line(std::string* line);

  std::string socket_path_;
  ClientOptions options_;
  int fd_ = -1;
  std::string buffer_;
  int reconnects_ = 0;
};

}  // namespace letdma::serve
