#include "letdma/serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "letdma/guard/faults.hpp"
#include "letdma/obs/flight.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::serve {
namespace {

constexpr char kMagic[4] = {'L', 'D', 'J', '1'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 4;  // magic + len + crc
// Framing sanity bound: a single solve's texts are tiny, so anything past
// this is corruption masquerading as a length, not a real record.
constexpr std::uint32_t kMaxPayload = 64u << 20;

obs::Counter& appends_counter() {
  static obs::Counter c("serve.journal.appends");
  return c;
}
obs::Counter& corrupt_counter() {
  static obs::Counter c("serve.journal.dropped_corrupt");
  return c;
}
obs::Counter& compactions_counter() {
  static obs::Counter c("serve.journal.compactions");
  return c;
}

void put_u32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

void put_string(std::string* out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over a payload; any overrun flags `bad`.
struct Reader {
  const char* p;
  std::size_t left;
  bool bad = false;

  std::uint8_t u8() {
    if (left < 1) { bad = true; return 0; }
    const auto v = static_cast<std::uint8_t>(*p);
    ++p; --left;
    return v;
  }
  std::uint32_t u32() {
    if (left < 4) { bad = true; return 0; }
    const std::uint32_t v = get_u32(p);
    p += 4; left -= 4;
    return v;
  }
  double f64() {
    if (left < 8) { bad = true; return 0.0; }
    double v;
    std::memcpy(&v, p, 8);
    p += 8; left -= 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (bad || left < n) { bad = true; return {}; }
    std::string s(p, n);
    p += n; left -= n;
    return s;
  }
};

bool decode_payload(std::string_view payload, JournalRecord* out) {
  Reader r{payload.data(), payload.size()};
  if (r.u8() != kVersion) return false;
  const std::uint8_t objective = r.u8();
  const std::uint8_t status = r.u8();
  if (objective > static_cast<std::uint8_t>(engine::Objective::kFeasibility) ||
      status > static_cast<std::uint8_t>(engine::Status::kTimeout)) {
    return false;
  }
  out->objective = static_cast<engine::Objective>(objective);
  out->status = static_cast<engine::Status>(status);
  out->objective_value = r.f64();
  out->strategy = r.str();
  out->canonical_text = r.str();
  out->schedule_text = r.str();
  return !r.bad && r.left == 0;
}

std::string errno_message(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

void write_fully(int fd, const char* data, std::size_t size,
                 const std::string& path) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw support::Error(errno_message("write journal", path));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string encode_record(const JournalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(kVersion));
  payload.push_back(static_cast<char>(record.objective));
  payload.push_back(static_cast<char>(record.status));
  static_assert(sizeof(double) == 8);
  char f64[8];
  std::memcpy(f64, &record.objective_value, 8);
  payload.append(f64, 8);
  put_string(&payload, record.strategy);
  put_string(&payload, record.canonical_text);
  put_string(&payload, record.schedule_text);

  std::string framed;
  framed.reserve(kHeaderSize + payload.size());
  framed.append(kMagic, 4);
  put_u32(&framed, static_cast<std::uint32_t>(payload.size()));
  put_u32(&framed, crc32(payload));
  framed.append(payload);
  return framed;
}

std::size_t decode_buffer(std::string_view buffer,
                          std::vector<JournalRecord>* out,
                          JournalStats* stats) {
  std::size_t pos = 0;
  while (pos + kHeaderSize <= buffer.size()) {
    if (std::memcmp(buffer.data() + pos, kMagic, 4) != 0) {
      // Not a record boundary: either a torn rewrite or foreign bytes.
      // Nothing past this point can be trusted to be framed.
      break;
    }
    const std::uint32_t len = get_u32(buffer.data() + pos + 4);
    const std::uint32_t crc = get_u32(buffer.data() + pos + 8);
    if (len > kMaxPayload) break;  // corrupt length; unframed from here on
    if (pos + kHeaderSize + len > buffer.size()) break;  // torn tail
    const std::string_view payload =
        buffer.substr(pos + kHeaderSize, len);
    pos += kHeaderSize + len;
    JournalRecord rec;
    if (crc32(payload) != crc || !decode_payload(payload, &rec)) {
      // Framing intact, contents rotten: skip just this record so one bad
      // sector does not discard the rest of the journal.
      if (stats != nullptr) ++stats->dropped_corrupt;
      corrupt_counter().add();
      continue;
    }
    if (out != nullptr) out->push_back(std::move(rec));
  }
  return pos;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  LETDMA_ENSURE(!path_.empty(), "journal path must not be empty");
  open_for_append();
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::open_for_append() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw support::Error(errno_message("open journal", path_));
  }
}

std::vector<JournalRecord> Journal::load(JournalStats* stats) {
  std::ifstream in(path_, std::ios::binary);
  std::vector<JournalRecord> records;
  if (!in) return records;  // absent or unreadable: cold start
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  const std::size_t consumed = decode_buffer(bytes, &records, stats);
  if (stats != nullptr && consumed < bytes.size()) {
    stats->torn_bytes +=
        static_cast<std::int64_t>(bytes.size() - consumed);
  }
  if (consumed < bytes.size()) {
    obs::flight_event(
        "serve.journal.torn_tail", "serve",
        {{"path", path_},
         {"bytes", static_cast<std::int64_t>(bytes.size() - consumed)}},
        obs::Level::kWarn);
  }
  return records;
}

void Journal::append(const JournalRecord& record) {
  std::string framed = encode_record(record);
  if (const auto fault = guard::fault_point("io.journal.crc");
      fault == guard::FaultKind::kCorrupt && framed.size() > kHeaderSize) {
    // Flip a payload byte after the CRC was computed: recovery must see a
    // checksum mismatch, count dropped_corrupt, and keep going.
    framed[kHeaderSize + framed.size() % (framed.size() - kHeaderSize)] ^=
        0x40;
  }
  std::size_t write_len = framed.size();
  if (guard::fault_point("io.journal.torn_write") ==
      guard::FaultKind::kTruncate) {
    // Simulate a crash mid-append: only a prefix reaches the disk.
    write_len = framed.size() / 2;
  }
  write_fully(fd_, framed.data(), write_len, path_);
  if (::fsync(fd_) < 0 && errno != EINVAL && errno != EROFS) {
    throw support::Error(errno_message("fsync journal", path_));
  }
  ++appends_;
  appends_counter().add();
}

void Journal::compact(const std::vector<JournalRecord>& records) {
  const std::string tmp = path_ + ".tmp";
  int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
  if (tfd < 0) {
    throw support::Error(errno_message("open journal temp", tmp));
  }
  try {
    for (const JournalRecord& rec : records) {
      const std::string framed = encode_record(rec);
      write_fully(tfd, framed.data(), framed.size(), tmp);
    }
    if (::fsync(tfd) < 0 && errno != EINVAL && errno != EROFS) {
      throw support::Error(errno_message("fsync journal temp", tmp));
    }
  } catch (...) {
    ::close(tfd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(tfd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const std::string msg = errno_message("rename journal", path_);
    ::unlink(tmp.c_str());
    throw support::Error(msg);
  }
  // The old fd points at the unlinked inode; reopen the new file.
  open_for_append();
  appends_ = 0;
  compactions_counter().add();
  obs::flight_event("serve.journal.compacted", "serve",
                    {{"path", path_},
                     {"records", static_cast<std::int64_t>(records.size())}});
}

}  // namespace letdma::serve
