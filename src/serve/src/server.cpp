#include "letdma/serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "letdma/obs/json.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/json.hpp"

namespace letdma::serve {
namespace {

using support::ParseError;

const char* wire_status_name(engine::Status status) {
  switch (status) {
    case engine::Status::kOptimal: return "optimal";
    case engine::Status::kFeasible: return "feasible";
    case engine::Status::kInfeasible: return "infeasible";
    case engine::Status::kTimeout: return "timeout";
  }
  return "?";
}

bool parse_wire_status(const std::string& name, engine::Status* out) {
  if (name == "optimal") *out = engine::Status::kOptimal;
  else if (name == "feasible") *out = engine::Status::kFeasible;
  else if (name == "infeasible") *out = engine::Status::kInfeasible;
  else if (name == "timeout") *out = engine::Status::kTimeout;
  else return false;
  return true;
}

/// write(2) the whole buffer; false on a broken connection.
bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a peer hanging up must surface as EPIPE here, not as
    // a process-killing SIGPIPE, whatever the host's signal disposition.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// --- line protocol ---------------------------------------------------------

Request parse_request_line(const std::string& line) {
  support::JsonValue v;
  std::string err;
  if (!support::parse_json(line, &v, &err)) {
    throw ParseError(0, "bad request JSON: " + err);
  }
  if (v.kind != support::JsonValue::Kind::kObject) {
    throw ParseError(0, "request must be a JSON object");
  }
  Request r;
  r.id = v.str_or("id", "");
  r.tenant = v.str_or("tenant", "default");
  const support::JsonValue* model = v.find("model");
  if (model == nullptr ||
      model->kind != support::JsonValue::Kind::kString) {
    throw ParseError(0, "request missing string field `model`");
  }
  r.model_text = model->text;
  if (const support::JsonValue* o = v.find("objective")) {
    if (o->kind != support::JsonValue::Kind::kString ||
        !parse_objective(o->text, &r.objective)) {
      throw ParseError(0, "bad objective (expected del | dmat | none)");
    }
  }
  double budget = 0.0;
  if (v.num_of("budget_sec", &budget)) r.budget_sec = budget;
  r.want_schedule = v.bool_or("schedule", true);
  r.stream_incumbents = v.bool_or("stream", false);
  return r;
}

std::string render_request_line(const Request& request) {
  std::string out = "{\"id\":";
  obs::json::append_string(out, request.id);
  out += ",\"tenant\":";
  obs::json::append_string(out, request.tenant);
  out += ",\"objective\":";
  obs::json::append_string(out, objective_wire_name(request.objective));
  out += ",\"budget_sec\":";
  obs::json::append_number(out, request.budget_sec);
  out += ",\"schedule\":";
  out += request.want_schedule ? "true" : "false";
  out += ",\"stream\":";
  out += request.stream_incumbents ? "true" : "false";
  out += ",\"model\":";
  obs::json::append_string(out, request.model_text);
  out += "}\n";
  return out;
}

std::string render_response_line(const Response& response) {
  std::string out = "{\"id\":";
  obs::json::append_string(out, response.id);
  out += ",\"event\":\"result\",\"ok\":";
  out += response.ok ? "true" : "false";
  if (!response.error.empty()) {
    out += ",\"error\":";
    obs::json::append_string(out, response.error);
  }
  out += ",\"status\":";
  obs::json::append_string(out, wire_status_name(response.status));
  out += ",\"certified\":";
  out += response.certified ? "true" : "false";
  out += ",\"cache\":";
  obs::json::append_string(out, response.cache_hit ? "hit" : "miss");
  out += ",\"fingerprint\":";
  obs::json::append_string(out, response.fingerprint);
  out += ",\"exact\":";
  out += response.exact ? "true" : "false";
  out += ",\"objective\":";
  obs::json::append_number(out, response.objective_value);
  out += ",\"strategy\":";
  obs::json::append_string(out, response.strategy);
  out += ",\"wall_ms\":";
  obs::json::append_number(out, response.wall_ms);
  out += ",\"incumbents\":";
  obs::json::append_number(out, response.incumbents);
  if (!response.schedule_text.empty()) {
    out += ",\"schedule\":";
    obs::json::append_string(out, response.schedule_text);
  }
  out += "}\n";
  return out;
}

std::string render_incumbent_line(const std::string& id,
                                  const IncumbentUpdate& update) {
  std::string out = "{\"id\":";
  obs::json::append_string(out, id);
  out += ",\"event\":\"incumbent\",\"objective\":";
  obs::json::append_number(out, update.objective);
  out += ",\"strategy\":";
  obs::json::append_string(out, update.strategy);
  out += "}\n";
  return out;
}

Response parse_response_line(const std::string& line) {
  support::JsonValue v;
  std::string err;
  if (!support::parse_json(line, &v, &err)) {
    throw ParseError(0, "bad response JSON: " + err);
  }
  if (v.kind != support::JsonValue::Kind::kObject ||
      v.str_or("event", "") != "result") {
    throw ParseError(0, "not a result line");
  }
  Response r;
  r.id = v.str_or("id", "");
  r.ok = v.bool_or("ok", false);
  r.error = v.str_or("error", "");
  if (!parse_wire_status(v.str_or("status", ""), &r.status)) {
    throw ParseError(0, "bad status in result line");
  }
  r.certified = v.bool_or("certified", false);
  r.cache_hit = v.str_or("cache", "miss") == "hit";
  r.fingerprint = v.str_or("fingerprint", "");
  r.exact = v.bool_or("exact", true);
  double num = 0.0;
  if (v.num_of("objective", &num)) r.objective_value = num;
  r.strategy = v.str_or("strategy", "");
  if (v.num_of("wall_ms", &num)) r.wall_ms = num;
  if (v.num_of("incumbents", &num)) r.incumbents = static_cast<int>(num);
  r.schedule_text = v.str_or("schedule", "");
  return r;
}

// --- server ----------------------------------------------------------------

Server::Server(Service& service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      runner_(engine::BatchOptions{options_.threads}) {
  LETDMA_ENSURE(!options_.socket_path.empty(), "socket_path is required");
  LETDMA_ENSURE(options_.max_batch > 0, "max_batch must be positive");
}

Server::~Server() { stop(); }

void Server::start() {
  LETDMA_ENSURE(!running(), "server already running");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LETDMA_ENSURE(options_.socket_path.size() < sizeof(addr.sun_path),
                "socket path too long");
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  ::unlink(options_.socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::Error("bind/listen " + options_.socket_path + ": " + what);
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&Server::accept_loop, this);
  obs::log_info("serve", "listening on " + options_.socket_path);
}

void Server::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    // Never started (or a concurrent stop won); still reap a listener
    // left behind by a failed start.
    if (listen_fd_ >= 0 && !accept_thread_.joinable()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  for (const int fd : conn_fds_) {
    if (fd >= 0) ::close(fd);
  }
  conn_threads_.clear();
  conn_fds_.clear();
  ::unlink(options_.socket_path.c_str());
  obs::log_info("serve", "stopped " + options_.socket_path);
}

void Server::accept_loop() {
  while (running()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or broken
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running()) {
      ::close(fd);
      break;
    }
    const std::size_t slot = conn_fds_.size();
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, slot, fd] {
      serve_connection(fd);
      std::lock_guard<std::mutex> inner(conn_mu_);
      ::close(fd);
      conn_fds_[slot] = -1;
    });
  }
}

void Server::serve_connection(int fd) {
  obs::Counter("serve.connections").add();
  std::string buffer;
  std::vector<std::string> batch;
  char chunk[65536];
  for (;;) {
    // Drain every complete line already buffered into one batch.
    batch.clear();
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && batch.size() < options_.max_batch;
         nl = buffer.find('\n', start)) {
      batch.push_back(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);

    if (!batch.empty()) {
      const auto answer = [&](const std::string& line,
                              const Service::IncumbentCallback& stream) {
        Response res;
        try {
          const Request req = parse_request_line(line);
          res = service_.handle(req, stream);
        } catch (const std::exception& e) {
          res.ok = false;
          res.error = e.what();
        }
        return render_response_line(res);
      };
      if (batch.size() == 1) {
        // Single request: stream incumbents inline (request order cannot
        // be violated — there is nothing to interleave with).
        const std::string out = answer(batch[0], [&](const IncumbentUpdate&
                                                         update) {
          std::string id;
          try {
            id = parse_request_line(batch[0]).id;
          } catch (const std::exception&) {
          }
          write_all(fd, render_incumbent_line(id, update));
        });
        if (!write_all(fd, out)) return;
      } else {
        // Pipelined batch: fan out on the worker fleet, reply in order.
        const std::vector<std::string> replies =
            runner_.map<std::string>(batch.size(), [&](std::size_t i) {
              return answer(batch[i], {});
            });
        std::string out;
        for (const std::string& r : replies) out += r;
        if (!write_all(fd, out)) return;
      }
      continue;  // more complete lines may already be buffered
    }

    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // peer closed or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

// --- client ----------------------------------------------------------------

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LETDMA_ENSURE(socket_path.size() < sizeof(addr.sun_path),
                "socket path too long");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw support::Error("connect " + socket_path + ": " + what);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::read_line(std::string* line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      *line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Response Client::call(const Request& request,
                      const Service::IncumbentCallback& on_incumbent) {
  if (!write_all(fd_, render_request_line(request))) {
    throw support::Error("serve client: connection closed while writing");
  }
  std::string line;
  while (read_line(&line)) {
    support::JsonValue v;
    std::string err;
    if (support::parse_json(line, &v, &err) &&
        v.str_or("event", "") == "incumbent") {
      if (on_incumbent) {
        IncumbentUpdate update;
        v.num_of("objective", &update.objective);
        update.strategy = v.str_or("strategy", "");
        on_incumbent(update);
      }
      continue;
    }
    return parse_response_line(line);
  }
  throw support::Error("serve client: connection closed before result");
}

std::vector<Response> Client::call_batch(
    const std::vector<Request>& requests) {
  std::string out;
  for (const Request& r : requests) {
    Request flat = r;
    flat.stream_incumbents = false;
    out += render_request_line(flat);
  }
  // Write from a helper thread while this thread drains responses: a
  // large batch can exceed both socket buffers, and a server blocked on
  // writing responses stops reading requests — writer and reader must
  // make progress independently or the connection deadlocks.
  std::thread writer([this, &out] { write_all(fd_, out); });
  std::vector<Response> responses;
  responses.reserve(requests.size());
  try {
    std::string line;
    while (responses.size() < requests.size() && read_line(&line)) {
      support::JsonValue v;
      std::string err;
      if (support::parse_json(line, &v, &err) &&
          v.str_or("event", "") != "result") {
        continue;  // stray incumbent event
      }
      responses.push_back(parse_response_line(line));
    }
  } catch (...) {
    ::shutdown(fd_, SHUT_RDWR);  // unblock the writer before joining
    writer.join();
    throw;
  }
  writer.join();
  if (responses.size() != requests.size()) {
    throw support::Error("serve client: connection closed mid-batch");
  }
  return responses;
}

}  // namespace letdma::serve
