#include "letdma/serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "letdma/guard/faults.hpp"
#include "letdma/obs/flight.hpp"
#include "letdma/obs/json.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/json.hpp"

namespace letdma::serve {
namespace {

using Clock = std::chrono::steady_clock;
using support::ParseError;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

const char* wire_status_name(engine::Status status) {
  switch (status) {
    case engine::Status::kOptimal: return "optimal";
    case engine::Status::kFeasible: return "feasible";
    case engine::Status::kInfeasible: return "infeasible";
    case engine::Status::kTimeout: return "timeout";
  }
  return "?";
}

bool parse_wire_status(const std::string& name, engine::Status* out) {
  if (name == "optimal") *out = engine::Status::kOptimal;
  else if (name == "feasible") *out = engine::Status::kFeasible;
  else if (name == "infeasible") *out = engine::Status::kInfeasible;
  else if (name == "timeout") *out = engine::Status::kTimeout;
  else return false;
  return true;
}

/// write(2) the whole buffer; false on a broken connection.
bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a peer hanging up must surface as EPIPE here, not as
    // a process-killing SIGPIPE, whatever the host's signal disposition.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string error_line(const std::string& id, const std::string& error) {
  Response res;
  res.id = id;
  res.ok = false;
  res.error = error;
  return render_response_line(res);
}

std::string health_line(const std::string& id, bool draining) {
  std::string out = "{\"id\":";
  obs::json::append_string(out, id);
  out += ",\"event\":\"health\",\"ok\":true,\"draining\":";
  out += draining ? "true" : "false";
  out += "}\n";
  return out;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// --- line protocol ---------------------------------------------------------

Request parse_request_line(const std::string& line) {
  support::JsonValue v;
  std::string err;
  if (!support::parse_json(line, &v, &err)) {
    throw ParseError(0, "bad request JSON: " + err);
  }
  if (v.kind != support::JsonValue::Kind::kObject) {
    throw ParseError(0, "request must be a JSON object");
  }
  Request r;
  r.type = v.str_or("type", "solve");
  if (r.type != "solve" && r.type != "health" && r.type != "stats") {
    throw ParseError(0, "bad type (expected solve | health | stats)");
  }
  r.id = v.str_or("id", "");
  r.tenant = v.str_or("tenant", "default");
  const support::JsonValue* model = v.find("model");
  if (r.type == "solve") {
    if (model == nullptr ||
        model->kind != support::JsonValue::Kind::kString) {
      throw ParseError(0, "request missing string field `model`");
    }
    r.model_text = model->text;
  }
  if (const support::JsonValue* o = v.find("objective")) {
    if (o->kind != support::JsonValue::Kind::kString ||
        !parse_objective(o->text, &r.objective)) {
      throw ParseError(0, "bad objective (expected del | dmat | none)");
    }
  }
  double budget = 0.0;
  if (v.num_of("budget_sec", &budget)) r.budget_sec = budget;
  double deadline = 0.0;
  if (v.num_of("deadline_sec", &deadline)) r.deadline_sec = deadline;
  r.want_schedule = v.bool_or("schedule", true);
  r.stream_incumbents = v.bool_or("stream", false);
  return r;
}

std::string render_request_line(const Request& request) {
  std::string out = "{\"id\":";
  obs::json::append_string(out, request.id);
  if (request.type != "solve") {
    out += ",\"type\":";
    obs::json::append_string(out, request.type);
    out += "}\n";
    return out;
  }
  out += ",\"tenant\":";
  obs::json::append_string(out, request.tenant);
  out += ",\"objective\":";
  obs::json::append_string(out, objective_wire_name(request.objective));
  out += ",\"budget_sec\":";
  obs::json::append_number(out, request.budget_sec);
  if (request.deadline_sec > 0.0) {
    out += ",\"deadline_sec\":";
    obs::json::append_number(out, request.deadline_sec);
  }
  out += ",\"schedule\":";
  out += request.want_schedule ? "true" : "false";
  out += ",\"stream\":";
  out += request.stream_incumbents ? "true" : "false";
  out += ",\"model\":";
  obs::json::append_string(out, request.model_text);
  out += "}\n";
  return out;
}

std::string render_response_line(const Response& response) {
  std::string out = "{\"id\":";
  obs::json::append_string(out, response.id);
  out += ",\"event\":\"result\",\"ok\":";
  out += response.ok ? "true" : "false";
  if (!response.error.empty()) {
    out += ",\"error\":";
    obs::json::append_string(out, response.error);
  }
  out += ",\"status\":";
  obs::json::append_string(out, wire_status_name(response.status));
  out += ",\"certified\":";
  out += response.certified ? "true" : "false";
  out += ",\"cache\":";
  obs::json::append_string(out, response.cache_hit ? "hit" : "miss");
  if (response.near_miss) out += ",\"near\":true";
  out += ",\"fingerprint\":";
  obs::json::append_string(out, response.fingerprint);
  out += ",\"exact\":";
  out += response.exact ? "true" : "false";
  out += ",\"objective\":";
  obs::json::append_number(out, response.objective_value);
  out += ",\"strategy\":";
  obs::json::append_string(out, response.strategy);
  out += ",\"wall_ms\":";
  obs::json::append_number(out, response.wall_ms);
  out += ",\"incumbents\":";
  obs::json::append_number(out, response.incumbents);
  if (!response.schedule_text.empty()) {
    out += ",\"schedule\":";
    obs::json::append_string(out, response.schedule_text);
  }
  out += "}\n";
  return out;
}

std::string render_incumbent_line(const std::string& id,
                                  const IncumbentUpdate& update) {
  std::string out = "{\"id\":";
  obs::json::append_string(out, id);
  out += ",\"event\":\"incumbent\",\"objective\":";
  obs::json::append_number(out, update.objective);
  out += ",\"strategy\":";
  obs::json::append_string(out, update.strategy);
  out += "}\n";
  return out;
}

Response parse_response_line(const std::string& line) {
  support::JsonValue v;
  std::string err;
  if (!support::parse_json(line, &v, &err)) {
    throw ParseError(0, "bad response JSON: " + err);
  }
  if (v.kind != support::JsonValue::Kind::kObject ||
      v.str_or("event", "") != "result") {
    throw ParseError(0, "not a result line");
  }
  Response r;
  r.id = v.str_or("id", "");
  r.ok = v.bool_or("ok", false);
  r.error = v.str_or("error", "");
  if (!parse_wire_status(v.str_or("status", ""), &r.status)) {
    throw ParseError(0, "bad status in result line");
  }
  r.certified = v.bool_or("certified", false);
  r.cache_hit = v.str_or("cache", "miss") == "hit";
  r.near_miss = v.bool_or("near", false);
  r.fingerprint = v.str_or("fingerprint", "");
  r.exact = v.bool_or("exact", true);
  double num = 0.0;
  if (v.num_of("objective", &num)) r.objective_value = num;
  r.strategy = v.str_or("strategy", "");
  if (v.num_of("wall_ms", &num)) r.wall_ms = num;
  if (v.num_of("incumbents", &num)) r.incumbents = static_cast<int>(num);
  r.schedule_text = v.str_or("schedule", "");
  return r;
}

std::string render_stats_line(const std::string& id,
                              const ServiceStats& stats) {
  std::string out = "{\"id\":";
  obs::json::append_string(out, id);
  out += ",\"event\":\"stats\",\"ok\":true,\"draining\":";
  out += stats.draining ? "true" : "false";
  out += ",\"requests\":";
  obs::json::append_number(out, stats.requests);
  out += ",\"rejected\":";
  obs::json::append_number(out, stats.rejected);
  out += ",\"certified\":";
  obs::json::append_number(out, stats.certified);
  out += ",\"cache_hits\":";
  obs::json::append_number(out, stats.cache.hits);
  out += ",\"cache_misses\":";
  obs::json::append_number(out, stats.cache.misses);
  out += ",\"cache_size\":";
  obs::json::append_number(out, static_cast<std::int64_t>(stats.cache.size));
  out += ",\"journal_appended\":";
  obs::json::append_number(out, stats.journal.appended);
  out += ",\"journal_recovered\":";
  obs::json::append_number(out, stats.journal.recovered);
  out += ",\"journal_dropped_corrupt\":";
  obs::json::append_number(out, stats.journal.dropped_corrupt);
  out += ",\"journal_dropped_uncertified\":";
  obs::json::append_number(out, stats.journal.dropped_uncertified);
  out += ",\"journal_dropped_stale\":";
  obs::json::append_number(out, stats.journal.dropped_stale);
  out += ",\"journal_compactions\":";
  obs::json::append_number(out, stats.journal.compactions);
  out += "}\n";
  return out;
}

ServerStatsReply parse_stats_line(const std::string& line) {
  support::JsonValue v;
  std::string err;
  if (!support::parse_json(line, &v, &err)) {
    throw ParseError(0, "bad stats JSON: " + err);
  }
  if (v.kind != support::JsonValue::Kind::kObject ||
      v.str_or("event", "") != "stats") {
    throw ParseError(0, "not a stats line");
  }
  ServerStatsReply r;
  r.ok = v.bool_or("ok", false);
  r.draining = v.bool_or("draining", false);
  double num = 0.0;
  const auto i64 = [&](const char* key, std::int64_t* out) {
    if (v.num_of(key, &num)) *out = static_cast<std::int64_t>(num);
  };
  i64("requests", &r.requests);
  i64("rejected", &r.rejected);
  i64("certified", &r.certified);
  i64("cache_hits", &r.cache_hits);
  i64("cache_misses", &r.cache_misses);
  if (v.num_of("cache_size", &num)) {
    r.cache_size = static_cast<std::size_t>(num);
  }
  i64("journal_appended", &r.journal_appended);
  i64("journal_recovered", &r.journal_recovered);
  i64("journal_dropped_corrupt", &r.journal_dropped_corrupt);
  i64("journal_dropped_uncertified", &r.journal_dropped_uncertified);
  i64("journal_dropped_stale", &r.journal_dropped_stale);
  i64("journal_compactions", &r.journal_compactions);
  return r;
}

// --- server ----------------------------------------------------------------

Server::Server(Service& service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      runner_(engine::BatchOptions{options_.threads}) {
  LETDMA_ENSURE(!options_.socket_path.empty(), "socket_path is required");
  LETDMA_ENSURE(options_.max_batch > 0, "max_batch must be positive");
  LETDMA_ENSURE(options_.max_connections > 0,
                "max_connections must be positive");
}

Server::~Server() { stop(); }

void Server::start() {
  LETDMA_ENSURE(!running(), "server already running");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LETDMA_ENSURE(options_.socket_path.size() < sizeof(addr.sun_path),
                "socket path too long");
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  // A socket file left behind by a crashed daemon must not block the
  // restart — but blindly unlinking would steal a *live* daemon's
  // listener. Probe-connect to tell the two apart.
  if (::access(options_.socket_path.c_str(), F_OK) == 0) {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool live =
          ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0;
      ::close(probe);
      if (live) {
        throw support::Error("bind " + options_.socket_path +
                             ": another daemon is already serving on this "
                             "socket");
      }
    }
    ::unlink(options_.socket_path.c_str());
    obs::log_info("serve",
                  "removed stale socket " + options_.socket_path);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::Error("bind/listen " + options_.socket_path + ": " + what);
  }
  draining_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&Server::accept_loop, this);
  obs::log_info("serve", "listening on " + options_.socket_path);
}

void Server::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) {
    // Never started (or a concurrent stop won); still reap a listener
    // left behind by a failed start.
    if (listen_fd_ >= 0 && !accept_thread_.joinable()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (Conn& c : conns_) {
      if (c.fd >= 0) ::shutdown(c.fd, SHUT_RDWR);
    }
  }
  // No new conns can appear (accept thread joined); join + close all.
  for (Conn& c : conns_) {
    if (c.thread.joinable()) c.thread.join();
    if (c.fd >= 0) ::close(c.fd);
  }
  conns_.clear();
  ::unlink(options_.socket_path.c_str());
  obs::log_info("serve", "stopped " + options_.socket_path);
}

bool Server::drain(double timeout_sec) {
  if (!running()) return true;
  obs::flight_event("serve.server.drain_begin", "serve",
                    {{"timeout_sec", timeout_sec}});
  // Phase 1: shed everything new (connections here, requests in the
  // service) while in-flight solves run to completion.
  draining_.store(true, std::memory_order_relaxed);
  service_.begin_drain();
  const auto t0 = Clock::now();
  while (service_.inflight() > 0 && seconds_since(t0) < timeout_sec) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  bool clean = service_.inflight() == 0;
  if (!clean) {
    // Phase 2: the drain budget is spent; cancel the stragglers through
    // their budgets' stop tokens and give cooperative cancellation a
    // short grace to unwind.
    service_.cancel_inflight();
    const auto t1 = Clock::now();
    while (service_.inflight() > 0 && seconds_since(t1) < 2.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  service_.flush_journal();
  stop();
  obs::flight_event("serve.server.drain_end", "serve", {{"clean", clean}});
  return clean;
}

void Server::reap_connections() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      if (it->fd >= 0) ::close(it->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (running()) {
    // poll() rather than blocking accept: the tick both reaps finished
    // connection threads and re-checks running()/draining_ promptly, and
    // EINTR from a delivered signal is a normal wakeup, not an error.
    pollfd p{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reap_connections();
    if (pr == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      break;  // listener shut down (stop()) or broken
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running()) {
      ::close(fd);
      break;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      obs::Counter("serve.connections.shed").add();
      write_all(fd, error_line("", "draining: service is shutting down"));
      ::close(fd);
      continue;
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      // Explicit load shed: the client learns why instead of seeing a
      // silent close it cannot distinguish from a crash.
      obs::Counter("serve.connections.shed").add();
      write_all(fd, error_line("", "overloaded: connection limit " +
                                       std::to_string(
                                           options_.max_connections) +
                                       " reached, retry later"));
      ::close(fd);
      continue;
    }
    conns_.emplace_back();
    Conn& conn = conns_.back();  // list nodes are address-stable
    conn.fd = fd;
    conn.thread = std::thread([this, &conn] {
      serve_connection(conn.fd);
      conn.done.store(true, std::memory_order_release);
    });
  }
}

void Server::serve_connection(int fd) {
  obs::Counter("serve.connections").add();
  std::string buffer;
  std::vector<std::string> batch;
  char chunk[65536];
  // The idle clock measures time since the last *processed* batch; bytes
  // that never complete a request line do not feed it, so a stalled or
  // trickling client is disconnected on schedule.
  auto last_batch = Clock::now();
  for (;;) {
    // Drain every complete line already buffered into one batch.
    batch.clear();
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && batch.size() < options_.max_batch;
         nl = buffer.find('\n', start)) {
      batch.push_back(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);

    if (!batch.empty()) {
      last_batch = Clock::now();
      if (guard::poll("serve.socket.stall") == guard::FaultKind::kStall) {
        // An injected slow server: the client's read timeout / retry
        // discipline is what's under test.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (guard::poll("serve.socket.drop") == guard::FaultKind::kDrop) {
        obs::flight_event("serve.socket.dropped", "serve", {},
                          obs::Level::kWarn);
        return;  // hard close mid-exchange
      }
      const auto answer = [&](const std::string& line,
                              const Service::IncumbentCallback& stream) {
        Response res;
        try {
          const Request req = parse_request_line(line);
          if (req.type == "health") {
            return health_line(req.id, service_.draining());
          }
          if (req.type == "stats") {
            return render_stats_line(req.id, service_.stats());
          }
          res = service_.handle(req, stream);
        } catch (const std::exception& e) {
          res.ok = false;
          res.error = e.what();
        }
        return render_response_line(res);
      };
      if (batch.size() == 1) {
        // Single request: stream incumbents inline (request order cannot
        // be violated — there is nothing to interleave with).
        const std::string out = answer(batch[0], [&](const IncumbentUpdate&
                                                         update) {
          std::string id;
          try {
            id = parse_request_line(batch[0]).id;
          } catch (const std::exception&) {
          }
          write_all(fd, render_incumbent_line(id, update));
        });
        if (!write_all(fd, out)) return;
      } else {
        // Pipelined batch: fan out on the worker fleet, reply in order.
        const std::vector<std::string> replies =
            runner_.map<std::string>(batch.size(), [&](std::size_t i) {
              return answer(batch[i], {});
            });
        std::string out;
        for (const std::string& r : replies) out += r;
        if (!write_all(fd, out)) return;
      }
      continue;  // more complete lines may already be buffered
    }

    // Nothing complete buffered: wait for bytes under the idle timeout.
    // stop() shuts the fd down, which wakes the poll immediately.
    int timeout_ms = -1;
    if (options_.read_timeout_sec > 0.0) {
      const double left =
          options_.read_timeout_sec - seconds_since(last_batch);
      if (left <= 0.0) {
        obs::Counter("serve.connections.timeout").add();
        write_all(fd, error_line("", "read timeout: no complete request "
                                     "line arrived within the idle limit"));
        return;
      }
      timeout_ms = static_cast<int>(std::ceil(left * 1000.0));
    }
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (pr == 0) continue;  // loop re-checks the idle clock and times out
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    if (n <= 0) return;  // peer closed or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

// --- client ----------------------------------------------------------------

Client::Client(const std::string& socket_path, ClientOptions options)
    : socket_path_(socket_path), options_(options) {
  try {
    connect_once();
  } catch (const support::Error&) {
    if (!reconnect_with_backoff()) throw;
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::connect_once() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();  // a partial line from a dead connection is garbage
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LETDMA_ENSURE(socket_path_.size() < sizeof(addr.sun_path),
                "socket path too long");
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    std::string what = "connect " + socket_path_ + ": " +
                       std::strerror(saved);
    // The two "daemon absent" shapes deserve an actionable hint, not a
    // bare errno.
    if (saved == ENOENT) {
      what += " (no socket at this path — is letdma_served running?)";
    } else if (saved == ECONNREFUSED) {
      what += " (stale socket, no daemon accepting — restart "
              "letdma_served or remove the file)";
    }
    throw support::Error(what);
  }
}

bool Client::reconnect_with_backoff() {
  if (!options_.retry.enabled) return false;
  double backoff = options_.retry.initial_backoff_sec;
  for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
    // Deterministic jitter in [0.5, 1.0) of the nominal backoff: spreads
    // a thundering herd without losing reproducibility under a seed.
    const std::uint64_t r = splitmix64(
        options_.retry.jitter_seed ^
        (static_cast<std::uint64_t>(reconnects_) << 16) ^
        static_cast<std::uint64_t>(attempt));
    const double u =
        static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(backoff * (0.5 + 0.5 * u)));
    try {
      connect_once();
      ++reconnects_;
      obs::Counter("serve.client.reconnects").add();
      return true;
    } catch (const support::Error&) {
      backoff = std::min(backoff * options_.retry.backoff_multiplier,
                         options_.retry.max_backoff_sec);
    }
  }
  return false;
}

bool Client::read_line(std::string* line) {
  const auto t0 = Clock::now();
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      *line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (options_.read_timeout_sec > 0.0) {
      const double left = options_.read_timeout_sec - seconds_since(t0);
      if (left <= 0.0) {
        throw support::Error("serve client: read timed out after " +
                             std::to_string(options_.read_timeout_sec) +
                             "s");
      }
      pollfd p{fd_, POLLIN, 0};
      const int pr =
          ::poll(&p, 1, static_cast<int>(std::ceil(left * 1000.0)));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr == 0) continue;  // loop throws on the recheck
    }
    char chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Response Client::call(const Request& request,
                      const Service::IncumbentCallback& on_incumbent) {
  for (;;) {
    bool disconnected = fd_ < 0 ||
                        !write_all(fd_, render_request_line(request));
    if (!disconnected) {
      std::string line;
      while (read_line(&line)) {
        support::JsonValue v;
        std::string err;
        if (support::parse_json(line, &v, &err) &&
            v.str_or("event", "") == "incumbent") {
          if (on_incumbent) {
            IncumbentUpdate update;
            v.num_of("objective", &update.objective);
            update.strategy = v.str_or("strategy", "");
            on_incumbent(update);
          }
          continue;
        }
        return parse_response_line(line);
      }
      disconnected = true;
    }
    // Re-sending after a disconnect is idempotent: the service is a
    // fingerprint-keyed cache, so the worst case is an extra hit.
    if (disconnected && !reconnect_with_backoff()) {
      throw support::Error(
          "serve client: connection closed before result" +
          std::string(options_.retry.enabled ? " (retries exhausted)"
                                             : ""));
    }
  }
}

std::vector<Response> Client::call_batch(
    const std::vector<Request>& requests) {
  bool disconnected = false;
  std::vector<Response> responses = call_batch(requests, &disconnected);
  if (disconnected) {
    throw support::Error(
        "serve client: connection closed mid-batch (" +
        std::to_string(responses.size()) + "/" +
        std::to_string(requests.size()) + " answered)");
  }
  return responses;
}

std::vector<Response> Client::call_batch(
    const std::vector<Request>& requests, bool* disconnected) {
  *disconnected = false;
  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (;;) {
    // Re-send only the unanswered suffix (responses arrive in request
    // order, so the prefix is settled).
    std::string out;
    for (std::size_t i = responses.size(); i < requests.size(); ++i) {
      Request flat = requests[i];
      flat.stream_incumbents = false;
      out += render_request_line(flat);
    }
    bool broke = fd_ < 0;
    if (!broke) {
      // Write from a helper thread while this thread drains responses: a
      // large batch can exceed both socket buffers, and a server blocked
      // on writing responses stops reading requests — writer and reader
      // must make progress independently or the connection deadlocks.
      std::thread writer([this, &out] { write_all(fd_, out); });
      try {
        std::string line;
        while (responses.size() < requests.size() && read_line(&line)) {
          support::JsonValue v;
          std::string err;
          if (support::parse_json(line, &v, &err) &&
              v.str_or("event", "") != "result") {
            continue;  // stray incumbent event
          }
          responses.push_back(parse_response_line(line));
        }
      } catch (...) {
        ::shutdown(fd_, SHUT_RDWR);  // unblock the writer before joining
        writer.join();
        throw;
      }
      writer.join();
      if (responses.size() == requests.size()) return responses;
      broke = true;
    }
    if (broke && !reconnect_with_backoff()) {
      *disconnected = true;
      return responses;
    }
  }
}

bool Client::health(bool* draining) {
  Request req;
  req.type = "health";
  req.id = "health";
  try {
    if (fd_ < 0 || !write_all(fd_, render_request_line(req))) return false;
    std::string line;
    if (!read_line(&line)) return false;
    support::JsonValue v;
    std::string err;
    if (!support::parse_json(line, &v, &err) ||
        v.str_or("event", "") != "health") {
      return false;
    }
    if (draining != nullptr) *draining = v.bool_or("draining", false);
    return v.bool_or("ok", false);
  } catch (const support::Error&) {
    return false;
  }
}

ServerStatsReply Client::stats() {
  Request req;
  req.type = "stats";
  req.id = "stats";
  if (fd_ < 0 || !write_all(fd_, render_request_line(req))) {
    throw support::Error("serve client: connection closed while writing");
  }
  std::string line;
  if (!read_line(&line)) {
    throw support::Error("serve client: connection closed before stats");
  }
  return parse_stats_line(line);
}

}  // namespace letdma::serve
