#include "letdma/serve/translate.hpp"

#include <utility>
#include <vector>

#include "letdma/let/transfer.hpp"
#include "letdma/support/error.hpp"

namespace letdma::serve {

let::ScheduleResult translate_schedule(
    const let::ScheduleResult& canonical_result,
    const model::Canonicalization& canon, const let::LetComms& target) {
  const model::Application& app = target.app();
  const int num_cores = app.platform().num_cores();
  LETDMA_ENSURE(static_cast<int>(canon.task_map.size()) == app.num_tasks() &&
                    static_cast<int>(canon.label_map.size()) ==
                        app.num_labels() &&
                    static_cast<int>(canon.core_map.size()) == num_cores,
                "canonicalization does not describe the target instance");
  const std::vector<int> task_inv = model::invert_permutation(canon.task_map);
  const std::vector<int> label_inv =
      model::invert_permutation(canon.label_map);

  const auto pull_slot = [&](const let::Slot& s) {
    let::Slot t;
    t.label = model::LabelId{label_inv[static_cast<std::size_t>(s.label.value)]};
    t.owner = s.owner.value < 0
                  ? model::TaskId{}
                  : model::TaskId{
                        task_inv[static_cast<std::size_t>(s.owner.value)]};
    return t;
  };

  let::MemoryLayout layout(app);
  for (int m = 0; m <= num_cores; ++m) {
    // Local memory m belongs to core m; its canonical twin is the local
    // memory of the renumbered core. The global memory maps to itself.
    const model::MemoryId target_mem{m};
    const model::MemoryId canon_mem{
        m == num_cores ? num_cores
                       : canon.core_map[static_cast<std::size_t>(m)]};
    std::vector<let::Slot> slots;
    const std::vector<let::Slot>& canon_order =
        canonical_result.layout.order(canon_mem);
    slots.reserve(canon_order.size());
    for (const let::Slot& s : canon_order) slots.push_back(pull_slot(s));
    layout.set_order(target_mem, std::move(slots));
  }

  std::vector<let::DmaTransfer> s0;
  s0.reserve(canonical_result.s0_transfers.size());
  for (const let::DmaTransfer& tr : canonical_result.s0_transfers) {
    std::vector<let::Communication> comms;
    comms.reserve(tr.comms.size());
    for (const let::Communication& c : tr.comms) {
      comms.push_back(
          {c.dir,
           model::TaskId{task_inv[static_cast<std::size_t>(c.task.value)]},
           model::LabelId{
               label_inv[static_cast<std::size_t>(c.label.value)]}});
    }
    s0.push_back(let::make_transfer(layout, std::move(comms)));
  }

  let::ScheduleResult out{std::move(layout), std::move(s0), {}};
  out.schedule = let::derive_schedule(target, out.layout, out.s0_transfers);
  return out;
}

}  // namespace letdma::serve
