#include "letdma/serve/service.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "letdma/engine/incremental.hpp"
#include "letdma/guard/certify.hpp"
#include "letdma/let/schedule_io.hpp"
#include "letdma/model/diff.hpp"
#include "letdma/model/io.hpp"
#include "letdma/obs/flight.hpp"
#include "letdma/obs/histogram.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/serve/translate.hpp"
#include "letdma/support/error.hpp"

namespace letdma::serve {
namespace {

obs::Counter& requests_counter() {
  static obs::Counter c("serve.requests");
  return c;
}
obs::Counter& rejected_counter() {
  static obs::Counter c("serve.admission.rejected");
  return c;
}
obs::Counter& certified_counter() {
  static obs::Counter c("serve.responses.certified");
  return c;
}
obs::Counter& shed_counter() {
  static obs::Counter c("serve.drain.shed");
  return c;
}
obs::Counter& recovered_counter() {
  static obs::Counter c("serve.journal.recovered");
  return c;
}
obs::Counter& recover_uncertified_counter() {
  static obs::Counter c("serve.journal.dropped_uncertified");
  return c;
}
obs::Counter& recover_stale_counter() {
  static obs::Counter c("serve.journal.dropped_stale");
  return c;
}
obs::Counter& nearmiss_hit_counter() {
  static obs::Counter c("serve.nearmiss.hit");
  return c;
}
obs::Counter& nearmiss_reject_counter() {
  static obs::Counter c("serve.nearmiss.reject");
  return c;
}

/// RAII slot in the tenant's in-flight budget.
class InflightSlot {
 public:
  InflightSlot(std::mutex& mu, std::map<std::string, int>& inflight,
               const std::string& tenant)
      : mu_(mu), inflight_(inflight), tenant_(tenant) {}
  ~InflightSlot() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--inflight_[tenant_] <= 0) inflight_.erase(tenant_);
  }

 private:
  std::mutex& mu_;
  std::map<std::string, int>& inflight_;
  std::string tenant_;
};

/// Publishes improving incumbents to the shared sink AND the caller's
/// streaming callback (the sink keeps the dedup/improvement logic).
class StreamingSink : public engine::IncumbentSink {
 public:
  explicit StreamingSink(const Service::IncumbentCallback& callback)
      : callback_(callback) {}

  bool offer(const let::ScheduleResult& schedule, double objective,
             const std::string& strategy) override {
    const bool kept = inner_.offer(schedule, objective, strategy);
    if (kept && callback_) callback_({objective, strategy});
    return kept;
  }
  std::optional<engine::Incumbent> best() const override {
    return inner_.best();
  }
  int improvements() const { return inner_.improvements(); }

 private:
  engine::SharedIncumbent inner_;
  Service::IncumbentCallback callback_;
};

/// The live cache re-serialized as journal records — what a restart
/// should recover.
std::vector<JournalRecord> snapshot_records(const SolveCache& cache) {
  std::vector<JournalRecord> live;
  for (const auto& [key, value] : cache.snapshot()) {
    JournalRecord r;
    r.canonical_text = model::write_application(*value->app);
    r.objective = key.objective;
    r.status = value->status;
    r.objective_value = value->objective_value;
    r.strategy = value->strategy;
    r.schedule_text = let::write_schedule(*value->app, value->schedule);
    live.push_back(std::move(r));
  }
  return live;
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

bool parse_objective(const std::string& name, engine::Objective* out) {
  if (name == "del") {
    *out = engine::Objective::kMinMaxLatencyRatio;
  } else if (name == "dmat") {
    *out = engine::Objective::kMinTransfers;
  } else if (name == "none") {
    *out = engine::Objective::kFeasibility;
  } else {
    return false;
  }
  return true;
}

const char* objective_wire_name(engine::Objective objective) {
  switch (objective) {
    case engine::Objective::kMinMaxLatencyRatio: return "del";
    case engine::Objective::kMinTransfers: return "dmat";
    case engine::Objective::kFeasibility: return "none";
  }
  return "?";
}

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_shards) {
  if (!options_.journal_path.empty()) {
    journal_ = std::make_unique<Journal>(options_.journal_path);
    recover_journal();
  }
}

void Service::recover_journal() {
  // No lock needed: recovery runs in the constructor, before any request.
  const std::vector<JournalRecord> records =
      journal_->load(&journal_stats_);
  for (const JournalRecord& rec : records) {
    try {
      // The canonical text is the serialization: rebuild the instance and
      // verify it still canonicalizes to itself under the *current*
      // algorithm — a version drift would desynchronize the permutation
      // maps that translate_schedule relies on.
      auto app = model::read_application(rec.canonical_text);
      const model::Canonicalization canon = model::canonicalize(*app);
      if (canon.text != rec.canonical_text) {
        ++journal_stats_.dropped_stale;
        recover_stale_counter().add();
        continue;
      }
      auto comms = std::make_unique<let::LetComms>(*app);
      std::optional<let::ScheduleResult> schedule;
      try {
        schedule = let::read_schedule(*comms, rec.schedule_text);
      } catch (const support::Error&) {
        ++journal_stats_.dropped_uncertified;
        recover_uncertified_counter().add();
        continue;
      }
      // The re-certify-on-load invariant: nothing enters the cache from
      // disk without passing guard::certify in this process. The stored
      // objective value is recomputed rather than trusted (the CRC
      // protects integrity, not meaning).
      if (!guard::certify(*comms, *schedule).certified()) {
        ++journal_stats_.dropped_uncertified;
        recover_uncertified_counter().add();
        obs::flight_event("serve.journal.recover_uncertified", "serve",
                          {{"fingerprint", canon.fingerprint.to_hex()}},
                          obs::Level::kWarn);
        continue;
      }
      const double objective =
          engine::objective_of(*comms, *schedule, rec.objective);
      const CacheKey key{canon.fingerprint, rec.objective};
      cache_.insert(key, std::make_shared<CachedSolve>(CachedSolve{
                             std::move(app), std::move(comms),
                             std::move(*schedule), rec.status, objective,
                             rec.strategy}));
      ++journal_stats_.recovered;
      recovered_counter().add();
    } catch (const support::Error&) {
      ++journal_stats_.dropped_stale;
      recover_stale_counter().add();
    }
  }
  obs::log_info(
      "serve",
      "journal recovery: " + std::to_string(journal_stats_.recovered) +
          " recovered, " + std::to_string(journal_stats_.dropped_corrupt) +
          " corrupt, " + std::to_string(journal_stats_.dropped_uncertified) +
          " uncertified, " + std::to_string(journal_stats_.dropped_stale) +
          " stale, " + std::to_string(journal_stats_.torn_bytes) +
          " torn bytes");
  // Self-heal: rewrite the journal to exactly the surviving set so the
  // torn tail and dropped records do not come back on the next restart.
  flush_journal();
}

void Service::append_journal(const std::string& canonical_text,
                             engine::Objective objective,
                             const CachedSolve& entry) {
  if (journal_ == nullptr) return;
  JournalRecord rec;
  rec.canonical_text = canonical_text;
  rec.objective = objective;
  rec.status = entry.status;
  rec.objective_value = entry.objective_value;
  rec.strategy = entry.strategy;
  rec.schedule_text = let::write_schedule(*entry.app, entry.schedule);
  std::lock_guard<std::mutex> lock(journal_mu_);
  try {
    journal_->append(rec);
    ++journal_stats_.appended;
  } catch (const support::Error& e) {
    // Durability is best-effort relative to serving: a full disk must not
    // fail the request whose solve already succeeded.
    obs::log_warn("serve",
                  std::string("journal append failed: ") + e.what());
    return;
  }
  if (journal_->appends_since_compact() >=
      options_.journal_compact_every) {
    try {
      journal_->compact(snapshot_records(cache_));
      ++journal_stats_.compactions;
    } catch (const support::Error& e) {
      obs::log_warn("serve",
                    std::string("journal compaction failed: ") + e.what());
    }
  }
}

void Service::flush_journal() {
  if (journal_ == nullptr) return;
  std::lock_guard<std::mutex> lock(journal_mu_);
  try {
    journal_->compact(snapshot_records(cache_));
    ++journal_stats_.compactions;
  } catch (const support::Error& e) {
    obs::log_warn("serve",
                  std::string("journal flush failed: ") + e.what());
  }
}

int Service::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  int total = 0;
  for (const auto& [tenant, n] : inflight_) total += n;
  return total;
}

void Service::begin_drain() {
  draining_.store(true, std::memory_order_relaxed);
  obs::flight_event("serve.drain.begin", "serve", {});
}

void Service::cancel_inflight() {
  cancel_.store(true, std::memory_order_relaxed);
  obs::flight_event("serve.drain.cancel_inflight", "serve", {},
                    obs::Level::kWarn);
}

const TenantPolicy& Service::policy_for(const std::string& tenant) const {
  const auto it = options_.tenant_policies.find(tenant);
  return it != options_.tenant_policies.end() ? it->second
                                              : options_.default_policy;
}

Response Service::handle(const Request& request,
                         const IncumbentCallback& on_incumbent) {
  const auto t0 = std::chrono::steady_clock::now();
  requests_counter().add();
  obs::Counter("serve.requests." + request.tenant).add();

  Response res;
  res.id = request.id;

  // --- admission ----------------------------------------------------------
  if (draining()) {
    shed_counter().add();
    rejected_counter().add();
    res.error = "draining: service is shutting down, retry elsewhere";
    res.wall_ms = elapsed_ms(t0);
    return res;
  }
  const TenantPolicy& policy = policy_for(request.tenant);
  std::optional<InflightSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int& inflight = inflight_[request.tenant];
    if (inflight >= policy.max_inflight) {
      rejected_counter().add();
      obs::Counter("serve.admission.rejected." + request.tenant).add();
      res.error = "admission: tenant `" + request.tenant + "` over " +
                  std::to_string(policy.max_inflight) +
                  " in-flight requests";
      res.wall_ms = elapsed_ms(t0);
      return res;
    }
    ++inflight;
    slot.emplace(mu_, inflight_, request.tenant);
  }
  const double budget_sec =
      std::min(request.budget_sec > 0 ? request.budget_sec
                                      : policy.max_budget_sec,
               policy.max_budget_sec);

  try {
    // --- canonicalize -----------------------------------------------------
    const std::unique_ptr<model::Application> app =
        model::read_application(request.model_text);
    model::Canonicalization canon = model::canonicalize(*app);
    res.fingerprint = canon.fingerprint.to_hex();
    res.exact = canon.exact;
    const let::LetComms target(*app);
    const CacheKey key{canon.fingerprint, request.objective};

    const auto serve_entry =
        [&](const CachedSolve& entry) -> bool {
      // Un-permute onto the requesting instance and certify against it;
      // any structural throw is equivalent to a failed certificate.
      try {
        let::ScheduleResult translated =
            translate_schedule(entry.schedule, canon, target);
        const guard::Certificate cert = guard::certify(target, translated);
        if (!cert.certified()) return false;
        res.ok = true;
        res.status = entry.status;
        res.certified = true;
        res.objective_value =
            engine::objective_of(target, translated, request.objective);
        res.strategy = entry.strategy;
        if (request.want_schedule) {
          res.schedule_text = let::write_schedule(*app, translated);
        }
        return true;
      } catch (const support::Error&) {
        return false;
      }
    };

    // --- cache ------------------------------------------------------------
    if (const std::shared_ptr<const CachedSolve> hit = cache_.lookup(key)) {
      if (serve_entry(*hit)) {
        res.cache_hit = true;
        certified_counter().add();
        res.wall_ms = elapsed_ms(t0);
        obs::Histogram("serve.request_ms." + request.tenant)
            .record(res.wall_ms);
        return res;
      }
      cache_.invalidate(key);
      obs::flight_event(
          "serve.cache_invalidate", "serve",
          {{"fingerprint", res.fingerprint}, {"tenant", request.tenant}},
          obs::Level::kWarn);
    }

    // --- near-miss scan ---------------------------------------------------
    // On a fingerprint miss, look for the structurally closest cached
    // instance under the same objective; its schedule + diff warm-start
    // the fresh solve below. The shared_ptr keeps the candidate alive for
    // the duration of the solve even if the cache evicts it.
    std::shared_ptr<const CachedSolve> near;
    std::optional<model::ApplicationDiff> near_diff;
    if (options_.nearmiss_max_distance > 0.0) {
      double best_dist = options_.nearmiss_max_distance;
      int scanned = 0;
      for (const auto& [cand_key, cand] : cache_.snapshot()) {
        if (cand_key.objective != request.objective) continue;
        if (++scanned > options_.nearmiss_scan_limit) break;
        try {
          const double dist =
              model::canonical_distance(*cand->app, *canon.app);
          if (dist <= best_dist) {
            best_dist = dist;
            near = cand;
          }
        } catch (const support::Error&) {
          // An undiffable candidate is simply not a near miss.
        }
      }
      if (near) {
        near_diff = model::diff(*near->app, *canon.app);
        obs::flight_event("serve.nearmiss.candidate", "serve",
                          {{"fingerprint", res.fingerprint},
                           {"distance", best_dist},
                           {"diff", near_diff->summary()}});
      }
    }

    // --- fresh solve on the canonical instance ----------------------------
    // Supervised chain cold; the incremental repair engine (which falls
    // through to the same chain) when a near-miss candidate seeded it.
    auto canonical_comms = std::make_unique<let::LetComms>(*canon.app);
    engine::GuardOptions guard_options = options_.guard;
    guard_options.objective = request.objective;
    engine::WarmStart warm;
    std::unique_ptr<engine::Scheduler> scheduler;
    if (near) {
      warm.schedule = &near->schedule;
      warm.diff = &*near_diff;
      engine::IncrementalOptions iopt;
      iopt.objective = request.objective;
      iopt.guard = guard_options;
      scheduler = std::make_unique<engine::IncrementalScheduler>(iopt);
    } else {
      scheduler =
          std::make_unique<engine::SupervisedScheduler>(guard_options);
    }
    StreamingSink sink(request.stream_incumbents ? on_incumbent
                                                 : IncumbentCallback{});
    engine::Budget budget;
    budget.wall_sec = budget_sec;
    budget.stop = &cancel_;
    if (request.deadline_sec > 0.0) {
      budget.deadline =
          t0 + std::chrono::duration_cast<
                   std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(request.deadline_sec));
    }
    const engine::ScheduleOutcome outcome =
        scheduler->solve(*canonical_comms, budget, sink, warm);
    if (near) {
      // hit = the repair (or the warm seed itself) produced the served
      // schedule; reject = the warm start did not pay and the cold chain
      // took over.
      const bool warm_served = outcome.schedule.has_value() &&
                               (outcome.strategy == "repair" ||
                                outcome.strategy == "warm");
      if (warm_served) {
        res.near_miss = true;
        nearmiss_hit_counter().add();
        obs::flight_event("serve.nearmiss.hit", "serve",
                          {{"fingerprint", res.fingerprint},
                           {"strategy", outcome.strategy}});
      } else {
        nearmiss_reject_counter().add();
        obs::flight_event("serve.nearmiss.reject", "serve",
                          {{"fingerprint", res.fingerprint},
                           {"strategy", outcome.strategy}},
                          obs::Level::kWarn);
      }
    }
    res.incumbents = sink.improvements();
    res.status = outcome.status;
    res.strategy = outcome.strategy;

    if (outcome.schedule.has_value()) {
      // The entry takes over the canonical application and its comms;
      // moving the unique_ptrs does not move the referenced objects, so
      // the ScheduleResult's internal pointers stay valid.
      const auto entry = std::make_shared<CachedSolve>(
          CachedSolve{std::move(canon.app), std::move(canonical_comms),
                      *outcome.schedule, outcome.status, outcome.objective,
                      outcome.strategy});
      // Inexact canonical forms (branch budget exceeded) are cached too:
      // they are deterministic per input, so they still hit for repeated
      // identical submissions, and a cross-instance false hit is caught
      // by the per-request certification below.
      cache_.insert(key, entry);
      if (serve_entry(*entry)) {
        certified_counter().add();
        // Durability rides behind the response path: the entry is in the
        // cache and certified, so journal it for the next incarnation.
        // canon.text survived the move of canon.app above.
        append_journal(canon.text, request.objective, *entry);
      } else {
        // The solve certified on the canonical instance but the mapping
        // back failed — only possible if the canonicalization maps are
        // corrupt. Surface it instead of serving uncertified bytes.
        cache_.invalidate(key);
        obs::flight_event(
            "serve.translate_failed", "serve",
            {{"fingerprint", res.fingerprint}, {"tenant", request.tenant}},
            obs::Level::kError);
        res.ok = false;
        res.certified = false;
        res.error = "internal: translated schedule failed certification";
      }
    } else {
      // Infeasible / timeout: no schedule to certify; the outcome shape
      // itself is still checked.
      res.ok = true;
      res.certified =
          engine::certify_outcome(*canonical_comms, outcome,
                                  request.objective)
              .certified();
      res.objective_value = outcome.objective;
    }
  } catch (const support::Error& e) {
    res.ok = false;
    res.error = e.what();
  }

  res.wall_ms = elapsed_ms(t0);
  obs::Histogram("serve.request_ms." + request.tenant).record(res.wall_ms);
  return res;
}

ServiceStats Service::stats() const {
  ServiceStats st;
  st.requests = requests_counter().value();
  st.rejected = rejected_counter().value();
  st.certified = certified_counter().value();
  st.draining = draining();
  st.cache = cache_.stats();
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    st.journal = journal_stats_;
  }
  return st;
}

}  // namespace letdma::serve
