#include "letdma/serve/cache.hpp"

#include <algorithm>

#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::serve {
namespace {

obs::Counter& hits_counter() {
  static obs::Counter c("serve.cache.hits");
  return c;
}
obs::Counter& misses_counter() {
  static obs::Counter c("serve.cache.misses");
  return c;
}
obs::Counter& evictions_counter() {
  static obs::Counter c("serve.cache.evictions");
  return c;
}
obs::Counter& invalidations_counter() {
  static obs::Counter c("serve.cache.invalidations");
  return c;
}

}  // namespace

SolveCache::SolveCache(std::size_t capacity, int shards) {
  LETDMA_ENSURE(capacity > 0, "cache capacity must be positive");
  LETDMA_ENSURE(shards > 0, "cache shard count must be positive");
  const std::size_t n =
      std::min(static_cast<std::size_t>(shards), capacity);
  capacity_ = capacity;
  per_shard_ = (capacity + n - 1) / n;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SolveCache::Shard& SolveCache::shard_of(const CacheKey& key) {
  // lo already went through a splitmix finalizer, so any bits are
  // uniformly distributed.
  return *shards_[static_cast<std::size_t>(key.fingerprint.lo) %
                  shards_.size()];
}

std::shared_ptr<const CachedSolve> SolveCache::lookup(const CacheKey& key) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    misses_counter().add();
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  hits_counter().add();
  return it->second->second;
}

void SolveCache::insert(const CacheKey& key,
                        std::shared_ptr<const CachedSolve> value) {
  LETDMA_ENSURE(value != nullptr, "cannot cache a null solve");
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  if (const auto it = s.index.find(key); it != s.index.end()) {
    it->second->second = std::move(value);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= per_shard_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
    evictions_counter().add();
  }
  s.lru.emplace_front(key, std::move(value));
  s.index.emplace(key, s.lru.begin());
}

bool SolveCache::invalidate(const CacheKey& key) {
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) return false;
  s.lru.erase(it->second);
  s.index.erase(it);
  invalidations_counter().add();
  return true;
}

std::size_t SolveCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->lru.size();
  }
  return total;
}

std::vector<std::pair<CacheKey, std::shared_ptr<const CachedSolve>>>
SolveCache::snapshot() const {
  std::vector<std::pair<CacheKey, std::shared_ptr<const CachedSolve>>> out;
  out.reserve(size());
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [key, value] : s->lru) {
      out.emplace_back(key, value);
    }
  }
  return out;
}

CacheStats SolveCache::stats() const {
  CacheStats st;
  st.hits = hits_counter().value();
  st.misses = misses_counter().value();
  st.evictions = evictions_counter().value();
  st.invalidations = invalidations_counter().value();
  st.size = size();
  st.capacity = capacity_;
  return st;
}

}  // namespace letdma::serve
