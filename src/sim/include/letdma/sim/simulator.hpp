// Discrete-event simulator for the LET-DMA protocol (rules R1-R3) and the
// Giotto baselines.
//
// The LET data path is deterministic: at every instant of T* the scheduled
// transfers execute back-to-back (program o_DP on the dispatching core, DMA
// copy, completion ISR o_ISR), independent of task execution. The simulator
// therefore precomputes, per core, the blackout windows during which the
// highest-priority LET machinery occupies the CPU, plus the readiness event
// of every job, and then runs a fixed-priority preemptive simulation of the
// application tasks around those blackouts.
//
// Measured outputs — per-job readiness latency (data-acquisition latency),
// response times, deadline misses, and DMA busy time — cross-validate the
// analytical LatencyModel and the response-time analysis.
#pragma once

#include <map>
#include <vector>

#include "letdma/let/latency.hpp"

namespace letdma::sim {

using support::Time;

enum class Mode {
  kProposedDma,  // rule R3: tasks wake at their own data's completion ISR
  kGiottoDma,    // tasks wake only after every transfer of the instant
  kGiottoCpu,    // CPU-driven copies, Giotto ordering
};

struct SimOptions {
  Mode mode = Mode::kProposedDma;
  /// Simulation horizon; 0 means one hyperperiod.
  Time horizon = 0;
};

struct JobRecord {
  int task = -1;
  Time release = 0;
  Time ready = 0;   // when all LET data for the job was available
  Time finish = 0;
  bool deadline_miss = false;
};

/// A window during which the LET machinery (o_DP programming, CPU copies,
/// completion ISRs) occupies a core at the highest priority.
struct LetSpan {
  int core = -1;
  Time start = 0;
  Time end = 0;
};

/// A window during which the DMA engine moves data.
struct DmaSpan {
  Time start = 0;
  Time end = 0;
};

/// A window during which a job of `task` held the CPU of its core (LET
/// blackouts inside the window preempt it; they are reported separately in
/// let_spans and overlay the execution when rendered).
struct ExecSpan {
  int core = -1;
  int task = -1;
  Time start = 0;
  Time end = 0;
};

struct SimResult {
  std::vector<JobRecord> jobs;
  std::map<int, Time> max_latency;   // per TaskId::value: max(ready-release)
  std::map<int, Time> max_response;  // per TaskId::value: max(finish-release)
  int deadline_misses = 0;
  Time dma_busy = 0;  // total time the DMA engine was copying

  // Full activity trace (for rendering and post-hoc inspection).
  std::vector<LetSpan> let_spans;
  std::vector<DmaSpan> dma_spans;
  std::vector<ExecSpan> exec_spans;

  bool all_deadlines_met() const { return deadline_misses == 0; }
};

class ProtocolSimulator {
 public:
  /// `schedule` is required for the DMA modes and ignored for kGiottoCpu.
  ProtocolSimulator(const let::LetComms& comms,
                    const let::TransferSchedule* schedule, SimOptions options);

  SimResult run() const;

 private:
  const let::LetComms& comms_;
  const let::TransferSchedule* schedule_;
  SimOptions options_;
};

}  // namespace letdma::sim
