// Chrome trace-event export of a simulation: the Fig.-1 schedule as
// Perfetto-loadable slices instead of an 80-column ASCII Gantt.
//
// Spans are placed on per-core tracks ("P1".."Pn") plus one "DMA" track,
// all registered under the "simulation" process group (pid 1) so their
// simulated-time timestamps never interleave with the wall-clock events
// of the solver. Task executions become slices named after the task, LET
// machinery windows become "LET" slices, DMA copies become "copy"
// slices, and deadline misses appear as instant markers on the task's
// core track.
#pragma once

#include <ostream>
#include <string>

#include "letdma/sim/simulator.hpp"

namespace letdma::sim {

/// Emits the spans of `result` into the global obs registry (visible to
/// every attached sink). No-op when tracing is compiled out or no sink
/// is attached.
void emit_trace_events(const model::Application& app, const SimResult& result);

/// Standalone convenience: renders one simulation as a complete Chrome
/// trace JSON document (attaches a temporary sink around
/// emit_trace_events).
std::string chrome_trace_json(const model::Application& app,
                              const SimResult& result);

}  // namespace letdma::sim
