// ASCII Gantt rendering of a simulation trace.
//
// Produces a fixed-width chart with one row per core plus one row for the
// DMA engine, over a chosen time window:
//
//   t in [0us, 250us], 1 column = 2.5us
//   P1  |LL1111111.333333...|
//   P2  |.LL22222LL4444.....|
//   DMA |.####..####........|
//
//   'L' = LET machinery (DMA programming / completion ISR / CPU copy)
//   digit/letter = task executing (see legend), '.' = idle
//
// LET activity takes precedence over task execution in a bucket; a bucket
// is marked busy if any activity intersects it.
#pragma once

#include <string>

#include "letdma/sim/simulator.hpp"

namespace letdma::sim {

struct GanttOptions {
  Time from = 0;
  Time to = 0;      // 0 means "end of the last recorded span"
  int width = 80;   // number of time buckets
};

/// Renders the trace of `result` for `app`'s platform as a multi-line
/// string (see file header for the format).
std::string render_gantt(const model::Application& app,
                         const SimResult& result, GanttOptions options = {});

}  // namespace letdma::sim
