#include "letdma/sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "letdma/support/error.hpp"

namespace letdma::sim {
namespace {

struct Window {
  Time start = 0;
  Time end = 0;
};

/// Precomputed LET activity over the horizon.
struct LetActivity {
  std::vector<std::vector<Window>> core_blackouts;  // per core, sorted
  // Per (task, release instant): time the job's data becomes available.
  std::map<std::pair<int, Time>, Time> ready_at;
  Time dma_busy = 0;
};

/// Advances `work` units of execution starting at `t`, skipping blackout
/// windows; returns the completion time.
Time advance_through(const std::vector<Window>& blackouts, Time t,
                     Time work) {
  // Find the first window that could intersect [t, ...).
  auto it = std::upper_bound(
      blackouts.begin(), blackouts.end(), t,
      [](Time v, const Window& w) { return v < w.end; });
  for (; work > 0; ++it) {
    const Time next_start =
        (it == blackouts.end()) ? std::numeric_limits<Time>::max() : it->start;
    if (t < next_start) {
      const Time room = next_start - t;
      if (work <= room) return t + work;
      work -= room;
    }
    if (it == blackouts.end()) break;  // unreachable: room was infinite
    t = std::max(t, it->end);
  }
  return t;
}

/// Execution capacity available in [from, to) around blackouts.
Time capacity_in(const std::vector<Window>& blackouts, Time from, Time to) {
  if (to <= from) return 0;
  Time cap = to - from;
  for (const Window& w : blackouts) {
    const Time s = std::max(w.start, from);
    const Time e = std::min(w.end, to);
    if (e > s) cap -= (e - s);
    if (w.start >= to) break;
  }
  return cap;
}

}  // namespace

ProtocolSimulator::ProtocolSimulator(const let::LetComms& comms,
                                     const let::TransferSchedule* schedule,
                                     SimOptions options)
    : comms_(comms), schedule_(schedule), options_(options) {
  if (options_.mode != Mode::kGiottoCpu) {
    LETDMA_ENSURE(schedule_ != nullptr,
                  "DMA simulation modes require a transfer schedule");
  }
}

SimResult ProtocolSimulator::run() const {
  const model::Application& app = comms_.app();
  const model::Platform& plat = app.platform();
  const Time h = app.hyperperiod();
  const Time horizon = options_.horizon > 0 ? options_.horizon : h;

  // ---- Phase 1: LET activity --------------------------------------------
  SimResult result;
  LetActivity act;
  act.core_blackouts.resize(static_cast<std::size_t>(plat.num_cores()));
  auto blackout = [&](model::CoreId core, Time s, Time e) {
    if (e > s) {
      act.core_blackouts[static_cast<std::size_t>(core.value)].push_back(
          {s, e});
      result.let_spans.push_back({core.value, s, e});
    }
  };

  const model::DmaParams& dma = plat.dma();
  for (Time base = 0; base < horizon; base += h) {
    for (const Time rel_t : comms_.required_instants()) {
      const Time t = base + rel_t;
      if (t >= horizon) break;
      Time cur = t;
      std::map<int, Time> instant_ready;  // task -> data completion
      if (options_.mode == Mode::kGiottoCpu) {
        // CPU copies in canonical Giotto order: all writes, then all reads.
        std::vector<let::Communication> order = comms_.comms_at(rel_t);
        std::stable_sort(order.begin(), order.end(),
                         [](const let::Communication& a,
                            const let::Communication& b) {
                           return a.dir < b.dir;  // kWrite < kRead
                         });
        for (const let::Communication& c : order) {
          const Time d =
              plat.cpu_copy().copy_time(app.label(c.label).size_bytes);
          blackout(app.task(c.task).core, cur, cur + d);
          cur += d;
        }
        for (const let::Communication& c : order) {
          instant_ready[c.task.value] = cur;  // Giotto: everyone waits
        }
        // Under Giotto, *every* task released at t waits for the epoch.
        if (!order.empty()) {
          for (int i = 0; i < app.num_tasks(); ++i) {
            if (t % app.task(model::TaskId{i}).period == 0) {
              instant_ready[i] = cur;
            }
          }
        }
      } else {
        const auto& transfers = schedule_->at(rel_t);
        for (std::size_t g = 0; g < transfers.size(); ++g) {
          const let::DmaTransfer& d = transfers[g];
          const model::CoreId prog_core = plat.core_of(d.local_mem);
          blackout(prog_core, cur, cur + dma.programming_overhead);
          cur += dma.programming_overhead;
          const Time copy = dma.copy_time(d.bytes);
          act.dma_busy += copy;
          if (copy > 0) result.dma_spans.push_back({cur, cur + copy});
          cur += copy;
          // The ISR runs on the core dispatching the next transfer (R2),
          // or on the programming core for the last one.
          const model::CoreId isr_core =
              (g + 1 < transfers.size())
                  ? plat.core_of(transfers[g + 1].local_mem)
                  : prog_core;
          blackout(isr_core, cur, cur + dma.isr_overhead);
          cur += dma.isr_overhead;
          if (options_.mode == Mode::kProposedDma) {
            for (const let::Communication& c : d.comms) {
              instant_ready[c.task.value] = cur;  // R3, last one wins
            }
          }
        }
        if (options_.mode == Mode::kGiottoDma && !transfers.empty()) {
          for (int i = 0; i < app.num_tasks(); ++i) {
            if (t % app.task(model::TaskId{i}).period == 0) {
              instant_ready[i] = cur;
            }
          }
        }
      }
      for (const auto& [task, ready] : instant_ready) {
        act.ready_at[{task, t}] = ready;
      }
    }
  }
  for (auto& windows : act.core_blackouts) {
    std::sort(windows.begin(), windows.end(),
              [](const Window& a, const Window& b) {
                return a.start < b.start;
              });
    // Merge overlaps: a baseline that violates Property 3 can spill one
    // instant's activity into the next.
    std::vector<Window> merged;
    for (const Window& w : windows) {
      if (!merged.empty() && w.start <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, w.end);
      } else {
        merged.push_back(w);
      }
    }
    windows = std::move(merged);
  }

  // ---- Phase 2: per-core fixed-priority simulation ------------------------
  result.dma_busy = act.dma_busy;
  for (int i = 0; i < app.num_tasks(); ++i) {
    result.max_latency[i] = 0;
    result.max_response[i] = 0;
  }

  struct Job {
    int task;
    int priority;
    Time release;
    Time ready;
    Time remaining;
  };

  for (int k = 0; k < plat.num_cores(); ++k) {
    const auto& blackouts =
        act.core_blackouts[static_cast<std::size_t>(k)];
    // Build the job list of this core, sorted by readiness.
    std::vector<Job> arrivals;
    for (const model::TaskId tid : app.tasks_on(model::CoreId{k})) {
      const model::Task& task = app.task(tid);
      for (Time r = 0; r < horizon; r += task.period) {
        Time ready = r;
        if (const auto it = act.ready_at.find({tid.value, r});
            it != act.ready_at.end()) {
          ready = std::max(ready, it->second);
        }
        arrivals.push_back({tid.value, task.priority, r, ready, task.wcet});
        result.max_latency[tid.value] =
            std::max(result.max_latency[tid.value], ready - r);
      }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Job& a, const Job& b) { return a.ready < b.ready; });

    // Event-driven execution: between consecutive readiness arrivals the
    // highest-priority active job runs (around blackouts).
    auto by_priority = [](const Job* a, const Job* b) {
      if (a->priority != b->priority) return a->priority < b->priority;
      return a->release < b->release;
    };
    std::vector<Job*> active;  // kept heap-free; instances are few
    std::size_t next = 0;
    Time cursor = 0;
    std::vector<Job> pool = arrivals;  // mutable copies
    while (next < pool.size() || !active.empty()) {
      if (active.empty()) {
        cursor = std::max(cursor, pool[next].ready);
      }
      while (next < pool.size() && pool[next].ready <= cursor) {
        active.push_back(&pool[next]);
        ++next;
      }
      std::sort(active.begin(), active.end(), by_priority);
      Job* running = active.front();
      const Time next_arrival =
          next < pool.size() ? pool[next].ready
                             : std::numeric_limits<Time>::max();
      const Time finish =
          advance_through(blackouts, cursor, running->remaining);
      const Time span_end = std::min(finish, next_arrival);
      if (span_end > cursor) {
        result.exec_spans.push_back({k, running->task, cursor, span_end});
      }
      if (finish <= next_arrival) {
        // Job completes before any preemption-relevant event.
        running->remaining = 0;
        const model::Task& t = app.task(model::TaskId{running->task});
        const bool miss = finish > running->release + t.period;
        result.jobs.push_back({running->task, running->release,
                               running->ready, finish, miss});
        if (miss) ++result.deadline_misses;
        result.max_response[running->task] =
            std::max(result.max_response[running->task],
                     finish - running->release);
        active.erase(active.begin());
        cursor = finish;
      } else {
        running->remaining -=
            capacity_in(blackouts, cursor, next_arrival);
        cursor = next_arrival;
      }
    }
  }
  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const JobRecord& a, const JobRecord& b) {
              if (a.release != b.release) return a.release < b.release;
              return a.task < b.task;
            });
  return result;
}

}  // namespace letdma::sim
