#include "letdma/sim/trace_export.hpp"

#include <sstream>

#include "letdma/obs/obs.hpp"
#include "letdma/obs/sinks.hpp"

namespace letdma::sim {
namespace {

constexpr int kSimPid = 1;

obs::Event span_event(std::string name, std::string category, int track,
                      Time start, Time end) {
  obs::Event e;
  e.phase = obs::Phase::kComplete;
  e.name = std::move(name);
  e.category = std::move(category);
  e.track = track;
  e.ts_us = support::to_us(start);
  e.dur_us = support::to_us(end - start);
  return e;
}

}  // namespace

void emit_trace_events(const model::Application& app,
                       const SimResult& result) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::Registry::instance();

  const int cores = app.platform().num_cores();
  std::vector<int> core_track(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    core_track[static_cast<std::size_t>(c)] =
        reg.track("P" + std::to_string(c + 1), kSimPid);
  }
  const int dma_track = reg.track("DMA", kSimPid);

  for (const ExecSpan& s : result.exec_spans) {
    obs::Event e = span_event(app.task(model::TaskId{s.task}).name,
                              "sim.exec",
                              core_track[static_cast<std::size_t>(s.core)],
                              s.start, s.end);
    e.args.push_back({"task", static_cast<std::int64_t>(s.task)});
    reg.emit(std::move(e));
  }
  for (const LetSpan& s : result.let_spans) {
    reg.emit(span_event("LET", "sim.let",
                        core_track[static_cast<std::size_t>(s.core)], s.start,
                        s.end));
  }
  for (const DmaSpan& s : result.dma_spans) {
    reg.emit(span_event("copy", "sim.dma", dma_track, s.start, s.end));
  }
  for (const JobRecord& job : result.jobs) {
    if (!job.deadline_miss) continue;
    const model::Task& t = app.task(model::TaskId{job.task});
    obs::Event e;
    e.phase = obs::Phase::kInstant;
    e.name = "deadline_miss:" + t.name;
    e.category = "sim";
    e.track = core_track[static_cast<std::size_t>(t.core.value)];
    e.ts_us = support::to_us(job.finish);
    e.args.push_back({"release", support::to_us(job.release)});
    reg.emit(std::move(e));
  }
}

std::string chrome_trace_json(const model::Application& app,
                              const SimResult& result) {
  auto sink = std::make_shared<obs::ChromeTraceSink>();
  obs::Registry& reg = obs::Registry::instance();
  reg.attach(sink);
  emit_trace_events(app, result);
  reg.detach(sink);
  std::ostringstream os;
  sink->write(os);
  return os.str();
}

}  // namespace letdma::sim
