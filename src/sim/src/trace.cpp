#include "letdma/sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "letdma/support/error.hpp"

namespace letdma::sim {
namespace {

/// Symbol for a task id: 1-9 then a-z then '*'.
char task_symbol(int task) {
  if (task < 9) return static_cast<char>('1' + task);
  if (task < 9 + 26) return static_cast<char>('a' + (task - 9));
  return '*';
}

}  // namespace

std::string render_gantt(const model::Application& app,
                         const SimResult& result, GanttOptions options) {
  LETDMA_ENSURE(options.width > 0, "gantt width must be positive");
  Time to = options.to;
  if (to == 0) {
    for (const LetSpan& s : result.let_spans) to = std::max(to, s.end);
    for (const ExecSpan& s : result.exec_spans) to = std::max(to, s.end);
    for (const DmaSpan& s : result.dma_spans) to = std::max(to, s.end);
  }
  LETDMA_ENSURE(to > options.from, "empty gantt window");
  const Time from = options.from;
  const double bucket = static_cast<double>(to - from) /
                        static_cast<double>(options.width);

  const int cores = app.platform().num_cores();
  std::vector<std::string> rows(static_cast<std::size_t>(cores) + 1,
                                std::string(
                                    static_cast<std::size_t>(options.width),
                                    '.'));
  auto paint = [&](std::string& row, Time s, Time e, char symbol,
                   bool overwrite) {
    if (e <= from || s >= to) return;
    s = std::max(s, from);
    e = std::min(e, to);
    const int b0 = static_cast<int>(static_cast<double>(s - from) / bucket);
    int b1 = static_cast<int>((static_cast<double>(e - from) - 1) / bucket);
    b1 = std::min(b1, options.width - 1);
    for (int b = std::max(b0, 0); b <= b1; ++b) {
      char& cell = row[static_cast<std::size_t>(b)];
      if (overwrite || cell == '.') cell = symbol;
    }
  };

  // Task execution first, then LET activity on top (it preempts).
  for (const ExecSpan& s : result.exec_spans) {
    paint(rows[static_cast<std::size_t>(s.core)], s.start, s.end,
          task_symbol(s.task), /*overwrite=*/false);
  }
  for (const LetSpan& s : result.let_spans) {
    paint(rows[static_cast<std::size_t>(s.core)], s.start, s.end, 'L',
          /*overwrite=*/true);
  }
  for (const DmaSpan& s : result.dma_spans) {
    paint(rows[static_cast<std::size_t>(cores)], s.start, s.end, '#',
          /*overwrite=*/true);
  }

  std::ostringstream os;
  os << "t in [" << support::format_time(from) << ", "
     << support::format_time(to) << "], 1 column = "
     << support::format_time(static_cast<Time>(bucket)) << "\n";
  for (int k = 0; k < cores; ++k) {
    os << "P" << (k + 1) << "  |" << rows[static_cast<std::size_t>(k)]
       << "|\n";
  }
  os << "DMA |" << rows[static_cast<std::size_t>(cores)] << "|\n";
  os << "legend: L = LET machinery, # = DMA copy";
  for (int i = 0; i < app.num_tasks(); ++i) {
    os << ", " << task_symbol(i) << " = " << app.task(model::TaskId{i}).name;
  }
  os << "\n";
  return os.str();
}

}  // namespace letdma::sim
