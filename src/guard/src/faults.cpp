#include "letdma/guard/faults.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

#include "letdma/obs/flight.hpp"
#include "letdma/obs/obs.hpp"

namespace letdma::guard {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrow: return "throw";
    case FaultKind::kSpuriousInfeasible: return "infeasible";
    case FaultKind::kNanObjective: return "nan";
    case FaultKind::kStall: return "stall";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDrop: return "drop";
  }
  return "?";
}

namespace {

using support::PreconditionError;

const char* const kSites[] = {
    "milp.node",   "milp.worker",      "simplex.pivot", "engine.greedy",
    "engine.ls",   "engine.milp",      "engine.portfolio", "io.parse",
    "io.journal.torn_write", "io.journal.crc",
    "serve.socket.stall",    "serve.socket.drop",
};

bool known_site(const std::string& site) {
  for (const char* s : kSites) {
    if (site == s) return true;
  }
  return false;
}

FaultKind parse_kind(const std::string& name) {
  if (name == "throw") return FaultKind::kThrow;
  if (name == "infeasible") return FaultKind::kSpuriousInfeasible;
  if (name == "nan") return FaultKind::kNanObjective;
  if (name == "stall") return FaultKind::kStall;
  if (name == "truncate") return FaultKind::kTruncate;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "drop") return FaultKind::kDrop;
  throw PreconditionError("unknown fault kind `" + name + "`");
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t site_hash(std::string_view site) {
  // FNV-1a; stable across platforms so seeds reproduce everywhere.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

#if LETDMA_FAULTS_ENABLED
struct SiteState {
  std::int64_t polls = 0;
  std::int64_t fires = 0;
  std::vector<int> spec_fires;  // per armed spec targeting this site
};

struct InjectorState {
  std::mutex mu;
  FaultPlan plan;
  std::map<std::string, SiteState, std::less<>> sites;
};

InjectorState& state() {
  static InjectorState* s = new InjectorState;  // leaked, like the registry
  return *s;
}
#endif

}  // namespace

FaultPlan FaultPlan::chaos(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  // Moderate rates: frequent enough that every multi-second run sees
  // faults, sparse enough that cheap strategies still get through.
  plan.specs.push_back({"milp.node", FaultKind::kThrow, 0.002, 2});
  plan.specs.push_back({"milp.node", FaultKind::kSpuriousInfeasible, 0.002, 2});
  plan.specs.push_back({"milp.worker", FaultKind::kThrow, 0.001, 1});
  plan.specs.push_back({"milp.worker", FaultKind::kStall, 0.002, 2});
  plan.specs.push_back({"simplex.pivot", FaultKind::kThrow, 0.01, 1});
  plan.specs.push_back({"engine.milp", FaultKind::kThrow, 0.5, 1});
  plan.specs.push_back({"engine.ls", FaultKind::kNanObjective, 0.5, 1});
  plan.specs.push_back({"engine.ls", FaultKind::kStall, 0.25, 1});
  plan.specs.push_back({"engine.greedy", FaultKind::kThrow, 0.25, 1});
  plan.specs.push_back({"io.parse", FaultKind::kTruncate, 0.1, 1});
  plan.specs.push_back({"io.journal.torn_write", FaultKind::kTruncate, 0.05, 1});
  plan.specs.push_back({"io.journal.crc", FaultKind::kCorrupt, 0.05, 1});
  plan.specs.push_back({"serve.socket.stall", FaultKind::kStall, 0.02, 2});
  plan.specs.push_back({"serve.socket.drop", FaultKind::kDrop, 0.01, 2});
  return plan;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    if (token == "chaos") {
      const FaultPlan preset = chaos(plan.seed);
      plan.specs.insert(plan.specs.end(), preset.specs.begin(),
                        preset.specs.end());
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw PreconditionError("fault plan: expected key=value, got `" + token +
                              "`");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "seed") {
      try {
        std::size_t end = 0;
        plan.seed = std::stoull(value, &end);
        if (end != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        throw PreconditionError("fault plan: bad seed `" + value + "`");
      }
      // `chaos` tokens parsed before the seed would have baked in the
      // default; re-derive their seed-dependence through arm() (the seed
      // lives on the plan, not the specs), so nothing to fix up here.
      continue;
    }
    if (!known_site(key)) {
      throw PreconditionError("fault plan: unknown site `" + key + "`");
    }
    FaultSpec spec;
    spec.site = key;
    const std::size_t at = value.find('@');
    spec.kind = parse_kind(value.substr(0, at));
    if (at != std::string::npos) {
      const std::string rate = value.substr(at + 1);
      try {
        std::size_t end = 0;
        spec.rate = std::stod(rate, &end);
        if (end != rate.size() || spec.rate < 0.0 || spec.rate > 1.0) {
          throw std::invalid_argument(rate);
        }
      } catch (const std::exception&) {
        throw PreconditionError("fault plan: bad rate `" + rate + "`");
      }
    }
    plan.specs.push_back(std::move(spec));
  }
  return plan;
}

#if LETDMA_FAULTS_ENABLED

namespace detail {

std::atomic<bool> g_armed{false};

std::optional<FaultKind> poll_slow(std::string_view site) {
  InjectorState& st = state();
  std::optional<FaultKind> fired;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.plan.empty()) return std::nullopt;
    auto it = st.sites.find(site);
    if (it == st.sites.end()) {
      it = st.sites.emplace(std::string(site), SiteState{}).first;
      it->second.spec_fires.assign(st.plan.specs.size(), 0);
    }
    SiteState& ss = it->second;
    const std::int64_t poll_index = ss.polls++;
    for (std::size_t k = 0; k < st.plan.specs.size(); ++k) {
      const FaultSpec& spec = st.plan.specs[k];
      if (spec.site != site) continue;
      if (spec.max_fires >= 0 &&
          ss.spec_fires[k] >= spec.max_fires) {
        continue;
      }
      // Deterministic per (seed, site, spec index, poll index).
      const std::uint64_t r = splitmix64(
          st.plan.seed ^ site_hash(site) ^
          (static_cast<std::uint64_t>(k) << 48) ^
          static_cast<std::uint64_t>(poll_index));
      const double u =
          static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
      if (u < spec.rate) {
        ++ss.spec_fires[k];
        ++ss.fires;
        fired = spec.kind;
        break;
      }
    }
  }
  if (fired) {
    obs::Registry::instance().counter_add("guard.fault." + std::string(site),
                                          1);
    // flight_event lands in the always-on ring even with no sink attached,
    // so a later supervised-chain dump shows the fault that caused it.
    obs::flight_event("guard.fault", "guard",
                      {{"site", std::string(site)},
                       {"kind", std::string(fault_kind_name(*fired))}},
                      obs::Level::kWarn);
  }
  return fired;
}

}  // namespace detail

void arm(const FaultPlan& plan) {
  InjectorState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.plan = plan;
  st.sites.clear();
  detail::g_armed.store(!plan.empty(), std::memory_order_relaxed);
  if (!plan.empty()) {
    obs::log_info("guard", "fault plan armed: seed=" +
                               std::to_string(plan.seed) + ", " +
                               std::to_string(plan.specs.size()) + " spec(s)");
  }
}

void disarm() {
  InjectorState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.plan = FaultPlan{};
  st.plan.specs.clear();
  st.sites.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

std::int64_t fire_count(std::string_view site) {
  InjectorState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  const auto it = st.sites.find(site);
  return it == st.sites.end() ? 0 : it->second.fires;
}

#else  // LETDMA_FAULTS_ENABLED == 0: the injector is compiled out.

void arm(const FaultPlan&) {}
void disarm() {}
bool armed() { return false; }
std::int64_t fire_count(std::string_view) { return 0; }

#endif

bool arm_from_env() {
  const char* spec = std::getenv("LETDMA_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return false;
  if (!faults_compiled_in()) {
    obs::log_warn("guard",
                  "LETDMA_FAULTS set but the injector is compiled out "
                  "(LETDMA_ENABLE_FAULTS=OFF); ignoring");
    return false;
  }
  arm(FaultPlan::parse(spec));
  return armed();
}

}  // namespace letdma::guard
