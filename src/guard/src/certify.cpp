#include "letdma/guard/certify.hpp"

#include <algorithm>
#include <sstream>

#include "letdma/let/compiled.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::guard {

const char* check_name(Check check) {
  switch (check) {
    case Check::kLayoutIntegrity: return "layout-integrity";
    case Check::kTransferShape: return "transfer-shape";
    case Check::kLetSemantics: return "let-semantics";
    case Check::kOutcomeShape: return "outcome-shape";
    case Check::kObjective: return "objective";
    case Check::kEvaluatorConsistency: return "evaluator-consistency";
  }
  return "?";
}

bool Certificate::flags(Check check) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [check](const Diagnostic& d) { return d.check == check; });
}

bool Certificate::flags(let::Rule rule) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [rule](const Diagnostic& d) {
                       return d.violation && d.violation->rule == rule;
                     });
}

std::string Certificate::summary() const {
  if (certified()) return "CERTIFIED";
  std::ostringstream os;
  os << "REJECTED, " << diagnostics.size() << " diagnostic(s):\n";
  for (const Diagnostic& d : diagnostics) {
    os << "  - [" << check_name(d.check);
    if (d.violation) os << "/" << let::rule_name(d.violation->rule);
    os << "] " << d.message << "\n";
  }
  return os.str();
}

namespace {

/// The layout re-check: every memory order must be a permutation of the
/// canonical required slot set. set_order() enforces this at construction
/// time, but a certificate must not trust that the layout it is handed was
/// built through that API (loaded schedules, decoded MILP solutions and
/// injected corruption all arrive here), so it is re-derived from the
/// application alone.
void check_layout(const let::LetComms& comms, const let::MemoryLayout& layout,
                  Certificate& cert) {
  const model::Application& app = comms.app();
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    const model::MemoryId mem{m};
    std::vector<let::Slot> required =
        let::MemoryLayout::required_slots(app, mem);
    if (!layout.has_order(mem)) {
      if (required.empty()) continue;  // nothing to hold; nothing to check
      Diagnostic d;
      d.check = Check::kLayoutIntegrity;
      d.message = "memory " + app.platform().memory_name(mem) +
                  " has no slot order";
      cert.diagnostics.push_back(std::move(d));
      continue;
    }
    std::vector<let::Slot> placed = layout.order(mem);
    std::sort(placed.begin(), placed.end());
    const auto dup = std::adjacent_find(placed.begin(), placed.end());
    if (dup != placed.end()) {
      Diagnostic d;
      d.check = Check::kLayoutIntegrity;
      d.message = "memory " + app.platform().memory_name(mem) +
                  " places label " + app.label(dup->label).name +
                  " twice (overlapping slots)";
      cert.diagnostics.push_back(std::move(d));
    }
    std::sort(required.begin(), required.end());
    if (placed != required) {
      Diagnostic d;
      d.check = Check::kLayoutIntegrity;
      d.message = "memory " + app.platform().memory_name(mem) +
                  " slot set differs from the required set (" +
                  std::to_string(placed.size()) + " placed, " +
                  std::to_string(required.size()) + " required)";
      cert.diagnostics.push_back(std::move(d));
    }
  }
}

/// Every s0 transfer must rebuild identically from its communication list
/// and the layout: one direction, one local memory, labels contiguous and
/// equally ordered in both memories, and the declared bytes/addresses
/// matching the layout's address map.
void check_transfers(const let::ScheduleResult& schedule, Certificate& cert) {
  for (std::size_t g = 0; g < schedule.s0_transfers.size(); ++g) {
    const let::DmaTransfer& t = schedule.s0_transfers[g];
    try {
      const let::DmaTransfer rebuilt =
          let::make_transfer(schedule.layout, t.comms);
      if (rebuilt.bytes != t.bytes || rebuilt.local_addr != t.local_addr ||
          rebuilt.global_addr != t.global_addr || rebuilt.dir != t.dir) {
        Diagnostic d;
        d.check = Check::kTransferShape;
        d.message = "s0 transfer " + std::to_string(g) +
                    " metadata inconsistent with the layout";
        cert.diagnostics.push_back(std::move(d));
      }
    } catch (const support::Error& e) {
      Diagnostic d;
      d.check = Check::kTransferShape;
      d.message = "s0 transfer " + std::to_string(g) +
                  " malformed: " + e.what();
      cert.diagnostics.push_back(std::move(d));
    }
  }
}

/// Cross-checks the compiled instance's latency sweep against the
/// from-scratch path (derive_schedule + worst_case_latencies). Run only
/// when layout and transfer shapes certified clean: make_transfer
/// succeeding on every s0 transfer is what guarantees the transfers'
/// communication lists are sorted by global position, the precondition of
/// the class sweep.
void check_evaluator(const let::LetComms& comms,
                     const let::CompiledComms& compiled,
                     const let::ScheduleResult& schedule, Certificate& cert) {
  if (&compiled.let_comms() != &comms) {
    Diagnostic d;
    d.check = Check::kEvaluatorConsistency;
    d.message = "compiled instance was built from a different LetComms";
    cert.diagnostics.push_back(std::move(d));
    return;
  }
  try {
    const std::vector<support::Time> incremental =
        compiled.sweep_worst_case(schedule.s0_transfers);
    const let::TransferSchedule derived =
        let::derive_schedule(comms, schedule.layout, schedule.s0_transfers);
    const std::vector<support::Time> scratch = let::worst_case_latencies(
        comms, derived, let::ReadinessSemantics::kProposed);
    if (incremental != scratch) {
      std::size_t task = 0;
      while (task < incremental.size() && task < scratch.size() &&
             incremental[task] == scratch[task]) {
        ++task;
      }
      Diagnostic d;
      d.check = Check::kEvaluatorConsistency;
      d.message =
          "compiled sweep disagrees with the from-scratch latencies "
          "(first divergence at task " +
          std::to_string(task) + ")";
      cert.diagnostics.push_back(std::move(d));
    }
  } catch (const support::Error& e) {
    Diagnostic d;
    d.check = Check::kEvaluatorConsistency;
    d.message = std::string("evaluator cross-check aborted: ") + e.what();
    cert.diagnostics.push_back(std::move(d));
  }
}

}  // namespace

Certificate certify(const let::LetComms& comms,
                    const let::ScheduleResult& schedule,
                    const CertifyOptions& options) {
  obs::ScopedSpan span("guard.certify", "guard");
  Certificate cert;

  check_layout(comms, schedule.layout, cert);
  // Semantic checks need a usable address map; with a broken layout the
  // validate pass would only drown the root cause in follow-on noise.
  if (!cert.flags(Check::kLayoutIntegrity)) {
    check_transfers(schedule, cert);
    let::ValidationReport report;
    try {
      report = let::validate_schedule(comms, schedule.layout,
                                      schedule.schedule, options.validation);
    } catch (const support::Error& e) {
      Diagnostic d;
      d.check = Check::kLetSemantics;
      d.message = std::string("validation aborted: ") + e.what();
      cert.diagnostics.push_back(std::move(d));
    }
    for (let::Violation& v : report.violations) {
      Diagnostic d;
      d.check = Check::kLetSemantics;
      d.message = v.message;
      d.violation = std::move(v);
      cert.diagnostics.push_back(std::move(d));
    }
    if (options.compiled != nullptr && !cert.flags(Check::kTransferShape)) {
      check_evaluator(comms, *options.compiled, schedule, cert);
    }
  }

  static obs::Counter pass("guard.certify.pass");
  static obs::Counter fail("guard.certify.fail");
  if (cert.certified()) {
    pass.add();
  } else {
    fail.add();
    obs::instant("guard.certify_fail", "guard",
                 {{"diagnostics",
                   static_cast<std::int64_t>(cert.diagnostics.size())},
                  {"first", cert.diagnostics.front().message}});
  }
  span.arg("certified", cert.certified());
  span.arg("diagnostics",
           static_cast<std::int64_t>(cert.diagnostics.size()));
  return cert;
}

}  // namespace letdma::guard
