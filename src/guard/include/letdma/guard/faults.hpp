// letdma::guard — deterministic fault injection for the solver/engine
// stack.
//
// Production DMA stacks treat failure paths as first-class: descriptor
// validation, watchdogs, and fallback engines are exercised continuously,
// not only when the hardware misbehaves. This header gives letdma the
// same capability in software: a seed-driven FaultPlan arms a small set of
// named injection points threaded through the MILP node loop, the simplex
// pivot loop, the engine adapters, and the io parsers. Each site polls the
// armed plan and, when a fault fires, simulates one concrete failure mode:
//
//   kThrow               a solver exception (FaultInjectedError)
//   kSpuriousInfeasible  a node/result wrongly reported infeasible
//   kNanObjective        a corrupted (non-finite) objective value
//   kStall               a worker that stops making progress for a while
//   kTruncate            input text cut short before parsing
//   kCorrupt             stored bytes silently flipped (bitrot)
//   kDrop                a connection torn down mid-exchange
//
// Determinism: firing decisions depend only on (plan seed, site name,
// per-site poll index), so a given plan produces the same fault sequence
// on every run — failures found in CI reproduce locally from the seed.
//
// Arming is explicit: nothing fires until arm() (or arm_from_env(), which
// reads LETDMA_FAULTS) installs a plan, so production paths and ordinary
// tests are untouched. With -DLETDMA_ENABLE_FAULTS=OFF every poll compiles
// to `return nullopt` and the injector has zero overhead.
//
// Plan syntax (env LETDMA_FAULTS or FaultPlan::parse):
//
//   seed=<n>                  RNG seed (default 1)
//   <site>=<kind>[@rate]      arm `kind` at `site`, firing with the given
//                             probability per poll (default 1.0)
//   chaos                     arm every site with a moderate default rate
//
//   e.g.  LETDMA_FAULTS="seed=42,milp.node=throw@0.02,engine.ls=stall"
//         LETDMA_FAULTS="seed=7,chaos"
//
// Sites: milp.node | milp.worker | simplex.pivot | engine.greedy |
//        engine.ls | engine.milp | engine.portfolio | io.parse |
//        io.journal.torn_write | io.journal.crc | serve.socket.stall |
//        serve.socket.drop
// Kinds: throw | infeasible | nan | stall | truncate | corrupt | drop
//
// The `io.journal.*` sites are polled by the serve-layer solve-cache
// journal: `torn_write` truncates an append mid-record (a crash between
// write() and fsync()), `crc` flips a payload byte after the checksum was
// computed (bitrot). The `serve.socket.*` sites are polled per request
// batch by server connection threads: `stall` delays the reply past the
// client's patience, `drop` hard-closes the connection mid-exchange.
//
// `milp.worker` is polled once per node by the parallel branch-and-bound
// workers (and per epoch task in deterministic mode) in addition to the
// classic `milp.node` site, so chaos runs exercise worker-thread failure
// paths: a kThrow there aborts the whole parallel solve through the
// first-error channel, and a kStall delays one worker while the others
// keep draining the queue. The sequential (threads=1) path never polls it.
//
// Every fire bumps the obs counter "guard.fault.<site>" and emits a
// "guard.fault" instant, so injected faults are visible in traces.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "letdma/support/error.hpp"

#ifndef LETDMA_FAULTS_ENABLED
#define LETDMA_FAULTS_ENABLED 1
#endif

namespace letdma::guard {

/// True when the injector is compiled in (LETDMA_ENABLE_FAULTS=ON).
constexpr bool faults_compiled_in() { return LETDMA_FAULTS_ENABLED != 0; }

enum class FaultKind {
  kThrow,
  kSpuriousInfeasible,
  kNanObjective,
  kStall,
  kTruncate,
  kCorrupt,
  kDrop,
};

const char* fault_kind_name(FaultKind kind);

/// The exception thrown by a kThrow fault (derived from support::Error so
/// existing solver-failure handling treats it like any numerical failure).
class FaultInjectedError : public support::Error {
 public:
  explicit FaultInjectedError(const std::string& what) : Error(what) {}
};

/// One armed fault: fire `kind` at `site` with probability `rate` per
/// poll, at most `max_fires` times (-1 = unlimited).
struct FaultSpec {
  std::string site;
  FaultKind kind = FaultKind::kThrow;
  double rate = 1.0;
  int max_fires = -1;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }

  /// Parses the plan syntax documented above. Throws
  /// support::PreconditionError on an unknown site, kind, or token.
  static FaultPlan parse(const std::string& text);
  /// The `chaos` preset: every site armed at a moderate rate.
  static FaultPlan chaos(std::uint64_t seed);
};

/// Installs `plan`; subsequent polls may fire. Replaces any armed plan and
/// resets per-site poll/fire counts.
void arm(const FaultPlan& plan);
/// Removes the armed plan; polls return nullopt again.
void disarm();
bool armed();

/// Arms from the LETDMA_FAULTS environment variable. Returns false (and
/// leaves the injector disarmed) when the variable is unset or empty;
/// throws on a malformed spec. Never called implicitly — tools and fault
/// suites opt in.
bool arm_from_env();

/// Total fires at `site` since the plan was armed (0 when disarmed).
std::int64_t fire_count(std::string_view site);

namespace detail {
#if LETDMA_FAULTS_ENABLED
extern std::atomic<bool> g_armed;
std::optional<FaultKind> poll_slow(std::string_view site);
#endif
}  // namespace detail

/// Polls `site` against the armed plan. Disarmed (the common case) this is
/// one relaxed atomic load; compiled out it is constant nullopt.
inline std::optional<FaultKind> poll(std::string_view site) {
#if LETDMA_FAULTS_ENABLED
  if (!detail::g_armed.load(std::memory_order_relaxed)) return std::nullopt;
  return detail::poll_slow(site);
#else
  (void)site;
  return std::nullopt;
#endif
}

/// Like poll(), but a kThrow fault is raised here as FaultInjectedError;
/// any other fired kind is returned for the site to enact.
inline std::optional<FaultKind> fault_point(std::string_view site) {
#if LETDMA_FAULTS_ENABLED
  const std::optional<FaultKind> kind = poll(site);
  if (kind == FaultKind::kThrow) {
    throw FaultInjectedError("injected fault at " + std::string(site));
  }
  return kind;
#else
  (void)site;
  return std::nullopt;
#endif
}

}  // namespace letdma::guard
