// letdma::guard — independent certification of protocol configurations.
//
// certify() re-checks a complete (layout, s0 transfers, per-instant
// schedule) configuration against everything the paper's guarantees rest
// on — LET causality (Properties 1-2), slot containment (Property 3),
// coverage of C(t), acquisition deadlines, Theorem 1, and the structural
// invariants the solvers are supposed to maintain (layout slot sets,
// transfer contiguity in both memories) — without reusing any solver code
// path: the checks run on the declarative rules in let/validate plus
// first-principles re-derivation here, so a bug in the MILP, the local
// search, or the greedy constructor cannot silently certify its own
// output.
//
// The result is a Certificate: empty = certified; otherwise each
// Diagnostic names the failed check and, for LET-semantics findings, the
// violated rule, the offending task/label/transfer, and the signed slack.
// Engine-level outcome checks (status shape, objective recomputation) live
// in letdma::engine's supervised layer, which composes this certificate.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "letdma/let/greedy.hpp"
#include "letdma/let/validate.hpp"

namespace letdma::guard {

/// The family a Diagnostic belongs to.
enum class Check {
  kLayoutIntegrity,  // a memory's slot order is not a permutation of the
                     // required slot set (duplicate / missing / foreign)
  kTransferShape,    // an s0 transfer is malformed against the layout
  kLetSemantics,     // a let/validate rule failed (violation attached)
  kOutcomeShape,     // engine outcome inconsistent (status vs schedule)
  kObjective,        // reported objective non-finite or != recomputed
  kEvaluatorConsistency,  // compiled-instance sweep disagrees with the
                          // from-scratch latency recomputation
};

const char* check_name(Check check);

struct Diagnostic {
  Check check = Check::kLetSemantics;
  /// Set for kLetSemantics: the structured rule finding.
  std::optional<let::Violation> violation;
  std::string message;
};

struct Certificate {
  std::vector<Diagnostic> diagnostics;

  bool certified() const { return diagnostics.empty(); }
  bool flags(Check check) const;
  bool flags(let::Rule rule) const;
  std::string summary() const;
};

struct CertifyOptions {
  let::ValidationOptions validation;
  /// Optional compiled view of the same LetComms instance. When set (and
  /// the layout and transfer shapes check out), certify() additionally
  /// cross-checks the incremental evaluator's instant-class latency sweep
  /// against the from-scratch derive_schedule + worst_case_latencies path,
  /// so a drift in the compiled core is caught by the certifier rather
  /// than trusted. Not owned; may be null.
  const let::CompiledComms* compiled = nullptr;
};

/// Independently certifies a configuration. Never throws on a malformed
/// configuration — structural failures become diagnostics. Every call
/// bumps "guard.certify.pass" or "guard.certify.fail" and a failed call
/// emits a "guard.certify_fail" obs instant naming the first diagnostic.
Certificate certify(const let::LetComms& comms,
                    const let::ScheduleResult& schedule,
                    const CertifyOptions& options = {});

}  // namespace letdma::guard
