#include "letdma/model/io.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

using support::PreconditionError;

[[noreturn]] void fail(int line, const std::string& what) {
  throw PreconditionError("line " + std::to_string(line) + ": " + what);
}

/// key=value tokens of one directive line.
std::map<std::string, std::string> parse_fields(const std::string& rest,
                                                int line) {
  std::map<std::string, std::string> out;
  std::istringstream is(rest);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail(line, "expected key=value, got `" + token + "`");
    }
    const std::string key = token.substr(0, eq);
    if (!out.emplace(key, token.substr(eq + 1)).second) {
      fail(line, "duplicate key `" + key + "`");
    }
  }
  return out;
}

std::string take(std::map<std::string, std::string>& fields,
                 const std::string& key, int line) {
  const auto it = fields.find(key);
  if (it == fields.end()) fail(line, "missing key `" + key + "`");
  std::string v = it->second;
  fields.erase(it);
  return v;
}

std::int64_t take_int(std::map<std::string, std::string>& fields,
                      const std::string& key, int line) {
  const std::string v = take(fields, key, line);
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    fail(line, "key `" + key + "` is not an integer: `" + v + "`");
  }
}

double take_double(std::map<std::string, std::string>& fields,
                   const std::string& key, int line) {
  const std::string v = take(fields, key, line);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    fail(line, "key `" + key + "` is not a number: `" + v + "`");
  }
}

void expect_empty(const std::map<std::string, std::string>& fields,
                  int line) {
  if (!fields.empty()) {
    fail(line, "unknown key `" + fields.begin()->first + "`");
  }
}

std::vector<std::string> split_commas(const std::string& v) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : v) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string fmt_double_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string write_application(const Application& app) {
  LETDMA_ENSURE(app.finalized(), "serialize requires a finalized application");
  std::ostringstream os;
  const Platform& p = app.platform();
  os << "# letdma application v1\n";
  os << "platform cores=" << p.num_cores()
     << " odp_ns=" << p.dma().programming_overhead
     << " oisr_ns=" << p.dma().isr_overhead
     << " wc=" << fmt_double_exact(p.dma().copy_cost_ns_per_byte)
     << " cpu_wc=" << fmt_double_exact(p.cpu_copy().copy_cost_ns_per_byte)
     << " cpu_oh_ns=" << p.cpu_copy().per_label_overhead << "\n";
  for (int i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(TaskId{i});
    os << "task name=" << t.name << " period_ns=" << t.period
       << " wcet_ns=" << t.wcet << " core=" << t.core.value
       << " priority=" << t.priority;
    if (t.acquisition_deadline) {
      os << " gamma_ns=" << *t.acquisition_deadline;
    }
    os << "\n";
  }
  for (int l = 0; l < app.num_labels(); ++l) {
    const Label& lab = app.label(LabelId{l});
    os << "label name=" << lab.name << " bytes=" << lab.size_bytes
       << " writer=" << app.task(lab.writer).name << " readers=";
    for (std::size_t r = 0; r < lab.readers.size(); ++r) {
      os << (r ? "," : "") << app.task(lab.readers[r]).name;
    }
    os << "\n";
  }
  return os.str();
}

std::unique_ptr<Application> read_application(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  std::unique_ptr<Application> app;
  std::map<std::string, TaskId> tasks_by_name;
  std::map<std::string, support::Time> pending_gamma;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    std::string rest;
    std::getline(ls, rest);
    auto fields = parse_fields(rest, line_no);

    if (directive == "platform") {
      if (app) fail(line_no, "duplicate platform directive");
      const int cores = static_cast<int>(take_int(fields, "cores", line_no));
      DmaParams dma;
      dma.programming_overhead = take_int(fields, "odp_ns", line_no);
      dma.isr_overhead = take_int(fields, "oisr_ns", line_no);
      dma.copy_cost_ns_per_byte = take_double(fields, "wc", line_no);
      CpuCopyParams cpu;
      cpu.copy_cost_ns_per_byte = take_double(fields, "cpu_wc", line_no);
      cpu.per_label_overhead = take_int(fields, "cpu_oh_ns", line_no);
      expect_empty(fields, line_no);
      app = std::make_unique<Application>(Platform(cores, dma, cpu));
    } else if (directive == "task") {
      if (!app) fail(line_no, "task before platform");
      const std::string name = take(fields, "name", line_no);
      const support::Time period = take_int(fields, "period_ns", line_no);
      const support::Time wcet = take_int(fields, "wcet_ns", line_no);
      const int core = static_cast<int>(take_int(fields, "core", line_no));
      int priority = -1;
      if (fields.count("priority")) {
        priority = static_cast<int>(take_int(fields, "priority", line_no));
      }
      if (fields.count("gamma_ns")) {
        pending_gamma[name] = take_int(fields, "gamma_ns", line_no);
      }
      expect_empty(fields, line_no);
      const TaskId id =
          app->add_task(name, period, wcet, CoreId{core}, priority);
      tasks_by_name.emplace(name, id);
    } else if (directive == "label") {
      if (!app) fail(line_no, "label before platform");
      const std::string name = take(fields, "name", line_no);
      const std::int64_t bytes = take_int(fields, "bytes", line_no);
      const std::string writer = take(fields, "writer", line_no);
      const std::string readers = take(fields, "readers", line_no);
      expect_empty(fields, line_no);
      const auto wit = tasks_by_name.find(writer);
      if (wit == tasks_by_name.end()) {
        fail(line_no, "unknown writer task `" + writer + "`");
      }
      std::vector<TaskId> reader_ids;
      for (const std::string& r : split_commas(readers)) {
        const auto rit = tasks_by_name.find(r);
        if (rit == tasks_by_name.end()) {
          fail(line_no, "unknown reader task `" + r + "`");
        }
        reader_ids.push_back(rit->second);
      }
      if (reader_ids.empty()) fail(line_no, "label without readers");
      app->add_label(name, bytes, wit->second, std::move(reader_ids));
    } else {
      fail(line_no, "unknown directive `" + directive + "`");
    }
  }
  if (!app) throw PreconditionError("no platform directive found");
  for (const auto& [name, gamma] : pending_gamma) {
    app->set_acquisition_deadline(tasks_by_name.at(name), gamma);
  }
  app->finalize();
  obs::log_debug("model",
                 "parsed application: " + std::to_string(app->num_tasks()) +
                     " tasks, " + std::to_string(app->num_labels()) +
                     " labels, " +
                     std::to_string(app->platform().num_cores()) + " cores");
  return app;
}

}  // namespace letdma::model
