#include "letdma/model/io.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "letdma/guard/faults.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/time.hpp"

namespace letdma::model {
namespace {

using support::ParseError;

[[noreturn]] void fail(int line, const std::string& what) {
  throw ParseError(line, what);
}

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// Yields the next whitespace-delimited token of `rest`, advancing `pos`;
/// empty view when exhausted. The serve hot path parses thousands of
/// models per second, so tokenization stays allocation-free.
std::string_view next_token(std::string_view rest, std::size_t& pos) {
  while (pos < rest.size() && is_space(rest[pos])) ++pos;
  const std::size_t begin = pos;
  while (pos < rest.size() && !is_space(rest[pos])) ++pos;
  return rest.substr(begin, pos - begin);
}

/// key=value tokens of one directive line.
std::map<std::string, std::string> parse_fields(std::string_view rest,
                                                int line) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  for (std::string_view token = next_token(rest, pos); !token.empty();
       token = next_token(rest, pos)) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      fail(line, "expected key=value, got `" + std::string(token) + "`");
    }
    std::string key(token.substr(0, eq));
    if (!out.emplace(std::move(key), std::string(token.substr(eq + 1)))
             .second) {
      fail(line, "duplicate key `" + std::string(token.substr(0, eq)) + "`");
    }
  }
  return out;
}

std::string take(std::map<std::string, std::string>& fields,
                 const std::string& key, int line) {
  const auto it = fields.find(key);
  if (it == fields.end()) fail(line, "missing key `" + key + "`");
  std::string v = it->second;
  fields.erase(it);
  return v;
}

std::int64_t take_int(std::map<std::string, std::string>& fields,
                      const std::string& key, int line) {
  const std::string v = take(fields, key, line);
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    fail(line, "key `" + key + "` is not an integer: `" + v + "`");
  }
}

double take_double(std::map<std::string, std::string>& fields,
                   const std::string& key, int line) {
  const std::string v = take(fields, key, line);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size() || !std::isfinite(out)) {
      throw std::invalid_argument(v);
    }
    return out;
  } catch (const std::exception&) {
    fail(line, "key `" + key + "` is not a finite number: `" + v + "`");
  }
}

/// take_int with an inclusive validity range; out-of-range values are a
/// parse error with the offending line, not a deferred model exception.
std::int64_t take_int_in(std::map<std::string, std::string>& fields,
                         const std::string& key, int line, std::int64_t lo,
                         std::int64_t hi) {
  const std::int64_t v = take_int(fields, key, line);
  if (v < lo || v > hi) {
    fail(line, "key `" + key + "` out of range [" + std::to_string(lo) +
                   ", " + std::to_string(hi) + "]: " + std::to_string(v));
  }
  return v;
}

void expect_empty(const std::map<std::string, std::string>& fields,
                  int line) {
  if (!fields.empty()) {
    fail(line, "unknown key `" + fields.begin()->first + "`");
  }
}

std::vector<std::string> split_commas(const std::string& v) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : v) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string fmt_double_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string write_application(const Application& app) {
  LETDMA_ENSURE(app.finalized(), "serialize requires a finalized application");
  std::ostringstream os;
  const Platform& p = app.platform();
  os << "# letdma application v1\n";
  os << "platform cores=" << p.num_cores()
     << " odp_ns=" << p.dma().programming_overhead
     << " oisr_ns=" << p.dma().isr_overhead
     << " wc=" << fmt_double_exact(p.dma().copy_cost_ns_per_byte)
     << " cpu_wc=" << fmt_double_exact(p.cpu_copy().copy_cost_ns_per_byte)
     << " cpu_oh_ns=" << p.cpu_copy().per_label_overhead << "\n";
  for (int i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(TaskId{i});
    os << "task name=" << t.name << " period_ns=" << t.period
       << " wcet_ns=" << t.wcet << " core=" << t.core.value
       << " priority=" << t.priority;
    if (t.acquisition_deadline) {
      os << " gamma_ns=" << *t.acquisition_deadline;
    }
    os << "\n";
  }
  for (int l = 0; l < app.num_labels(); ++l) {
    const Label& lab = app.label(LabelId{l});
    os << "label name=" << lab.name << " bytes=" << lab.size_bytes
       << " writer=" << app.task(lab.writer).name << " readers=";
    for (std::size_t r = 0; r < lab.readers.size(); ++r) {
      os << (r ? "," : "") << app.task(lab.readers[r]).name;
    }
    os << "\n";
  }
  return os.str();
}

std::unique_ptr<Application> read_application(const std::string& text) {
  std::string_view effective = text;
  if (const auto fault = guard::fault_point("io.parse");
      fault == guard::FaultKind::kTruncate) {
    effective = effective.substr(0, effective.size() / 2);
  }
  int line_no = 0;
  std::unique_ptr<Application> app;
  std::map<std::string, TaskId> tasks_by_name;
  std::map<std::string, support::Time> pending_gamma;

  for (std::size_t cursor = 0; cursor < effective.size();) {
    const std::size_t nl = effective.find('\n', cursor);
    std::string_view line = effective.substr(
        cursor, (nl == std::string_view::npos ? effective.size() : nl) -
                    cursor);
    cursor = nl == std::string_view::npos ? effective.size() : nl + 1;
    ++line_no;
    // Strip comments and whitespace-only lines.
    line = line.substr(0, line.find('#'));
    std::size_t pos = 0;
    const std::string_view directive = next_token(line, pos);
    if (directive.empty()) continue;
    auto fields = parse_fields(line.substr(pos), line_no);

    if (directive == "platform") {
      if (app) fail(line_no, "duplicate platform directive");
      const int cores = static_cast<int>(
          take_int_in(fields, "cores", line_no, 1, 4096));
      DmaParams dma;
      dma.programming_overhead =
          take_int_in(fields, "odp_ns", line_no, 0, support::ms(1'000'000));
      dma.isr_overhead =
          take_int_in(fields, "oisr_ns", line_no, 0, support::ms(1'000'000));
      dma.copy_cost_ns_per_byte = take_double(fields, "wc", line_no);
      CpuCopyParams cpu;
      cpu.copy_cost_ns_per_byte = take_double(fields, "cpu_wc", line_no);
      cpu.per_label_overhead =
          take_int_in(fields, "cpu_oh_ns", line_no, 0, support::ms(1'000'000));
      if (dma.copy_cost_ns_per_byte < 0 || cpu.copy_cost_ns_per_byte < 0) {
        fail(line_no, "copy costs must be non-negative");
      }
      expect_empty(fields, line_no);
      app = std::make_unique<Application>(Platform(cores, dma, cpu));
    } else if (directive == "task") {
      if (!app) fail(line_no, "task before platform");
      const std::string name = take(fields, "name", line_no);
      const support::Time period =
          take_int_in(fields, "period_ns", line_no, 1,
                      std::numeric_limits<std::int64_t>::max());
      const support::Time wcet =
          take_int_in(fields, "wcet_ns", line_no, 0, period);
      const int core = static_cast<int>(take_int_in(
          fields, "core", line_no, 0, app->platform().num_cores() - 1));
      int priority = -1;
      if (fields.count("priority")) {
        priority = static_cast<int>(take_int(fields, "priority", line_no));
      }
      if (fields.count("gamma_ns")) {
        // The model allows gamma >= 0 (set_acquisition_deadline); a lower
        // bound of 1 here used to reject gamma_ns=0 that write_application
        // happily emits, breaking the write/read round-trip.
        pending_gamma[name] =
            take_int_in(fields, "gamma_ns", line_no, 0, period);
      }
      expect_empty(fields, line_no);
      if (tasks_by_name.count(name) > 0) {
        fail(line_no, "duplicate task name `" + name + "`");
      }
      try {
        const TaskId id =
            app->add_task(name, period, wcet, CoreId{core}, priority);
        tasks_by_name.emplace(name, id);
      } catch (const support::Error& e) {
        fail(line_no, e.what());
      }
    } else if (directive == "label") {
      if (!app) fail(line_no, "label before platform");
      const std::string name = take(fields, "name", line_no);
      const std::int64_t bytes = take_int_in(
          fields, "bytes", line_no, 1, std::int64_t{1} << 40);
      const std::string writer = take(fields, "writer", line_no);
      const std::string readers = take(fields, "readers", line_no);
      expect_empty(fields, line_no);
      const auto wit = tasks_by_name.find(writer);
      if (wit == tasks_by_name.end()) {
        fail(line_no, "unknown writer task `" + writer + "`");
      }
      std::vector<TaskId> reader_ids;
      for (const std::string& r : split_commas(readers)) {
        const auto rit = tasks_by_name.find(r);
        if (rit == tasks_by_name.end()) {
          fail(line_no, "unknown reader task `" + r + "`");
        }
        reader_ids.push_back(rit->second);
      }
      if (reader_ids.empty()) fail(line_no, "label without readers");
      try {
        app->add_label(name, bytes, wit->second, std::move(reader_ids));
      } catch (const support::Error& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive `" + std::string(directive) + "`");
    }
  }
  if (!app) throw ParseError(0, "no platform directive found");
  try {
    for (const auto& [name, gamma] : pending_gamma) {
      app->set_acquisition_deadline(tasks_by_name.at(name), gamma);
    }
    app->finalize();
  } catch (const support::Error& e) {
    // Cross-entity inconsistencies surface at finalize (e.g. a period LCM
    // overflowing 64-bit nanoseconds); report them as malformed input
    // rather than leaking a model-layer exception for a parsing call.
    throw ParseError(0, e.what());
  }
  // Built lazily: the serve hot path parses thousands of models per
  // second and the message costs several allocations.
  if (obs::Registry::instance().log_threshold() <= obs::Level::kDebug) {
    obs::log_debug("model",
                   "parsed application: " + std::to_string(app->num_tasks()) +
                       " tasks, " + std::to_string(app->num_labels()) +
                       " labels, " +
                       std::to_string(app->platform().num_cores()) + " cores");
  }
  return app;
}

}  // namespace letdma::model
