#include "letdma/model/mapping.hpp"

#include <algorithm>
#include <set>

#include "letdma/support/error.hpp"

namespace letdma::model {

std::unique_ptr<Application> clone_with_mapping(
    const Application& app, const std::vector<int>& core_of_task) {
  LETDMA_ENSURE(app.finalized(), "clone requires a finalized application");
  LETDMA_ENSURE(static_cast<int>(core_of_task.size()) == app.num_tasks(),
                "mapping must cover every task");
  auto out = std::make_unique<Application>(app.platform());
  for (int i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(TaskId{i});
    const int core = core_of_task[static_cast<std::size_t>(i)];
    LETDMA_ENSURE(core >= 0 && core < app.platform().num_cores(),
                  "mapping assigns task `" + t.name + "` to an unknown core");
    // Priority -1: re-derived rate-monotonically at finalize().
    const TaskId id = out->add_task(t.name, t.period, t.wcet, CoreId{core});
    if (t.acquisition_deadline) {
      out->set_acquisition_deadline(id, *t.acquisition_deadline);
    }
  }
  for (int l = 0; l < app.num_labels(); ++l) {
    const Label& lab = app.label(LabelId{l});
    out->add_label(lab.name, lab.size_bytes, lab.writer, lab.readers);
  }
  out->finalize();
  return out;
}

namespace {

/// Inter-core payload for an explicit assignment, without materializing an
/// Application: one write per label with any remote reader, one read per
/// remote reader.
std::int64_t bytes_for(const Application& app,
                       const std::vector<int>& core_of_task) {
  std::int64_t total = 0;
  for (int l = 0; l < app.num_labels(); ++l) {
    const Label& lab = app.label(LabelId{l});
    const int wcore = core_of_task[static_cast<std::size_t>(lab.writer.value)];
    int remote_readers = 0;
    for (const TaskId r : lab.readers) {
      if (core_of_task[static_cast<std::size_t>(r.value)] != wcore) {
        ++remote_readers;
      }
    }
    if (remote_readers > 0) {
      total += lab.size_bytes * (1 + remote_readers);
    }
  }
  return total;
}

}  // namespace

std::int64_t inter_core_bytes(const Application& app) {
  std::vector<int> mapping(static_cast<std::size_t>(app.num_tasks()));
  for (int i = 0; i < app.num_tasks(); ++i) {
    mapping[static_cast<std::size_t>(i)] = app.task(TaskId{i}).core.value;
  }
  return bytes_for(app, mapping);
}

MappingSearchResult minimize_inter_core_traffic(
    const Application& app, MappingSearchOptions options) {
  LETDMA_ENSURE(options.max_core_utilization > 0,
                "utilization cap must be positive");
  const int cores = app.platform().num_cores();
  MappingSearchResult result;
  result.core_of_task.resize(static_cast<std::size_t>(app.num_tasks()));
  std::vector<double> core_util(static_cast<std::size_t>(cores), 0.0);
  auto util_of = [&](int task) {
    const Task& t = app.task(TaskId{task});
    return static_cast<double>(t.wcet) / static_cast<double>(t.period);
  };
  for (int i = 0; i < app.num_tasks(); ++i) {
    const int core = app.task(TaskId{i}).core.value;
    result.core_of_task[static_cast<std::size_t>(i)] = core;
    core_util[static_cast<std::size_t>(core)] += util_of(i);
  }
  result.bytes = bytes_for(app, result.core_of_task);

  for (int move = 0; move < options.max_moves; ++move) {
    std::int64_t best_bytes = result.bytes;
    int best_task = -1, best_core = -1;
    for (int i = 0; i < app.num_tasks(); ++i) {
      const int from = result.core_of_task[static_cast<std::size_t>(i)];
      for (int to = 0; to < cores; ++to) {
        if (to == from) continue;
        if (core_util[static_cast<std::size_t>(to)] + util_of(i) >
            options.max_core_utilization) {
          continue;
        }
        result.core_of_task[static_cast<std::size_t>(i)] = to;
        const std::int64_t candidate = bytes_for(app, result.core_of_task);
        result.core_of_task[static_cast<std::size_t>(i)] = from;
        if (candidate < best_bytes) {
          best_bytes = candidate;
          best_task = i;
          best_core = to;
        }
      }
    }
    if (best_task < 0) break;  // local optimum
    const int from =
        result.core_of_task[static_cast<std::size_t>(best_task)];
    core_util[static_cast<std::size_t>(from)] -= util_of(best_task);
    core_util[static_cast<std::size_t>(best_core)] += util_of(best_task);
    result.core_of_task[static_cast<std::size_t>(best_task)] = best_core;
    result.bytes = best_bytes;
    result.moves += 1;
  }
  return result;
}

}  // namespace letdma::model
