#include "letdma/model/platform.hpp"

#include "letdma/support/error.hpp"

namespace letdma::model {

Platform::Platform(int num_cores, DmaParams dma, CpuCopyParams cpu)
    : num_cores_(num_cores), dma_(dma), cpu_(cpu) {
  LETDMA_ENSURE(num_cores >= 1, "a platform needs at least one core");
  LETDMA_ENSURE(dma.programming_overhead >= 0 && dma.isr_overhead >= 0,
                "DMA overheads must be non-negative");
  LETDMA_ENSURE(dma.copy_cost_ns_per_byte >= 0.0,
                "DMA copy cost must be non-negative");
}

MemoryId Platform::local_memory(CoreId core) const {
  LETDMA_ENSURE(core.value >= 0 && core.value < num_cores_,
                "unknown core id");
  return MemoryId{core.value};
}

CoreId Platform::core_of(MemoryId m) const {
  LETDMA_ENSURE(m.value >= 0 && m.value < num_cores_,
                "memory is not a local memory");
  return CoreId{m.value};
}

std::string Platform::memory_name(MemoryId m) const {
  LETDMA_ENSURE(m.value >= 0 && m.value <= num_cores_, "unknown memory id");
  if (is_global(m)) return "M_G";
  return "M_" + std::to_string(m.value + 1);
}

}  // namespace letdma::model
