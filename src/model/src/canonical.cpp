#include "letdma/model/canonical.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "letdma/model/io.hpp"
#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

/// Individualization branch budget. Attribute-rich instances discriminate
/// during refinement and visit exactly one leaf; the budget only matters
/// for adversarially symmetric inputs (e.g. many byte-identical tasks
/// with no labels), where remaining ties are automorphic in practice.
constexpr int kMaxLeaves = 64;

using Sig = std::vector<std::int64_t>;

/// Dense-ranks `sigs` lexicographically into *colors; returns the number
/// of distinct classes.
int rank_signatures(const std::vector<Sig>& sigs, std::vector<int>* colors) {
  const std::size_t n = sigs.size();
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](int a, int b) { return sigs[static_cast<std::size_t>(a)] <
                                       sigs[static_cast<std::size_t>(b)]; });
  colors->assign(n, 0);
  int rank = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && sigs[static_cast<std::size_t>(idx[i])] !=
                     sigs[static_cast<std::size_t>(idx[i - 1])]) {
      ++rank;
    }
    (*colors)[static_cast<std::size_t>(idx[i])] = rank;
  }
  return n == 0 ? 0 : rank + 1;
}

struct Colors {
  std::vector<int> task;
  std::vector<int> label;
  std::vector<int> core;
  int classes = 0;  // total distinct classes across the three families
};

/// Static structure shared by every refinement pass.
struct Graph {
  const Application* app = nullptr;
  int num_tasks = 0, num_labels = 0, num_cores = 0;
  std::vector<std::vector<int>> writes_of;  // task -> labels it writes
  std::vector<std::vector<int>> reads_of;   // task -> labels it reads
  std::vector<std::vector<int>> tasks_on;   // core -> tasks
};

Graph build_graph(const Application& app) {
  Graph g;
  g.app = &app;
  g.num_tasks = app.num_tasks();
  g.num_labels = app.num_labels();
  g.num_cores = app.platform().num_cores();
  g.writes_of.resize(static_cast<std::size_t>(g.num_tasks));
  g.reads_of.resize(static_cast<std::size_t>(g.num_tasks));
  g.tasks_on.resize(static_cast<std::size_t>(g.num_cores));
  for (int i = 0; i < g.num_tasks; ++i) {
    g.tasks_on[static_cast<std::size_t>(app.task(TaskId{i}).core.value)]
        .push_back(i);
  }
  for (int l = 0; l < g.num_labels; ++l) {
    const Label& lab = app.label(LabelId{l});
    g.writes_of[static_cast<std::size_t>(lab.writer.value)].push_back(l);
    for (const TaskId r : lab.readers) {
      g.reads_of[static_cast<std::size_t>(r.value)].push_back(l);
    }
  }
  return g;
}

Colors initial_colors(const Graph& g) {
  Colors c;
  std::vector<Sig> task_sigs, label_sigs, core_sigs;
  task_sigs.reserve(static_cast<std::size_t>(g.num_tasks));
  for (int i = 0; i < g.num_tasks; ++i) {
    const Task& t = g.app->task(TaskId{i});
    task_sigs.push_back({t.period, t.wcet, t.priority,
                         t.acquisition_deadline ? *t.acquisition_deadline
                                                : -1});
  }
  label_sigs.reserve(static_cast<std::size_t>(g.num_labels));
  for (int l = 0; l < g.num_labels; ++l) {
    label_sigs.push_back({g.app->label(LabelId{l}).size_bytes});
  }
  // Cores are structurally identical in the platform model; they are
  // discriminated purely by the tasks mapped onto them.
  core_sigs.assign(static_cast<std::size_t>(g.num_cores), {0});
  c.classes = rank_signatures(task_sigs, &c.task) +
              rank_signatures(label_sigs, &c.label) +
              rank_signatures(core_sigs, &c.core);
  return c;
}

/// One Weisfeiler–Lehman round: every entity absorbs the colours of its
/// neighbourhood. Returns colours with re-ranked (dense) classes.
void refine_round(const Graph& g, Colors* c) {
  std::vector<Sig> task_sigs(static_cast<std::size_t>(g.num_tasks));
  for (int i = 0; i < g.num_tasks; ++i) {
    Sig s{c->task[static_cast<std::size_t>(i)],
          c->core[static_cast<std::size_t>(
              g.app->task(TaskId{i}).core.value)]};
    Sig w, r;
    for (const int l : g.writes_of[static_cast<std::size_t>(i)]) {
      w.push_back(c->label[static_cast<std::size_t>(l)]);
    }
    for (const int l : g.reads_of[static_cast<std::size_t>(i)]) {
      r.push_back(c->label[static_cast<std::size_t>(l)]);
    }
    std::sort(w.begin(), w.end());
    std::sort(r.begin(), r.end());
    s.push_back(-1);  // section separators keep writes/reads unambiguous
    s.insert(s.end(), w.begin(), w.end());
    s.push_back(-2);
    s.insert(s.end(), r.begin(), r.end());
    task_sigs[static_cast<std::size_t>(i)] = std::move(s);
  }
  std::vector<Sig> label_sigs(static_cast<std::size_t>(g.num_labels));
  for (int l = 0; l < g.num_labels; ++l) {
    const Label& lab = g.app->label(LabelId{l});
    Sig s{c->label[static_cast<std::size_t>(l)],
          c->task[static_cast<std::size_t>(lab.writer.value)]};
    Sig readers;
    for (const TaskId r : lab.readers) {
      readers.push_back(c->task[static_cast<std::size_t>(r.value)]);
    }
    std::sort(readers.begin(), readers.end());
    s.insert(s.end(), readers.begin(), readers.end());
    label_sigs[static_cast<std::size_t>(l)] = std::move(s);
  }
  std::vector<Sig> core_sigs(static_cast<std::size_t>(g.num_cores));
  for (int k = 0; k < g.num_cores; ++k) {
    Sig s{c->core[static_cast<std::size_t>(k)]};
    Sig members;
    for (const int i : g.tasks_on[static_cast<std::size_t>(k)]) {
      members.push_back(c->task[static_cast<std::size_t>(i)]);
    }
    std::sort(members.begin(), members.end());
    s.insert(s.end(), members.begin(), members.end());
    core_sigs[static_cast<std::size_t>(k)] = std::move(s);
  }
  c->classes = rank_signatures(task_sigs, &c->task) +
               rank_signatures(label_sigs, &c->label) +
               rank_signatures(core_sigs, &c->core);
}

/// Refines to the fixpoint. Refinement only ever splits classes, so the
/// partition is stable as soon as the class count stops growing.
void refine(const Graph& g, Colors* c) {
  for (;;) {
    const int before = c->classes;
    refine_round(g, c);
    if (c->classes == before) return;
  }
}

/// First (smallest-colour) task class with more than one member, or -1.
int ambiguous_task_class(const Graph& g, const Colors& c) {
  std::vector<int> count;
  for (int i = 0; i < g.num_tasks; ++i) {
    const int col = c.task[static_cast<std::size_t>(i)];
    if (col >= static_cast<int>(count.size())) {
      count.resize(static_cast<std::size_t>(col) + 1, 0);
    }
    ++count[static_cast<std::size_t>(col)];
  }
  for (std::size_t col = 0; col < count.size(); ++col) {
    if (count[col] > 1) return static_cast<int>(col);
  }
  return -1;
}

struct Leaf {
  std::string text;
  std::vector<int> task_map, label_map, core_map;
  std::unique_ptr<Application> app;
};

std::vector<int> invert(const std::vector<int>& map) {
  std::vector<int> inv(map.size(), -1);
  for (std::size_t i = 0; i < map.size(); ++i) {
    inv[static_cast<std::size_t>(map[i])] = static_cast<int>(i);
  }
  return inv;
}

/// Builds the canonical application for a fully discriminated colouring.
/// Task colours are singleton here; label/core ties that survive are
/// automorphic (identical attributes and identical neighbour sets once
/// every task colour is unique), so index tie-breaks cannot change the
/// canonical text.
Leaf make_leaf(const Graph& g, const Colors& c) {
  Leaf leaf;
  const Application& app = *g.app;

  // Tasks: canonical order = colour order.
  std::vector<int> torder(static_cast<std::size_t>(g.num_tasks));
  std::iota(torder.begin(), torder.end(), 0);
  std::sort(torder.begin(), torder.end(), [&](int a, int b) {
    return c.task[static_cast<std::size_t>(a)] <
           c.task[static_cast<std::size_t>(b)];
  });
  leaf.task_map.assign(static_cast<std::size_t>(g.num_tasks), -1);
  for (std::size_t p = 0; p < torder.size(); ++p) {
    leaf.task_map[static_cast<std::size_t>(torder[p])] = static_cast<int>(p);
  }

  // Labels: colour order, index tie-break (automorphic ties only).
  std::vector<int> lorder(static_cast<std::size_t>(g.num_labels));
  std::iota(lorder.begin(), lorder.end(), 0);
  std::sort(lorder.begin(), lorder.end(), [&](int a, int b) {
    const int ca = c.label[static_cast<std::size_t>(a)];
    const int cb = c.label[static_cast<std::size_t>(b)];
    if (ca != cb) return ca < cb;
    return a < b;
  });
  leaf.label_map.assign(static_cast<std::size_t>(g.num_labels), -1);
  for (std::size_t p = 0; p < lorder.size(); ++p) {
    leaf.label_map[static_cast<std::size_t>(lorder[p])] = static_cast<int>(p);
  }

  // Cores: tasks partition the non-empty cores, so the smallest canonical
  // task index orders them totally; empty cores (interchangeable) go last.
  std::vector<int> corder(static_cast<std::size_t>(g.num_cores));
  std::iota(corder.begin(), corder.end(), 0);
  const auto core_key = [&](int k) {
    int min_task = g.num_tasks;  // empty cores sort after every task key
    for (const int i : g.tasks_on[static_cast<std::size_t>(k)]) {
      min_task = std::min(min_task,
                          leaf.task_map[static_cast<std::size_t>(i)]);
    }
    return min_task;
  };
  std::sort(corder.begin(), corder.end(), [&](int a, int b) {
    const int ka = core_key(a), kb = core_key(b);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  leaf.core_map.assign(static_cast<std::size_t>(g.num_cores), -1);
  for (std::size_t p = 0; p < corder.size(); ++p) {
    leaf.core_map[static_cast<std::size_t>(corder[p])] = static_cast<int>(p);
  }

  // Rebuild the renamed application in canonical order.
  const Platform& plat = app.platform();
  auto out = std::make_unique<Application>(
      Platform(plat.num_cores(), plat.dma(), plat.cpu_copy()));
  const std::vector<int> task_inv = invert(leaf.task_map);
  const std::vector<int> label_inv = invert(leaf.label_map);
  for (int ci = 0; ci < g.num_tasks; ++ci) {
    const Task& t = app.task(TaskId{task_inv[static_cast<std::size_t>(ci)]});
    std::string tname = "t";
    tname += std::to_string(ci);
    const TaskId id = out->add_task(
        std::move(tname), t.period, t.wcet,
        CoreId{leaf.core_map[static_cast<std::size_t>(t.core.value)]},
        t.priority);
    if (t.acquisition_deadline) {
      out->set_acquisition_deadline(id, *t.acquisition_deadline);
    }
  }
  for (int cl = 0; cl < g.num_labels; ++cl) {
    const Label& lab =
        app.label(LabelId{label_inv[static_cast<std::size_t>(cl)]});
    std::vector<TaskId> readers;
    readers.reserve(lab.readers.size());
    for (const TaskId r : lab.readers) {
      readers.push_back(
          TaskId{leaf.task_map[static_cast<std::size_t>(r.value)]});
    }
    std::sort(readers.begin(), readers.end());
    std::string lname = "l";
    lname += std::to_string(cl);
    out->add_label(std::move(lname), lab.size_bytes,
                   TaskId{leaf.task_map[static_cast<std::size_t>(
                       lab.writer.value)]},
                   std::move(readers));
  }
  out->finalize();
  leaf.text = write_application(*out);
  leaf.app = std::move(out);
  return leaf;
}

struct SearchCtx {
  const Graph* graph = nullptr;
  int leaves = 0;
  bool exact = true;
  Leaf best;
  bool has_best = false;
};

void search(SearchCtx& ctx, Colors colors) {
  const Graph& g = *ctx.graph;
  refine(g, &colors);
  const int ambiguous = ambiguous_task_class(g, colors);
  if (ambiguous < 0) {
    ++ctx.leaves;
    Leaf leaf = make_leaf(g, colors);
    if (!ctx.has_best || leaf.text < ctx.best.text) {
      ctx.best = std::move(leaf);
      ctx.has_best = true;
    }
    return;
  }
  // Individualize each member of the ambiguous class in turn and keep the
  // lexicographically smallest resulting text. Members are visited in
  // index order, but the *choice* of winner is order-independent, so the
  // canonical form stays isomorphism-invariant while the budget holds.
  std::vector<int> members;
  for (int i = 0; i < g.num_tasks; ++i) {
    if (colors.task[static_cast<std::size_t>(i)] == ambiguous) {
      members.push_back(i);
    }
  }
  bool first = true;
  for (const int m : members) {
    if (!first && ctx.leaves >= kMaxLeaves) {
      ctx.exact = false;
      break;
    }
    first = false;
    Colors next = colors;
    // A fresh colour strictly above every existing rank; re-ranked dense
    // on the next refinement round.
    next.task[static_cast<std::size_t>(m)] = g.num_tasks;
    search(ctx, std::move(next));
  }
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& bytes, std::uint64_t offset,
                    std::uint64_t prime) {
  std::uint64_t h = offset;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= prime;
  }
  return h;
}

}  // namespace

std::string Fingerprint::to_hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Fingerprint fingerprint_bytes(const std::string& bytes) {
  // Two independently seeded FNV-1a streams with a splitmix finalizer.
  // Collisions only cost a wasted certify + fresh solve in the serve
  // cache (hits are re-certified against the requesting instance), so a
  // fast non-cryptographic hash is the right trade.
  Fingerprint fp;
  fp.lo = splitmix64(fnv1a(bytes, 0xcbf29ce484222325ULL, 0x100000001b3ULL) ^
                     bytes.size());
  fp.hi = splitmix64(fnv1a(bytes, 0x84222325cbf29ce4ULL, 0x00000100000001b3ULL) +
                     0x9e3779b97f4a7c15ULL * bytes.size());
  return fp;
}

Canonicalization canonicalize(const Application& app) {
  LETDMA_ENSURE(app.finalized(), "canonicalize requires a finalized application");
  const Graph g = build_graph(app);
  SearchCtx ctx;
  ctx.graph = &g;
  search(ctx, initial_colors(g));
  LETDMA_ENSURE(ctx.has_best, "canonical search produced no leaf");

  Canonicalization out;
  out.app = std::move(ctx.best.app);
  out.text = std::move(ctx.best.text);
  out.fingerprint = fingerprint_bytes(out.text);
  out.task_map = std::move(ctx.best.task_map);
  out.label_map = std::move(ctx.best.label_map);
  out.core_map = std::move(ctx.best.core_map);
  out.exact = ctx.exact;
  return out;
}

Fingerprint fingerprint_of(const Application& app) {
  return canonicalize(app).fingerprint;
}

std::vector<int> invert_permutation(const std::vector<int>& map) {
  return invert(map);
}

std::unique_ptr<Application> permute_application(
    const Application& app, const std::vector<int>& task_perm,
    const std::vector<int>& label_perm, const std::vector<int>& core_perm) {
  const int num_tasks = app.num_tasks();
  const int num_labels = app.num_labels();
  const int num_cores = app.platform().num_cores();
  const auto identity = [](int n) {
    std::vector<int> id(static_cast<std::size_t>(n));
    std::iota(id.begin(), id.end(), 0);
    return id;
  };
  const std::vector<int> tp = task_perm.empty() ? identity(num_tasks)
                                                : task_perm;
  const std::vector<int> lp = label_perm.empty() ? identity(num_labels)
                                                 : label_perm;
  const std::vector<int> cp = core_perm.empty() ? identity(num_cores)
                                                : core_perm;
  LETDMA_ENSURE(static_cast<int>(tp.size()) == num_tasks &&
                    static_cast<int>(lp.size()) == num_labels &&
                    static_cast<int>(cp.size()) == num_cores,
                "permutation sizes must match the application");
  const auto is_permutation = [](const std::vector<int>& p) {
    std::vector<char> seen(p.size(), 0);
    for (const int v : p) {
      if (v < 0 || v >= static_cast<int>(p.size()) ||
          seen[static_cast<std::size_t>(v)] != 0) {
        return false;
      }
      seen[static_cast<std::size_t>(v)] = 1;
    }
    return true;
  };
  LETDMA_ENSURE(is_permutation(tp) && is_permutation(lp) && is_permutation(cp),
                "each relabeling must be a bijection");

  const Platform& plat = app.platform();
  auto out = std::make_unique<Application>(
      Platform(plat.num_cores(), plat.dma(), plat.cpu_copy()));
  const std::vector<int> task_inv = invert(tp);
  const std::vector<int> label_inv = invert(lp);
  for (int ni = 0; ni < num_tasks; ++ni) {
    const Task& t = app.task(TaskId{task_inv[static_cast<std::size_t>(ni)]});
    std::string name = "p";
    name += std::to_string(ni);
    const TaskId id = out->add_task(
        std::move(name), t.period, t.wcet,
        CoreId{cp[static_cast<std::size_t>(t.core.value)]}, t.priority);
    if (t.acquisition_deadline) {
      out->set_acquisition_deadline(id, *t.acquisition_deadline);
    }
  }
  for (int nl = 0; nl < num_labels; ++nl) {
    const Label& lab =
        app.label(LabelId{label_inv[static_cast<std::size_t>(nl)]});
    std::vector<TaskId> readers;
    readers.reserve(lab.readers.size());
    for (const TaskId r : lab.readers) {
      readers.push_back(TaskId{tp[static_cast<std::size_t>(r.value)]});
    }
    std::string name = "q";
    name += std::to_string(nl);
    out->add_label(std::move(name), lab.size_bytes,
                   TaskId{tp[static_cast<std::size_t>(lab.writer.value)]},
                   std::move(readers));
  }
  out->finalize();
  return out;
}

}  // namespace letdma::model
