#include "letdma/model/diff.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "letdma/model/canonical.hpp"
#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

bool same_platform(const Platform& a, const Platform& b) {
  return a.num_cores() == b.num_cores() &&
         a.dma().programming_overhead == b.dma().programming_overhead &&
         a.dma().isr_overhead == b.dma().isr_overhead &&
         a.dma().copy_cost_ns_per_byte == b.dma().copy_cost_ns_per_byte &&
         a.cpu_copy().copy_cost_ns_per_byte ==
             b.cpu_copy().copy_cost_ns_per_byte &&
         a.cpu_copy().per_label_overhead == b.cpu_copy().per_label_overhead;
}

bool same_task(const Task& a, const Task& b) {
  return a.period == b.period && a.wcet == b.wcet && a.core == b.core &&
         a.priority == b.priority &&
         a.acquisition_deadline == b.acquisition_deadline;
}

std::unordered_map<std::string, int> index_by_name(const Application& app,
                                                   bool tasks) {
  std::unordered_map<std::string, int> out;
  const int n = tasks ? app.num_tasks() : app.num_labels();
  for (int i = 0; i < n; ++i) {
    out.emplace(tasks ? app.task(TaskId{i}).name : app.label(LabelId{i}).name,
                i);
  }
  return out;
}

void append_count(std::ostringstream& os, int count, const char* what,
                  bool& first) {
  if (count == 0) return;
  if (!first) os << ", ";
  first = false;
  os << count << ' ' << what;
}

}  // namespace

int ApplicationDiff::tasks_added() const {
  int n = 0;
  for (const auto& e : task_edits) n += e.added ? 1 : 0;
  return n;
}

int ApplicationDiff::tasks_removed() const {
  int n = 0;
  for (int m : task_map) n += (m < 0) ? 1 : 0;
  return n;
}

int ApplicationDiff::tasks_changed() const {
  return static_cast<int>(task_edits.size()) - tasks_added();
}

int ApplicationDiff::labels_added() const {
  int n = 0;
  for (const auto& e : label_edits) n += e.added ? 1 : 0;
  return n;
}

int ApplicationDiff::labels_removed() const {
  int n = 0;
  for (int m : label_map) n += (m < 0) ? 1 : 0;
  return n;
}

int ApplicationDiff::labels_changed() const {
  return static_cast<int>(label_edits.size()) - labels_added();
}

bool ApplicationDiff::empty() const {
  return task_edits.empty() && label_edits.empty() && tasks_removed() == 0 &&
         labels_removed() == 0 && !platform.has_value();
}

std::string ApplicationDiff::summary() const {
  if (empty()) return "identical";
  std::ostringstream os;
  bool first = true;
  append_count(os, tasks_added(), "task(s) added", first);
  append_count(os, tasks_removed(), "task(s) removed", first);
  append_count(os, tasks_changed(), "task(s) changed", first);
  append_count(os, labels_added(), "label(s) added", first);
  append_count(os, labels_removed(), "label(s) removed", first);
  append_count(os, labels_changed(), "label(s) changed", first);
  if (platform.has_value()) {
    if (!first) os << ", ";
    first = false;
    os << "platform changed";
  }
  return os.str();
}

ApplicationDiff diff(const Application& before, const Application& after) {
  LETDMA_ENSURE(before.finalized() && after.finalized(),
                "diff requires finalized applications");
  ApplicationDiff d;
  d.new_num_tasks = after.num_tasks();
  d.new_num_labels = after.num_labels();
  if (!same_platform(before.platform(), after.platform())) {
    d.platform = after.platform();
  }

  const auto before_tasks = index_by_name(before, /*tasks=*/true);
  const auto after_tasks = index_by_name(after, /*tasks=*/true);
  d.task_map.assign(before.num_tasks(), -1);
  for (const auto& [name, old_idx] : before_tasks) {
    auto it = after_tasks.find(name);
    if (it != after_tasks.end()) d.task_map[old_idx] = it->second;
  }
  // new index -> old index for surviving tasks (-1 = added).
  std::vector<int> task_inv(after.num_tasks(), -1);
  for (int old_idx = 0; old_idx < before.num_tasks(); ++old_idx) {
    if (d.task_map[old_idx] >= 0) task_inv[d.task_map[old_idx]] = old_idx;
  }
  for (int new_idx = 0; new_idx < after.num_tasks(); ++new_idx) {
    const Task& t = after.task(TaskId{new_idx});
    const int old_idx = task_inv[new_idx];
    if (old_idx >= 0 && same_task(before.task(TaskId{old_idx}), t)) continue;
    d.task_edits.push_back(TaskEdit{new_idx, t, /*added=*/old_idx < 0});
  }

  const auto before_labels = index_by_name(before, /*tasks=*/false);
  const auto after_labels = index_by_name(after, /*tasks=*/false);
  d.label_map.assign(before.num_labels(), -1);
  for (const auto& [name, old_idx] : before_labels) {
    auto it = after_labels.find(name);
    if (it != after_labels.end()) d.label_map[old_idx] = it->second;
  }
  std::vector<int> label_inv(after.num_labels(), -1);
  for (int old_idx = 0; old_idx < before.num_labels(); ++old_idx) {
    if (d.label_map[old_idx] >= 0) label_inv[d.label_map[old_idx]] = old_idx;
  }
  for (int new_idx = 0; new_idx < after.num_labels(); ++new_idx) {
    const Label& lab = after.label(LabelId{new_idx});
    const int old_idx = label_inv[new_idx];
    bool changed = true;
    if (old_idx >= 0) {
      // A surviving label is unchanged when its size matches and every
      // endpoint survives onto the matching after-side task.
      const Label& old_lab = before.label(LabelId{old_idx});
      changed = old_lab.size_bytes != lab.size_bytes ||
                d.task_map[old_lab.writer.value] != lab.writer.value;
      if (!changed) {
        std::vector<int> old_readers;
        old_readers.reserve(old_lab.readers.size());
        for (TaskId r : old_lab.readers) {
          old_readers.push_back(d.task_map[r.value]);
        }
        std::vector<int> new_readers;
        new_readers.reserve(lab.readers.size());
        for (TaskId r : lab.readers) new_readers.push_back(r.value);
        std::sort(old_readers.begin(), old_readers.end());
        std::sort(new_readers.begin(), new_readers.end());
        changed = old_readers != new_readers;
      }
    }
    if (!changed) continue;
    LabelEdit e;
    e.index = new_idx;
    e.name = lab.name;
    e.size_bytes = lab.size_bytes;
    e.writer = lab.writer.value;
    e.readers.reserve(lab.readers.size());
    for (TaskId r : lab.readers) e.readers.push_back(r.value);
    e.added = old_idx < 0;
    d.label_edits.push_back(std::move(e));
  }
  return d;
}

std::unique_ptr<Application> apply_diff(const Application& before,
                                        const ApplicationDiff& d) {
  LETDMA_ENSURE(before.finalized(), "apply_diff requires a finalized base");
  LETDMA_ENSURE(static_cast<int>(d.task_map.size()) == before.num_tasks() &&
                    static_cast<int>(d.label_map.size()) == before.num_labels(),
                "diff does not match the base application");

  // Materialize the after-side task table: surviving tasks carried over,
  // edits overwrite/fill.
  std::vector<std::optional<Task>> tasks(d.new_num_tasks);
  for (int old_idx = 0; old_idx < before.num_tasks(); ++old_idx) {
    const int new_idx = d.task_map[old_idx];
    if (new_idx < 0) continue;
    LETDMA_ENSURE(new_idx < d.new_num_tasks, "diff task_map out of range");
    tasks[new_idx] = before.task(TaskId{old_idx});
  }
  for (const auto& e : d.task_edits) {
    LETDMA_ENSURE(e.index >= 0 && e.index < d.new_num_tasks,
                  "diff task edit out of range");
    tasks[e.index] = e.task;
  }

  struct PendingLabel {
    std::string name;
    std::int64_t size_bytes = 0;
    int writer = -1;
    std::vector<int> readers;
  };
  std::vector<std::optional<PendingLabel>> labels(d.new_num_labels);
  for (int old_idx = 0; old_idx < before.num_labels(); ++old_idx) {
    const int new_idx = d.label_map[old_idx];
    if (new_idx < 0) continue;
    LETDMA_ENSURE(new_idx < d.new_num_labels, "diff label_map out of range");
    const Label& lab = before.label(LabelId{old_idx});
    PendingLabel p;
    p.name = lab.name;
    p.size_bytes = lab.size_bytes;
    p.writer = d.task_map[lab.writer.value];
    for (TaskId r : lab.readers) p.readers.push_back(d.task_map[r.value]);
    labels[new_idx] = std::move(p);
  }
  for (const auto& e : d.label_edits) {
    LETDMA_ENSURE(e.index >= 0 && e.index < d.new_num_labels,
                  "diff label edit out of range");
    labels[e.index] = PendingLabel{e.name, e.size_bytes, e.writer, e.readers};
  }

  auto out = std::make_unique<Application>(
      d.platform.has_value() ? *d.platform : before.platform());
  for (int i = 0; i < d.new_num_tasks; ++i) {
    LETDMA_ENSURE(tasks[i].has_value(), "diff leaves a task slot unfilled");
    const Task& t = *tasks[i];
    const TaskId id = out->add_task(t.name, t.period, t.wcet, t.core,
                                    t.priority);
    if (t.acquisition_deadline.has_value()) {
      out->set_acquisition_deadline(id, *t.acquisition_deadline);
    }
  }
  for (int i = 0; i < d.new_num_labels; ++i) {
    LETDMA_ENSURE(labels[i].has_value(), "diff leaves a label slot unfilled");
    const PendingLabel& p = *labels[i];
    LETDMA_ENSURE(p.writer >= 0, "diff label writer was removed");
    std::vector<TaskId> readers;
    readers.reserve(p.readers.size());
    for (int r : p.readers) {
      LETDMA_ENSURE(r >= 0, "diff label reader was removed");
      readers.push_back(TaskId{r});
    }
    out->add_label(p.name, p.size_bytes, TaskId{p.writer}, std::move(readers));
  }
  out->finalize();
  return out;
}

double magnitude(const ApplicationDiff& d) {
  return 1.0 * (d.tasks_added() + d.tasks_removed() + d.labels_added() +
                d.labels_removed()) +
         0.5 * (d.tasks_changed() + d.labels_changed()) +
         (d.platform.has_value() ? 4.0 : 0.0);
}

double canonical_distance(const Application& canon_a,
                          const Application& canon_b) {
  const double size = static_cast<double>(
      std::max(canon_a.num_tasks() + canon_a.num_labels(),
               canon_b.num_tasks() + canon_b.num_labels()));
  if (size <= 0) return 0.0;
  const double m = magnitude(diff(canon_a, canon_b));
  return std::min(1.0, m / size);
}

double structural_distance(const Application& a, const Application& b) {
  const Canonicalization ca = canonicalize(a);
  const Canonicalization cb = canonicalize(b);
  if (ca.fingerprint == cb.fingerprint) return 0.0;
  return canonical_distance(*ca.app, *cb.app);
}

}  // namespace letdma::model
