#include "letdma/model/generator.hpp"

#include <algorithm>
#include <cmath>

#include "letdma/support/error.hpp"
#include "letdma/support/rng.hpp"

namespace letdma::model {
namespace {

/// UUniFast (Bini & Buttazzo 2005): n utilizations summing to `total`.
std::vector<double> uunifast(support::Rng& rng, int n, double total) {
  std::vector<double> u(static_cast<std::size_t>(n));
  double sum = total;
  for (int i = 0; i < n - 1; ++i) {
    const double next =
        sum * std::pow(rng.uniform(), 1.0 / static_cast<double>(n - i - 1));
    u[static_cast<std::size_t>(i)] = sum - next;
    sum = next;
  }
  u[static_cast<std::size_t>(n - 1)] = sum;
  return u;
}

}  // namespace

std::unique_ptr<Application> generate_application(GeneratorOptions options) {
  LETDMA_ENSURE(options.num_cores >= 2,
                "inter-core communication needs >= 2 cores");
  LETDMA_ENSURE(options.num_tasks >= 2, "need at least two tasks");
  LETDMA_ENSURE(options.num_labels >= 0, "negative label count");
  LETDMA_ENSURE(options.total_utilization > 0 &&
                    options.total_utilization <= options.num_cores,
                "utilization must be positive and at most the core count");
  LETDMA_ENSURE(options.min_label_bytes > 0 &&
                    options.min_label_bytes <= options.max_label_bytes,
                "inconsistent label size bounds");
  LETDMA_ENSURE(options.max_readers >= 1, "labels need at least one reader");

  support::Rng rng(options.seed);
  if (options.period_choices.empty()) {
    options.period_choices = {support::ms(1),  support::ms(2),
                              support::ms(5),  support::ms(10),
                              support::ms(20), support::ms(50),
                              support::ms(100), support::ms(200)};
  }

  auto app = std::make_unique<Application>(Platform(options.num_cores));
  const std::vector<double> util =
      uunifast(rng, options.num_tasks, options.total_utilization);
  const int core_offset =
      static_cast<int>(rng.uniform_int(0, options.num_cores - 1));
  std::vector<TaskId> ids;
  for (int i = 0; i < options.num_tasks; ++i) {
    const support::Time period =
        options.period_choices[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(options.period_choices.size()) -
                   1))];
    // Per-task utilization capped at 0.9 to keep single tasks feasible.
    const double u = std::min(util[static_cast<std::size_t>(i)], 0.9);
    const support::Time wcet = std::max<support::Time>(
        1, static_cast<support::Time>(u * static_cast<double>(period)));
    const CoreId core{(core_offset + i) % options.num_cores};
    ids.push_back(app->add_task("task" + std::to_string(i), period, wcet,
                                core));
  }

  for (int l = 0; l < options.num_labels; ++l) {
    const TaskId writer = ids[static_cast<std::size_t>(
        rng.uniform_int(0, options.num_tasks - 1))];
    const int want_readers =
        static_cast<int>(rng.uniform_int(1, options.max_readers));
    std::vector<TaskId> readers;
    for (int r = 0; r < want_readers; ++r) {
      const TaskId candidate = ids[static_cast<std::size_t>(
          rng.uniform_int(0, options.num_tasks - 1))];
      if (candidate == writer) continue;
      if (std::find(readers.begin(), readers.end(), candidate) !=
          readers.end()) {
        continue;
      }
      readers.push_back(candidate);
    }
    if (readers.empty()) {
      // Force one reader distinct from the writer.
      readers.push_back(
          ids[static_cast<std::size_t>((writer.value + 1) %
                                       options.num_tasks)]);
    }
    app->add_label("label" + std::to_string(l),
                   rng.uniform_int(options.min_label_bytes,
                                   options.max_label_bytes),
                   writer, std::move(readers));
  }

  app->finalize();
  return app;
}

}  // namespace letdma::model
