#include "letdma/model/application.hpp"

#include <algorithm>
#include <set>

#include "letdma/support/error.hpp"

namespace letdma::model {

Application::Application(Platform platform) : platform_(std::move(platform)) {}

TaskId Application::add_task(std::string name, Time period, Time wcet,
                             CoreId core, int priority) {
  require_mutable();
  LETDMA_ENSURE(period > 0, "task `" + name + "` needs a positive period");
  LETDMA_ENSURE(wcet >= 0 && wcet <= period,
                "task `" + name + "` WCET must be in [0, period]");
  LETDMA_ENSURE(core.value >= 0 && core.value < platform_.num_cores(),
                "task `" + name + "` mapped to an unknown core");
  for (const Task& t : tasks_) {
    LETDMA_ENSURE(t.name != name, "duplicate task name `" + name + "`");
  }
  tasks_.push_back({std::move(name), period, wcet, core, priority, {}});
  return TaskId{static_cast<int>(tasks_.size()) - 1};
}

LabelId Application::add_label(std::string name, std::int64_t size_bytes,
                               TaskId writer, std::vector<TaskId> readers) {
  require_mutable();
  LETDMA_ENSURE(size_bytes > 0, "label `" + name + "` needs a positive size");
  LETDMA_ENSURE(writer.value >= 0 && writer.value < num_tasks(),
                "label `" + name + "` written by an unknown task");
  std::set<int> seen;
  for (const TaskId r : readers) {
    LETDMA_ENSURE(r.value >= 0 && r.value < num_tasks(),
                  "label `" + name + "` read by an unknown task");
    LETDMA_ENSURE(!(r == writer),
                  "label `" + name + "` read by its own writer");
    LETDMA_ENSURE(seen.insert(r.value).second,
                  "label `" + name + "` lists a reader twice");
  }
  for (const Label& l : labels_) {
    LETDMA_ENSURE(l.name != name, "duplicate label name `" + name + "`");
  }
  labels_.push_back({std::move(name), size_bytes, writer, std::move(readers)});
  return LabelId{static_cast<int>(labels_.size()) - 1};
}

void Application::set_acquisition_deadline(TaskId task, Time gamma) {
  LETDMA_ENSURE(task.value >= 0 && task.value < num_tasks(), "unknown task");
  LETDMA_ENSURE(gamma >= 0, "acquisition deadline must be non-negative");
  tasks_[static_cast<std::size_t>(task.value)].acquisition_deadline = gamma;
}

void Application::finalize() {
  require_mutable();
  LETDMA_ENSURE(!tasks_.empty(), "an application needs at least one task");

  // Assign rate-monotonic priorities (per core) to tasks without one, then
  // verify uniqueness per core.
  for (int k = 0; k < platform_.num_cores(); ++k) {
    std::vector<int> core_tasks;
    for (int i = 0; i < num_tasks(); ++i) {
      if (tasks_[static_cast<std::size_t>(i)].core.value == k) {
        core_tasks.push_back(i);
      }
    }
    const bool any_unset = std::any_of(
        core_tasks.begin(), core_tasks.end(),
        [&](int i) { return tasks_[static_cast<std::size_t>(i)].priority < 0; });
    if (any_unset) {
      std::vector<int> order = core_tasks;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const Task& ta = tasks_[static_cast<std::size_t>(a)];
        const Task& tb = tasks_[static_cast<std::size_t>(b)];
        if (ta.period != tb.period) return ta.period < tb.period;
        return a < b;
      });
      for (std::size_t p = 0; p < order.size(); ++p) {
        tasks_[static_cast<std::size_t>(order[p])].priority =
            static_cast<int>(p);
      }
    }
    std::set<int> prios;
    for (const int i : core_tasks) {
      LETDMA_ENSURE(
          prios.insert(tasks_[static_cast<std::size_t>(i)].priority).second,
          "duplicate priority on core " + std::to_string(k));
    }
  }

  // Build the inter-core edge list.
  edges_.clear();
  for (int l = 0; l < num_labels(); ++l) {
    const Label& lab = labels_[static_cast<std::size_t>(l)];
    const CoreId wcore = tasks_[static_cast<std::size_t>(lab.writer.value)].core;
    for (const TaskId r : lab.readers) {
      if (!(tasks_[static_cast<std::size_t>(r.value)].core == wcore)) {
        edges_.push_back({LabelId{l}, lab.writer, r});
      }
    }
  }
  finalized_ = true;
}

const Task& Application::task(TaskId id) const {
  LETDMA_ENSURE(id.value >= 0 && id.value < num_tasks(), "unknown task id");
  return tasks_[static_cast<std::size_t>(id.value)];
}

const Label& Application::label(LabelId id) const {
  LETDMA_ENSURE(id.value >= 0 && id.value < num_labels(), "unknown label id");
  return labels_[static_cast<std::size_t>(id.value)];
}

TaskId Application::find_task(const std::string& name) const {
  for (int i = 0; i < num_tasks(); ++i) {
    if (tasks_[static_cast<std::size_t>(i)].name == name) return TaskId{i};
  }
  throw support::PreconditionError("no task named `" + name + "`");
}

std::vector<TaskId> Application::tasks_on(CoreId core) const {
  std::vector<TaskId> out;
  for (int i = 0; i < num_tasks(); ++i) {
    if (tasks_[static_cast<std::size_t>(i)].core == core) {
      out.push_back(TaskId{i});
    }
  }
  std::sort(out.begin(), out.end(), [&](TaskId a, TaskId b) {
    return task(a).priority < task(b).priority;
  });
  return out;
}

const std::vector<InterCoreEdge>& Application::inter_core_edges() const {
  require_finalized();
  return edges_;
}

std::vector<LabelId> Application::shared_labels(TaskId producer,
                                                TaskId consumer) const {
  require_finalized();
  std::vector<LabelId> out;
  for (const InterCoreEdge& e : edges_) {
    if (e.producer == producer && e.consumer == consumer) {
      out.push_back(e.label);
    }
  }
  return out;
}

bool Application::is_inter_core(LabelId id) const {
  require_finalized();
  return std::any_of(edges_.begin(), edges_.end(),
                     [&](const InterCoreEdge& e) { return e.label == id; });
}

Time Application::hyperperiod() const {
  std::vector<Time> periods;
  periods.reserve(tasks_.size());
  for (const Task& t : tasks_) periods.push_back(t.period);
  return support::hyperperiod(periods);
}

void Application::require_finalized() const {
  LETDMA_ENSURE(finalized_, "call finalize() before this query");
}

void Application::require_mutable() const {
  LETDMA_ENSURE(!finalized_, "the application is finalized and immutable");
}

}  // namespace letdma::model
