// Application model (Section III): periodic tasks with implicit deadlines,
// statically partitioned onto cores, communicating through labels. Shared
// labels have a single writer and any number of readers; the inter-core
// subset (writer and reader on different cores) is what the LET-DMA
// machinery operates on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "letdma/model/platform.hpp"
#include "letdma/support/time.hpp"

namespace letdma::model {

/// Identifies a task (0-based insertion order).
struct TaskId {
  int value = -1;
  friend bool operator==(TaskId a, TaskId b) { return a.value == b.value; }
  friend auto operator<=>(TaskId a, TaskId b) { return a.value <=> b.value; }
};

/// Identifies a label (0-based insertion order).
struct LabelId {
  int value = -1;
  friend bool operator==(LabelId a, LabelId b) { return a.value == b.value; }
  friend auto operator<=>(LabelId a, LabelId b) { return a.value <=> b.value; }
};

struct Task {
  std::string name;
  Time period = 0;  // T_i; implicit deadline D_i = T_i
  Time wcet = 0;    // C_i, used by response-time analysis and the simulator
  CoreId core;      // static partition P(tau_i)
  /// Fixed priority, smaller value = higher priority; unique per core.
  int priority = 0;
  /// Data-acquisition deadline gamma_i (latest allowed readiness after
  /// release). Unset means "no constraint" (gamma_i = T_i).
  std::optional<Time> acquisition_deadline;
};

struct Label {
  std::string name;
  std::int64_t size_bytes = 0;  // sigma_l
  TaskId writer;                // single writer by model assumption
  std::vector<TaskId> readers;  // any number of readers
};

/// A producer/consumer relation over one label, with both ends on
/// different cores (the communications the DMA must carry).
struct InterCoreEdge {
  LabelId label;
  TaskId producer;
  TaskId consumer;
};

class Application {
 public:
  explicit Application(Platform platform);

  /// Adds a task; priority defaults to rate-monotonic order (assigned by
  /// finalize()) when `priority` is negative.
  TaskId add_task(std::string name, Time period, Time wcet, CoreId core,
                  int priority = -1);

  /// Adds a label written by `writer` and read by `readers` (readers on the
  /// writer's own core are allowed; they communicate by double buffering
  /// and do not generate DMA traffic).
  LabelId add_label(std::string name, std::int64_t size_bytes, TaskId writer,
                    std::vector<TaskId> readers);

  void set_acquisition_deadline(TaskId task, Time gamma);

  /// Validates the model and assigns default (rate-monotonic) priorities to
  /// tasks that have none. Must be called before the queries below; further
  /// mutation is rejected afterwards.
  void finalize();
  bool finalized() const { return finalized_; }

  const Platform& platform() const { return platform_; }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_labels() const { return static_cast<int>(labels_.size()); }
  const Task& task(TaskId id) const;
  const Label& label(LabelId id) const;
  TaskId find_task(const std::string& name) const;

  /// Tasks assigned to a core (Gamma_k), sorted by priority.
  std::vector<TaskId> tasks_on(CoreId core) const;

  /// All inter-core producer->consumer edges (the L^S pairs).
  const std::vector<InterCoreEdge>& inter_core_edges() const;

  /// Inter-core labels written by `producer` and read by `consumer`
  /// (L^S(producer, consumer)).
  std::vector<LabelId> shared_labels(TaskId producer, TaskId consumer) const;

  /// True when the label has at least one reader on another core.
  bool is_inter_core(LabelId id) const;

  /// Hyperperiod H of the full task set.
  Time hyperperiod() const;

 private:
  void require_finalized() const;
  void require_mutable() const;

  Platform platform_;
  std::vector<Task> tasks_;
  std::vector<Label> labels_;
  std::vector<InterCoreEdge> edges_;  // built by finalize()
  bool finalized_ = false;
};

}  // namespace letdma::model
