// Platform model: identical cores with private dual-ported local memories
// (scratchpads), one global memory, and a single DMA engine moving data
// between a local memory and the global memory (Section III-A of the paper).
#pragma once

#include <string>
#include <vector>

#include "letdma/support/time.hpp"

namespace letdma::model {

using support::Time;

/// Identifies a core P_k (0-based).
struct CoreId {
  int value = -1;
  friend bool operator==(CoreId a, CoreId b) { return a.value == b.value; }
  friend auto operator<=>(CoreId a, CoreId b) { return a.value <=> b.value; }
};

/// Identifies a memory: 0..N-1 are the local memories of cores 0..N-1,
/// N is the global memory M_G.
struct MemoryId {
  int value = -1;
  friend bool operator==(MemoryId a, MemoryId b) { return a.value == b.value; }
  friend auto operator<=>(MemoryId a, MemoryId b) { return a.value <=> b.value; }
};

/// DMA engine timing parameters (Section V). Defaults follow the paper's
/// experimental setup: o_DP = 3.36us (programming, from [8]), o_ISR = 10us
/// (completion interrupt), and a configurable per-byte copy cost w_c.
struct DmaParams {
  Time programming_overhead = support::us(3.36);  // o_DP
  Time isr_overhead = support::us(10);            // o_ISR
  /// w_c: nanoseconds per byte moved. Default 1 ns/B (~1 GB/s sustained),
  /// representative of scratchpad<->global transfers on AURIX-class parts.
  double copy_cost_ns_per_byte = 1.0;

  /// Total fixed overhead per transfer: lambda_O = o_DP + o_ISR.
  Time per_transfer_overhead() const {
    return programming_overhead + isr_overhead;
  }
  /// Pure copy time for `bytes` bytes (no per-transfer overhead).
  Time copy_time(std::int64_t bytes) const {
    return static_cast<Time>(copy_cost_ns_per_byte *
                             static_cast<double>(bytes));
  }
};

/// CPU-driven copy parameters used by the Giotto-CPU baseline. CPU copies
/// of global memory are slower per byte than DMA bursts (load/store pairs
/// through the crossbar); the default 4x factor follows the measurements
/// discussed in Biondi & Di Natale (RTAS 2018) on the AURIX TC275.
struct CpuCopyParams {
  double copy_cost_ns_per_byte = 4.0;
  /// Fixed per-label software overhead (function call + pointer setup).
  Time per_label_overhead = support::ns(200);

  Time copy_time(std::int64_t bytes) const {
    return per_label_overhead +
           static_cast<Time>(copy_cost_ns_per_byte *
                             static_cast<double>(bytes));
  }
};

/// The multicore platform.
class Platform {
 public:
  Platform(int num_cores, DmaParams dma = {}, CpuCopyParams cpu = {});

  int num_cores() const { return num_cores_; }
  /// Local + global.
  int num_memories() const { return num_cores_ + 1; }
  MemoryId local_memory(CoreId core) const;
  MemoryId global_memory() const { return MemoryId{num_cores_}; }
  bool is_global(MemoryId m) const { return m == global_memory(); }
  /// Core owning a local memory; invalid for the global memory.
  CoreId core_of(MemoryId m) const;

  const DmaParams& dma() const { return dma_; }
  const CpuCopyParams& cpu_copy() const { return cpu_; }

  std::string memory_name(MemoryId m) const;

 private:
  int num_cores_;
  DmaParams dma_;
  CpuCopyParams cpu_;
};

}  // namespace letdma::model
