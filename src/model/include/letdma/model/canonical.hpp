// Canonical instance forms and structural fingerprints.
//
// Millions of users mostly submit near-duplicate models: the same task
// graph with tasks/labels listed in a different order, renamed, or mapped
// onto renumbered cores. canonicalize() reduces an Application to a
// *canonical form* — a relabeling of tasks, labels and cores by structural
// sort keys such that any two isomorphic instances produce byte-identical
// serialized text — and fingerprint() hashes that text into a 128-bit key
// suitable for a solve cache.
//
// Isomorphism here means: a bijection of tasks, labels and cores that
// preserves every structural attribute (periods, WCETs, priorities,
// acquisition deadlines, label sizes, writer/reader relations, core
// assignment) and the platform timing parameters. Names are NOT
// structural; neither is insertion order.
//
// The algorithm is colour refinement (Weisfeiler–Lehman style) over the
// task/label bipartite graph with core colours folded in, followed by
// individualization when refinement alone leaves symmetric entities
// undistinguished: each member of the first ambiguous task class is
// individualized in turn and the lexicographically smallest canonical
// text wins. Branching is bounded (kMaxLeaves); instances rich enough in
// attributes — every real workload in this tree — discriminate fully in
// the refinement phase and never branch. If the bound is ever exceeded
// the result is still deterministic for a fixed input but `exact` is
// cleared, and a consumer that needs a hard guarantee (the serve cache)
// re-certifies every hit anyway, so a fingerprint collision or an inexact
// canonical form degrades to a cache miss, never to a wrong answer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "letdma/model/application.hpp"

namespace letdma::model {

/// A 128-bit structural hash of the canonical form.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex characters (hi then lo).
  std::string to_hex() const;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend auto operator<=>(const Fingerprint& a, const Fingerprint& b) {
    if (a.hi != b.hi) return a.hi <=> b.hi;
    return a.lo <=> b.lo;
  }
};

/// The canonical form of an application plus the permutations that map
/// the original instance onto it (original index -> canonical index).
/// The canonical application renames tasks to t000.. and labels to l000..
/// in canonical order, renumbers cores, and keeps every structural
/// attribute; two isomorphic inputs yield byte-identical `text`.
struct Canonicalization {
  std::unique_ptr<Application> app;  // canonical, finalized
  std::string text;                  // write_application(*app)
  Fingerprint fingerprint;
  std::vector<int> task_map;   // task_map[orig]  = canonical task index
  std::vector<int> label_map;  // label_map[orig] = canonical label index
  std::vector<int> core_map;   // core_map[orig]  = canonical core index
  /// False only when the individualization branch budget was exceeded
  /// (pathologically symmetric instances); the form is then deterministic
  /// per input but not guaranteed isomorphism-invariant.
  bool exact = true;
};

/// Computes the canonical form. The input must be finalized.
Canonicalization canonicalize(const Application& app);

/// Convenience: canonical fingerprint without keeping the form.
Fingerprint fingerprint_of(const Application& app);

/// Inverse of a canonicalization permutation: out[canonical] = original.
std::vector<int> invert_permutation(const std::vector<int>& map);

/// 128-bit hash of arbitrary bytes (the function fingerprints use);
/// exposed for cache keys derived from canonical text + request knobs.
Fingerprint fingerprint_bytes(const std::string& bytes);

/// Builds the isomorphic instance obtained by relabeling `app` through the
/// given permutations (each maps original index -> new index; empty = id).
/// Tasks and labels are inserted in new-index order under fresh names, so
/// insertion order, names and core numbering all change while the
/// structure is preserved — the adversarial input for fingerprint tests
/// and the near-duplicate generator of the serve replay bench.
std::unique_ptr<Application> permute_application(
    const Application& app, const std::vector<int>& task_perm = {},
    const std::vector<int>& label_perm = {},
    const std::vector<int>& core_perm = {});

}  // namespace letdma::model
