// Application diffs for incremental re-scheduling.
//
// The serve layer and the incremental scheduler both need to answer two
// questions about a pair of instances: "what changed?" (so a repair can
// re-seed only the LET groups the change touches) and "how far apart are
// they?" (so a cache can decide whether a structurally close instance is
// worth warm-starting from). ApplicationDiff answers both.
//
// Matching is by task/label *name*: the diff of two finalized applications
// maps every surviving entity old-index -> new-index, records removed
// entities as -1, and carries the full payload of every added or changed
// entity so that apply_diff(before, diff(before, after)) rebuilds `after`
// byte-identically under write_application. A renamed entity is therefore
// removed+added — names are the identity of the plain diff. When a
// name-insensitive notion is needed (the near-miss cache compares
// instances from different tenants), structural_distance() diffs the
// *canonical* forms instead: canonical names are positional (t000..,
// l000..), so name matching there is canonical-index matching and the
// result is isomorphism-aware (an upper bound on the true edit distance,
// since an insertion can shift canonical order).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "letdma/model/application.hpp"

namespace letdma::model {

/// A task that exists in `after` and is new or differs from its
/// name-matched counterpart in `before`. Carries the full payload so
/// apply_diff needs nothing else.
struct TaskEdit {
  int index = -1;  // index in `after`
  Task task;       // complete after-side payload
  bool added = false;
};

/// A label that exists in `after` and is new or differs (size, writer or
/// reader set) from its name-matched counterpart. Endpoints are after-side
/// task indices.
struct LabelEdit {
  int index = -1;  // index in `after`
  std::string name;
  std::int64_t size_bytes = 0;
  int writer = -1;
  std::vector<int> readers;
  bool added = false;
};

struct ApplicationDiff {
  /// old index -> new index; -1 when the entity was removed.
  std::vector<int> task_map;
  std::vector<int> label_map;
  int new_num_tasks = 0;
  int new_num_labels = 0;
  /// Added or changed entities, sorted by after-side index.
  std::vector<TaskEdit> task_edits;
  std::vector<LabelEdit> label_edits;
  /// Set only when the platform parameters differ.
  std::optional<Platform> platform;

  int tasks_added() const;
  int tasks_removed() const;
  int tasks_changed() const;
  int labels_added() const;
  int labels_removed() const;
  int labels_changed() const;
  /// True when the diff is the identity (apply_diff == copy).
  bool empty() const;
  /// Human-readable one-liner, e.g. "+1 task, -2 labels, 1 label changed".
  std::string summary() const;
};

/// Computes the name-matched diff of two finalized applications.
ApplicationDiff diff(const Application& before, const Application& after);

/// Rebuilds the after-side application: apply_diff(a, diff(a, b)) equals b
/// byte-identically under write_application. The result is finalized.
std::unique_ptr<Application> apply_diff(const Application& before,
                                        const ApplicationDiff& d);

/// Weighted change count: adds/removes weigh 1, attribute changes 0.5, a
/// platform change 4. Zero iff the diff is empty.
double magnitude(const ApplicationDiff& d);

/// Isomorphism-aware distance in [0, 1]: magnitude of the diff between the
/// two canonical forms, normalized by the larger instance size
/// (num_tasks + num_labels). 0 means isomorphic; small values mean a few
/// entities differ. Upper bound on the true structural edit distance.
double structural_distance(const Application& a, const Application& b);

/// Same, but on already-computed canonical applications (the serve cache
/// holds canonical forms and should not re-canonicalize per candidate).
double canonical_distance(const Application& canon_a,
                          const Application& canon_b);

}  // namespace letdma::model
