// Task-mapping utilities.
//
// The paper takes the partition as input (its case study uses the mapping
// of the WATERS 2019 challenge solution). These helpers make the mapping
// explorable: clone an application under a different core assignment, and
// search for an assignment that minimizes the inter-core communication
// volume subject to a per-core utilization cap — the quantity that drives
// every DMA cost in the protocol (cf. Pazzaglia et al., RTSS 2019, for the
// full functional-deployment problem).
#pragma once

#include <memory>
#include <vector>

#include "letdma/model/application.hpp"

namespace letdma::model {

/// Rebuilds `app` with tasks assigned to `core_of_task` (indexed by
/// TaskId::value; values in [0, num_cores)). Priorities are re-derived
/// rate-monotonically per core; labels and deadlines are preserved.
std::unique_ptr<Application> clone_with_mapping(
    const Application& app, const std::vector<int>& core_of_task);

/// Bytes crossing cores per hyperperiod-synchronous instant: for every
/// label whose writer and some reader sit on different cores, one write
/// plus one read per remote reader core... measured as the total payload
/// the DMA must carry at s0 (the paper's dominating cost term).
std::int64_t inter_core_bytes(const Application& app);

struct MappingSearchOptions {
  /// Per-core utilization cap enforced during the search.
  double max_core_utilization = 0.8;
  /// Accepted-move limit.
  int max_moves = 200;
};

struct MappingSearchResult {
  std::vector<int> core_of_task;
  std::int64_t bytes = 0;   // inter-core payload of the result
  int moves = 0;            // accepted reassignments
};

/// Greedy descent from the current mapping: repeatedly relocate the task
/// whose move yields the largest inter-core byte reduction while keeping
/// every core under the utilization cap. Deterministic.
MappingSearchResult minimize_inter_core_traffic(
    const Application& app, MappingSearchOptions options = {});

}  // namespace letdma::model
