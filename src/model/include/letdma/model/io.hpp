// Plain-text serialization of applications.
//
// Line-oriented format (order: platform, tasks, labels; '#' comments):
//
//   platform cores=2 odp_ns=3360 oisr_ns=10000 wc=1.0 cpu_wc=4.0 cpu_oh_ns=200
//   task name=tau1 period_ns=10000000 wcet_ns=2000000 core=0 [gamma_ns=...]
//   label name=lA bytes=2000 writer=tau1 readers=tau2,tau4
//
// write_application() emits this format; read_application() parses it and
// returns a finalized application. Both round-trip exactly (ns-resolution
// times, byte sizes). Parsing is strict: unknown directives, missing keys
// and dangling references throw PreconditionError with a line number.
#pragma once

#include <memory>
#include <string>

#include "letdma/model/application.hpp"

namespace letdma::model {

/// Serializes a finalized application.
std::string write_application(const Application& app);

/// Parses the format above; throws support::PreconditionError with the
/// offending line number on malformed input.
std::unique_ptr<Application> read_application(const std::string& text);

}  // namespace letdma::model
