// Synthetic application generator for property tests and scaling sweeps.
//
// Periods are drawn from an automotive-style set, per-task utilizations
// from UUniFast (Bini & Buttazzo), tasks are mapped round-robin with a
// random offset, and labels connect random producer/consumer pairs. The
// generator is fully deterministic in its seed.
#pragma once

#include <memory>
#include <vector>

#include "letdma/model/application.hpp"

namespace letdma::model {

struct GeneratorOptions {
  int num_cores = 4;
  int num_tasks = 8;
  int num_labels = 10;
  /// Total task utilization, split across tasks by UUniFast.
  double total_utilization = 0.4;
  /// Candidate periods; empty selects the automotive default
  /// {1, 2, 5, 10, 20, 50, 100, 200} ms.
  std::vector<support::Time> period_choices;
  std::int64_t min_label_bytes = 64;
  std::int64_t max_label_bytes = 65536;
  /// Max readers per label (at least 1).
  int max_readers = 2;
  std::uint64_t seed = 1;
};

/// Generates a finalized application. Throws PreconditionError on
/// inconsistent options. The task set is NOT guaranteed schedulable; use
/// analysis::analyze() when that matters.
std::unique_ptr<Application> generate_application(GeneratorOptions options);

}  // namespace letdma::model
