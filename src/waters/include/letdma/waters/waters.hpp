// WATERS 2019 Industrial Challenge case study (Bosch autonomous-driving
// application) — the workload evaluated in Section VII.
//
// The original challenge ships as an Amalthea model which is not available
// offline; this module reconstructs the nine processing tasks referenced by
// the paper's Fig. 2 (LID, DASM, CAN, EKF, PLAN, SFM, LOC, LDET, DET), the
// public challenge periods, a sensing -> fusion -> planning -> actuation
// dependency structure, and a four-core partition in the spirit of the
// challenge solution by Casini et al. (WATERS 2019) [16]. Label sizes are
// representative (lidar point cloud dominating, small CAN/command frames).
// The ratios reported by Fig. 2 depend on this structure, not on the exact
// byte counts; DESIGN.md documents the substitution.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "letdma/model/application.hpp"

namespace letdma::waters {

struct WatersOptions {
  /// Cores of the target platform (the challenge solution spreads the
  /// pipeline over four cores).
  int num_cores = 4;
  /// Scales every label size (sensitivity experiments).
  double label_scale = 1.0;
  /// DMA/CPU timing; defaults follow the paper (o_DP = 3.36us, o_ISR = 10us).
  model::DmaParams dma{};
  model::CpuCopyParams cpu{};
};

/// Task names in the order used by the paper's Fig. 2 x-axis.
const std::vector<std::string>& task_names();

/// Builds the finalized case-study application.
std::unique_ptr<model::Application> make_waters_app(WatersOptions options = {});

}  // namespace letdma::waters
