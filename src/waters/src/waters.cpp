#include "letdma/waters/waters.hpp"

#include "letdma/support/error.hpp"

namespace letdma::waters {

using model::Application;
using model::CoreId;
using model::Platform;
using model::TaskId;
using support::ms;

const std::vector<std::string>& task_names() {
  static const std::vector<std::string> names = {
      "LID", "DASM", "CAN", "EKF", "PLAN", "SFM", "LOC", "LDET", "DET"};
  return names;
}

std::unique_ptr<Application> make_waters_app(WatersOptions options) {
  LETDMA_ENSURE(options.num_cores >= 2,
                "the case study needs at least two cores");
  LETDMA_ENSURE(options.label_scale > 0, "label_scale must be positive");
  auto app = std::make_unique<Application>(
      Platform(options.num_cores, options.dma, options.cpu));

  // Periods from the public challenge description; WCETs sized for modest
  // per-core utilization (the challenge's heavy DNN work runs on the GPU,
  // which is outside the scope of the paper's protocol). The default
  // 4-core mapping follows the pipeline split of the challenge solution;
  // 2- and 3-core mappings fold the pipeline stages (sensing /
  // perception / planning+actuation) onto fewer cores.
  //                       name   T        C      core on 4 / 3 / 2
  const struct {
    const char* name;
    support::Time period;
    support::Time wcet;
    int core4, core3, core2;
  } kTasks[] = {
      {"LID", ms(33), ms(6), 0, 0, 0},     // lidar grabber
      {"DASM", ms(5), ms(1), 3, 2, 1},     // steering/actuation
      {"CAN", ms(10), ms(1), 3, 2, 1},     // CAN polling
      {"EKF", ms(15), ms(2), 2, 2, 1},     // sensor fusion
      {"PLAN", ms(15), ms(4), 2, 2, 1},    // trajectory planner
      {"SFM", ms(33), ms(7), 0, 0, 0},     // structure from motion
      {"LOC", ms(400), ms(60), 1, 1, 0},   // localization
      {"LDET", ms(66), ms(10), 1, 1, 0},   // lane detection
      {"DET", ms(200), ms(30), 1, 1, 0},   // object detection
  };
  std::vector<TaskId> id;
  for (const auto& t : kTasks) {
    int core = t.core4;
    if (options.num_cores == 3) core = t.core3;
    if (options.num_cores == 2) core = t.core2;
    id.push_back(app->add_task(t.name, t.period, t.wcet,
                               CoreId{core % options.num_cores}));
  }
  auto tid = [&](const char* name) {
    for (std::size_t i = 0; i < std::size(kTasks); ++i) {
      if (std::string(kTasks[i].name) == name) return id[i];
    }
    throw support::PreconditionError("unknown case-study task");
  };

  // Labels: sensing -> fusion -> planning -> actuation.
  const auto bytes = [&](std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<double>(b) *
                                     options.label_scale);
  };
  //   producer -> consumers                 size
  app->add_label("lidar_points", bytes(262144), tid("LID"),
                 {tid("LOC"), tid("DET")});                    // 256 KiB
  app->add_label("can_status", bytes(1024), tid("CAN"),
                 {tid("EKF"), tid("DASM")});                   // 1 KiB
  app->add_label("pose", bytes(2048), tid("LOC"),
                 {tid("EKF"), tid("PLAN")});                   // 2 KiB
  app->add_label("state_est", bytes(4096), tid("EKF"), {tid("PLAN")});
  app->add_label("sfm_depth", bytes(65536), tid("SFM"),
                 {tid("LDET"), tid("DET")});                   // 64 KiB
  app->add_label("objects", bytes(16384), tid("DET"), {tid("PLAN")});
  app->add_label("lanes", bytes(8192), tid("LDET"), {tid("PLAN")});
  app->add_label("trajectory", bytes(8192), tid("PLAN"), {tid("DASM")});
  app->add_label("commands", bytes(512), tid("DASM"), {tid("CAN")});

  app->finalize();
  return app;
}

}  // namespace letdma::waters
