#include "letdma/baseline/giotto.hpp"

#include <algorithm>

#include "letdma/support/error.hpp"

namespace letdma::baseline {
namespace {

using let::Communication;
using let::Direction;
using let::LetComms;
using let::MemoryLayout;
using let::ScheduleResult;

/// Canonical layout: every memory ordered by its required_slots order.
MemoryLayout canonical_layout(const model::Application& app) {
  MemoryLayout layout(app);
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    const model::MemoryId mem{m};
    auto slots = MemoryLayout::required_slots(app, mem);
    if (!slots.empty()) layout.set_order(mem, std::move(slots));
  }
  return layout;
}

/// Giotto s0 transfer order over a given layout: all writes then all reads;
/// within each phase the communications of one local memory are emitted
/// together and split into transfers per `one_per_comm`.
std::vector<let::DmaTransfer> giotto_s0_order(const LetComms& comms,
                                              const MemoryLayout& layout,
                                              bool one_per_comm) {
  const model::Application& app = comms.app();
  std::vector<let::DmaTransfer> out;
  for (const Direction dir : {Direction::kWrite, Direction::kRead}) {
    for (int m = 0; m < app.platform().num_cores(); ++m) {
      std::vector<Communication> batch;
      for (const Communication& c : comms.comms_at_s0()) {
        if (c.dir == dir &&
            let::local_memory_of(app, c) == model::MemoryId{m}) {
          batch.push_back(c);
        }
      }
      if (batch.empty()) continue;
      if (one_per_comm) {
        for (const Communication& c : batch) {
          out.push_back(let::make_transfer(layout, {c}));
        }
      } else {
        for (let::DmaTransfer& t :
             let::split_into_transfers(layout, std::move(batch))) {
          out.push_back(std::move(t));
        }
      }
    }
  }
  return out;
}

ScheduleResult build(const LetComms& comms, MemoryLayout layout,
                     bool one_per_comm) {
  std::vector<let::DmaTransfer> s0 =
      giotto_s0_order(comms, layout, one_per_comm);
  let::TransferSchedule sched = let::derive_schedule(comms, layout, s0);
  return {std::move(layout), std::move(s0), std::move(sched)};
}

}  // namespace

ScheduleResult giotto_dma_a(const LetComms& comms) {
  return build(comms, canonical_layout(comms.app()), /*one_per_comm=*/true);
}

ScheduleResult giotto_dma_b(const LetComms& comms,
                            const MemoryLayout& optimized) {
  return build(comms, optimized, /*one_per_comm=*/false);
}

std::vector<Time> giotto_cpu_latencies(const LetComms& comms) {
  const model::Application& app = comms.app();
  const let::LatencyModel lat(app.platform());
  std::vector<Time> out(static_cast<std::size_t>(app.num_tasks()), 0);
  for (const Time t : comms.required_instants()) {
    const Time total = lat.cpu_copy_duration(app, comms.comms_at(t));
    for (int i = 0; i < app.num_tasks(); ++i) {
      if (t % app.task(model::TaskId{i}).period == 0) {
        out[static_cast<std::size_t>(i)] =
            std::max(out[static_cast<std::size_t>(i)], total);
      }
    }
  }
  return out;
}

std::vector<Time> giotto_dma_latencies(const LetComms& comms,
                                       const ScheduleResult& sched) {
  return let::worst_case_latencies(comms, sched.schedule,
                                   let::ReadinessSemantics::kGiotto);
}

}  // namespace letdma::baseline
