// The three comparison approaches of Section VII:
//
//   Giotto-CPU   — LET copies performed sequentially by the CPUs in the
//                  original Giotto order (all writes, then all reads); every
//                  task released at an instant waits for all of them.
//   Giotto-DMA-A — DMA-driven copies in Giotto order with NO knowledge of
//                  the memory layout: one DMA transfer per communication,
//                  each paying the full per-transfer overhead.
//   Giotto-DMA-B — DMA-driven copies in Giotto order, but grouping
//                  contiguous runs of an *optimized* memory layout (the one
//                  found by the MILP) into single transfers.
//
// All three keep the Giotto readiness semantics: a task is ready only when
// every communication of the instant has completed.
#pragma once

#include <vector>

#include "letdma/let/greedy.hpp"
#include "letdma/let/latency.hpp"

namespace letdma::baseline {

using support::Time;

/// Giotto-DMA-A: canonical layout, one transfer per communication, writes
/// before reads.
let::ScheduleResult giotto_dma_a(const let::LetComms& comms);

/// Giotto-DMA-B: Giotto order over `optimized` (contiguous runs merge).
let::ScheduleResult giotto_dma_b(const let::LetComms& comms,
                                 const let::MemoryLayout& optimized);

/// Worst-case data-acquisition latency per task (indexed by TaskId::value)
/// under Giotto-CPU: the CPU copies every communication of the instant
/// back-to-back and all tasks released there wait for the total.
std::vector<Time> giotto_cpu_latencies(const let::LetComms& comms);

/// Worst-case latency per task (indexed by TaskId::value) for a Giotto-DMA
/// schedule (readiness only after the whole instant).
std::vector<Time> giotto_dma_latencies(const let::LetComms& comms,
                                       const let::ScheduleResult& sched);

}  // namespace letdma::baseline
