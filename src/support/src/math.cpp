#include "letdma/support/math.hpp"

#include <limits>

#include "letdma/support/error.hpp"

namespace letdma::support {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const std::int64_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw OverflowError("64-bit multiplication overflow: " +
                        std::to_string(a) + " * " + std::to_string(b));
  }
  return out;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw OverflowError("64-bit addition overflow: " + std::to_string(a) +
                        " + " + std::to_string(b));
  }
  return out;
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  LETDMA_ENSURE(a >= 0 && b >= 0, "lcm64 requires non-negative arguments");
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a, b);
  return checked_mul(a / g, b);
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  LETDMA_ENSURE(b > 0, "floor_div requires positive divisor");
  std::int64_t q = a / b;
  if ((a % b != 0) && (a < 0)) --q;
  return q;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  LETDMA_ENSURE(b > 0, "ceil_div requires positive divisor");
  std::int64_t q = a / b;
  if ((a % b != 0) && (a > 0)) ++q;
  return q;
}

}  // namespace letdma::support
