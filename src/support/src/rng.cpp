#include "letdma/support/rng.hpp"

#include "letdma/support/error.hpp"

namespace letdma::support {

std::uint64_t Rng::next() {
  // splitmix64 (Sebastiano Vigna, public domain).
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LETDMA_ENSURE(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::uniform() {
  // 53 random mantissa bits in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace letdma::support
