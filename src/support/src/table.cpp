#include "letdma/support/table.hpp"

#include <cstdio>
#include <sstream>

#include "letdma/support/error.hpp"

namespace letdma::support {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LETDMA_ENSURE(!headers_.empty(), "a table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  LETDMA_ENSURE(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace letdma::support
