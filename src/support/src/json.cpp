#include "letdma/support/json.hpp"

#include <cstdlib>
#include <cstring>

namespace letdma::support {
namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    pos_ = 0;
    if (!value(out, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::string* error) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) {
      *error = "bad literal at offset " + std::to_string(pos_);
      return false;
    }
    pos_ += n;
    return true;
  }

  bool string(std::string* out, std::string* error) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      *error = "expected string at offset " + std::to_string(pos_);
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            *error = "truncated \\u escape";
            return false;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              *error = "bad \\u escape";
              return false;
            }
          }
          // UTF-8 encode the basic-plane code point (the streams only
          // ever emit \u00XX control escapes; surrogates pass through
          // as replacement-free three-byte forms).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          *error = "bad escape character";
          return false;
      }
    }
    *error = "unterminated string";
    return false;
  }

  bool value(JsonValue* out, std::string* error) {
    skip_ws();
    if (pos_ >= text_.size()) {
      *error = "unexpected end of input";
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      out->object = std::make_shared<JsonObject>();
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!string(&key, error)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          *error = "expected ':' at offset " + std::to_string(pos_);
          return false;
        }
        ++pos_;
        JsonValue v;
        if (!value(&v, error)) return false;
        out->object->emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        *error = "expected ',' or '}' at offset " + std::to_string(pos_);
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      out->array = std::make_shared<JsonArray>();
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!value(&v, error)) return false;
        out->array->push_back(std::move(v));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        *error = "expected ',' or ']' at offset " + std::to_string(pos_);
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return string(&out->text, error);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return literal("true", error);
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return literal("false", error);
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return literal("null", error);
    }
    // Number: delegate to strtod, then verify it consumed a JSON-shaped
    // token (strtod accepts hex/inf which JSON does not; the streams never
    // emit those, so a simple charset check is enough).
    char* end = nullptr;
    const double num = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) {
      *error = "unexpected character at offset " + std::to_string(pos_);
      return false;
    }
    for (const char* p = text_.c_str() + pos_; p < end; ++p) {
      if ((*p >= '0' && *p <= '9') || *p == '-' || *p == '+' || *p == '.' ||
          *p == 'e' || *p == 'E') {
        continue;
      }
      *error = "bad number at offset " + std::to_string(pos_);
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = num;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : *object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::str_or(const std::string& key,
                              std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->text
                                                  : std::move(fallback);
}

bool JsonValue::num_of(const std::string& key, double* out) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->kind != Kind::kNumber) return false;
  *out = v->number;
  return true;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->boolean : fallback;
}

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  return JsonParser(text).parse(out, error);
}

}  // namespace letdma::support
