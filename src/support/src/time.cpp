#include "letdma/support/time.hpp"

#include <cmath>
#include <cstdio>

#include "letdma/support/error.hpp"
#include "letdma/support/math.hpp"

namespace letdma::support {

std::string format_time(Time t) {
  const bool neg = t < 0;
  const double abs_ns = std::abs(static_cast<double>(t));
  char buf[64];
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%s%.6gs", neg ? "-" : "", abs_ns / 1e9);
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%s%.6gms", neg ? "-" : "", abs_ns / 1e6);
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%s%.6gus", neg ? "-" : "", abs_ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%s%.6gns", neg ? "-" : "", abs_ns);
  }
  return buf;
}

Time hyperperiod(const std::vector<Time>& periods) {
  LETDMA_ENSURE(!periods.empty(), "hyperperiod of an empty period list");
  Time h = 1;
  for (const Time p : periods) {
    LETDMA_ENSURE(p > 0, "hyperperiod requires positive periods");
    h = lcm64(h, p);
  }
  return h;
}

}  // namespace letdma::support
