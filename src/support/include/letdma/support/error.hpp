// Error handling primitives shared by all letdma libraries.
//
// The library reports violated preconditions and model inconsistencies by
// throwing `letdma::support::Error` (a std::runtime_error). Numerical or
// capacity failures in the MILP substrate use the derived types below so
// callers can distinguish "your model is wrong" from "the solver gave up".
#pragma once

#include <stdexcept>
#include <string>

namespace letdma::support {

/// Base class for all errors thrown by letdma.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad argument, inconsistent
/// model, out-of-range index).
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An arithmetic operation would overflow (e.g. an LCM of periods that does
/// not fit in 64-bit nanoseconds).
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// Malformed external input (application / schedule text). Carries the
/// 1-based offending line so tools can point at it; derives from
/// PreconditionError so callers that treat all bad input uniformly keep
/// working. Parsers guarantee this is the ONLY error family escaping them
/// on malformed, truncated, or out-of-range input — never UB and never a
/// partially applied parse.
class ParseError : public PreconditionError {
 public:
  ParseError(int line, const std::string& what)
      : PreconditionError("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  /// 1-based line of the offending input (0 = whole document).
  int line() const { return line_; }

 private:
  int line_;
};

namespace detail {
[[noreturn]] inline void ensure_failed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace letdma::support

/// Precondition check that is always active (models are small; the cost is
/// negligible next to solving them). Throws PreconditionError on failure.
#define LETDMA_ENSURE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::letdma::support::detail::ensure_failed(#expr, __FILE__, __LINE__, \
                                               (msg));                   \
    }                                                                    \
  } while (false)
