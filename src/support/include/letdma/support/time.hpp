// Time representation used across letdma.
//
// All times and durations are 64-bit signed *nanoseconds*. Integer
// nanoseconds make hyperperiod (LCM) arithmetic exact, which the LET
// machinery depends on: release instants, H, and H*_i must be computed
// without rounding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace letdma::support {

/// A point in time or a duration, in nanoseconds.
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

/// Convenience constructors (values may be fractional for us/ms).
constexpr Time ns(std::int64_t v) { return v; }
constexpr Time us(double v) { return static_cast<Time>(v * 1e3); }
constexpr Time ms(double v) { return static_cast<Time>(v * 1e6); }

constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }

/// Human-readable rendering with an automatically chosen unit,
/// e.g. "3.36us", "15ms".
std::string format_time(Time t);

/// Exact LCM of a non-empty list of positive durations.
/// Throws OverflowError if the result does not fit in Time,
/// PreconditionError if the list is empty or contains non-positives.
Time hyperperiod(const std::vector<Time>& periods);

}  // namespace letdma::support
