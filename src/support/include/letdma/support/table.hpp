// Minimal fixed-width text table writer used by the benchmark harnesses to
// print paper-style tables (e.g. Table I) to stdout.
#pragma once

#include <string>
#include <vector>

namespace letdma::support {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a header separator.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (locale-independent).
std::string fmt_double(double v, int decimals = 3);

}  // namespace letdma::support
