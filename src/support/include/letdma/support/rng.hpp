// Deterministic pseudo-random generator for synthetic workload generation.
//
// A small splitmix64-based generator is used instead of <random> engines so
// that synthetic test/bench workloads are reproducible across standard
// library implementations.
#pragma once

#include <cstdint>

namespace letdma::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

 private:
  std::uint64_t state_;
};

}  // namespace letdma::support
