// Overflow-checked integer helpers used for hyperperiod and release-time
// arithmetic.
#pragma once

#include <cstdint>

namespace letdma::support {

/// Greatest common divisor; gcd(0, 0) == 0.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Least common multiple of non-negative values.
/// Throws OverflowError when the result exceeds int64.
std::int64_t lcm64(std::int64_t a, std::int64_t b);

/// a * b with overflow check (throws OverflowError).
std::int64_t checked_mul(std::int64_t a, std::int64_t b);

/// a + b with overflow check (throws OverflowError).
std::int64_t checked_add(std::int64_t a, std::int64_t b);

/// floor(a / b) for b > 0, correct for negative a.
std::int64_t floor_div(std::int64_t a, std::int64_t b);

/// ceil(a / b) for b > 0, correct for negative a.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

}  // namespace letdma::support
