// Minimal JSON value + recursive-descent parser.
//
// One JSON reader for the whole tree: letdma_report loads the bench/obs
// JSONL streams and committed baselines through it, and letdma::serve
// parses request envelopes with it. The parser accepts any standard JSON
// document (objects, arrays, strings with escapes incl. \uXXXX, numbers,
// booleans, null) and reports the byte offset of the first error instead
// of throwing — callers decide whether a malformed line is fatal.
//
// Writing helpers live in letdma::obs::json; this header is read-only on
// purpose so the base support library stays dependency-free.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace letdma::support {

struct JsonValue;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

/// A parsed JSON value. Objects preserve key order (the streams are
/// machine-written and key order carries no meaning, but stable iteration
/// keeps renderings deterministic); duplicate keys are kept as written and
/// find() returns the first.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;

  /// First value under `key`; null for non-objects and absent keys.
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// String value under `key`, or `fallback` when absent / not a string.
  std::string str_or(const std::string& key, std::string fallback) const;

  /// Reads a numeric field into *out; false when absent / not a number.
  bool num_of(const std::string& key, double* out) const;

  /// Boolean field with a default for absent / non-boolean values.
  bool bool_or(const std::string& key, bool fallback) const;
};

/// Parses one complete JSON document (trailing content is an error). On
/// failure returns false and sets *error to a message naming the byte
/// offset; *out is left in an unspecified state.
bool parse_json(const std::string& text, JsonValue* out, std::string* error);

}  // namespace letdma::support
