#include "letdma/milp/solver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "letdma/guard/faults.hpp"
#include "letdma/milp/presolve.hpp"
#include "letdma/obs/flight.hpp"
#include "letdma/obs/histogram.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/obs/sampler.hpp"
#include "letdma/support/error.hpp"

namespace letdma::milp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

/// A branch-and-bound node stores only its bound change relative to the
/// parent; full bound vectors are materialized on demand by walking the
/// parent chain.
struct Node {
  std::shared_ptr<const Node> parent;
  int var = -1;      // changed variable (-1 for the root)
  double lb = 0.0;   // new bounds for `var`
  double ub = 0.0;
  double bound;      // parent relaxation value (internal minimize sense)
  int depth = 0;
  // Branching bookkeeping for pseudocost updates.
  double frac = 0.0;    // fractional part of `var` at the parent
  bool is_down = false; // this node is the floor-side child
};

struct QueueEntry {
  std::shared_ptr<const Node> node;
};

struct BestBoundOrder {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.node->bound != b.node->bound) return a.node->bound > b.node->bound;
    return a.node->depth < b.node->depth;  // on ties, dive (DFS-like)
  }
};

using OpenQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, BestBoundOrder>;

/// Pseudocosts: per variable, average relaxation degradation observed per
/// unit of fractionality when branching down/up. Guides later branching
/// decisions toward variables that actually move the bound. Workers keep
/// private tables in parallel mode (a stale table only degrades branching
/// quality, never correctness).
struct Pseudocost {
  double down_sum = 0, up_sum = 0;
  int down_n = 0, up_n = 0;
};

const Pseudocost& pseudo_at(const std::vector<Pseudocost>& pseudo, int var) {
  static const Pseudocost kEmpty;
  if (var < 0 || var >= static_cast<int>(pseudo.size())) return kEmpty;
  return pseudo[static_cast<std::size_t>(var)];
}

/// Feeds the pseudocost of the branching that created `node`, observed to
/// relax to `node_obj`.
void feed_pseudocost(std::vector<Pseudocost>& pseudo, const Node& node,
                     double node_obj, double int_tol) {
  if (node.var < 0 || node.frac <= int_tol || node.bound == -kInf) return;
  const double degradation = std::max(0.0, node_obj - node.bound) /
                             (node.is_down ? node.frac : (1.0 - node.frac));
  if (node.var >= static_cast<int>(pseudo.size())) {
    pseudo.resize(static_cast<std::size_t>(node.var) + 1);
  }
  Pseudocost& pc = pseudo[static_cast<std::size_t>(node.var)];
  if (node.is_down) {
    pc.down_sum += degradation;
    pc.down_n += 1;
  } else {
    pc.up_sum += degradation;
    pc.up_n += 1;
  }
}

struct BranchPick {
  int var = -1;       // -1: the relaxation is integral
  double frac = 0.0;  // fractional part of `var`
};

obs::Histogram& node_lp_hist() {
  static obs::Histogram h("milp.node_lp_us");
  return h;
}

/// Runs one LP solve, timing it into milp.node_lp_us when `sampled`.
/// Callers sample every 16th node: at ~400k nodes/sec two clock reads per
/// node would be measurable, one per 16 is not, and the percentiles are
/// statistically identical.
template <typename Fn>
LpResult timed_lp(bool sampled, Fn&& fn) {
  if (!sampled) return fn();
  const auto t0 = Clock::now();
  LpResult r = fn();
  node_lp_hist().record(
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
  return r;
}

/// Picks the branching variable over the first `n` variables of `x`:
/// pseudocost product score, falling back to most-fractional while no
/// history exists.
BranchPick pick_branch(const Model& model, const std::vector<double>& x,
                       int n, const std::vector<Pseudocost>& pseudo,
                       double int_tol) {
  BranchPick out;
  double best_score = -1.0;
  for (int j = 0; j < n; ++j) {
    if (model.var(j).type == VarType::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= int_tol) continue;
    const Pseudocost& pc = pseudo_at(pseudo, j);
    const double down_rate = pc.down_n > 0 ? pc.down_sum / pc.down_n : 1.0;
    const double up_rate = pc.up_n > 0 ? pc.up_sum / pc.up_n : 1.0;
    const double down_est = down_rate * frac;
    const double up_est = up_rate * (1.0 - frac);
    // Product rule with the fractionality as a tiebreaker.
    const double score =
        std::max(down_est, 1e-8) * std::max(up_est, 1e-8) + 1e-3 * dist;
    if (score > best_score) {
      best_score = score;
      out.var = j;
      out.frac = frac;
    }
  }
  return out;
}

/// Snaps the integer variables of `x` exactly (first min(n, |x|) entries).
void snap_integral(const Model& model, std::vector<double>& x, int n) {
  const int m = std::min(n, static_cast<int>(x.size()));
  for (int j = 0; j < m; ++j) {
    if (model.var(j).type != VarType::kContinuous) {
      x[static_cast<std::size_t>(j)] =
          std::round(x[static_cast<std::size_t>(j)]);
    }
  }
}

/// Materializes the bound vectors for `node`: model bounds, tightened by
/// the root presolve, intersected with the node's branching chain. Bounds
/// are rebuilt from the model each time because lazy callbacks may append
/// variables (and rows) mid-solve; node chains only ever reference
/// variables that existed when the node was created.
void intersect_node_bounds(const Model& model, const MilpOptions& options,
                           const PresolveResult& presolved, const Node& node,
                           std::vector<double>& lb, std::vector<double>& ub) {
  const int n = model.num_vars();
  lb.resize(static_cast<std::size_t>(n));
  ub.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    lb[static_cast<std::size_t>(j)] = model.var(j).lb;
    ub[static_cast<std::size_t>(j)] = model.var(j).ub;
  }
  if (options.presolve && !presolved.infeasible) {
    const int np = static_cast<int>(presolved.lb.size());
    for (int j = 0; j < std::min(n, np); ++j) {
      lb[static_cast<std::size_t>(j)] =
          std::max(lb[static_cast<std::size_t>(j)],
                   presolved.lb[static_cast<std::size_t>(j)]);
      ub[static_cast<std::size_t>(j)] =
          std::min(ub[static_cast<std::size_t>(j)],
                   presolved.ub[static_cast<std::size_t>(j)]);
    }
  }
  // Apply changes root->leaf so later (deeper) changes win. Changes only
  // tighten, so applying leaf-first with max/min is equivalent; we walk
  // the chain and intersect.
  for (const Node* p = &node; p != nullptr; p = p->parent.get()) {
    if (p->var < 0) continue;
    lb[static_cast<std::size_t>(p->var)] =
        std::max(lb[static_cast<std::size_t>(p->var)], p->lb);
    ub[static_cast<std::size_t>(p->var)] =
        std::min(ub[static_cast<std::size_t>(p->var)], p->ub);
  }
}

int resolve_threads(int requested) {
  if (requested > 0) return std::min(requested, 256);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(std::min(hc, 64u));
}

/// The wall-clock deadline for a solve (clamped so absurd limits cannot
/// overflow the steady_clock representation).
Clock::time_point solve_deadline(Clock::time_point t0, double limit_sec) {
  const double capped = std::clamp(limit_sec, 0.0, 1.0e9);
  return t0 + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(capped));
}

/// Injected kStall sleep, clamped to the solve deadline so short time
/// limits are not quantized by the stall duration (the node loop checks
/// the deadline right after).
void stall_sleep(Clock::time_point deadline) {
  const Clock::time_point cap = Clock::now() + std::chrono::milliseconds(20);
  std::this_thread::sleep_until(std::min(cap, deadline));
}

/// A persistent pool for deterministic epochs: run(count, fn) executes
/// fn(i, slot) for i in [0, count), task i statically assigned to slot
/// i % workers so per-worker attribution is reproducible. Blocks until the
/// batch drains; rethrows the first (lowest-slot) captured exception.
class TaskPool {
 public:
  explicit TaskPool(int workers)
      : workers_(workers), errors_(static_cast<std::size_t>(workers)) {
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { run_worker(w); });
    }
  }

  ~TaskPool() {
    {
      std::lock_guard<std::mutex> g(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void run(std::size_t count, const std::function<void(std::size_t, int)>& fn) {
    if (count == 0) return;
    {
      std::lock_guard<std::mutex> g(mu_);
      fn_ = &fn;
      count_ = count;
      finished_ = 0;
      ++generation_;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return finished_ == workers_; });
    for (std::exception_ptr& e : errors_) {
      if (e) {
        const std::exception_ptr err = e;
        for (std::exception_ptr& x : errors_) x = nullptr;
        std::rethrow_exception(err);
      }
    }
  }

 private:
  void run_worker(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      std::size_t count = 0;
      const std::function<void(std::size_t, int)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        count = count_;
        fn = fn_;
      }
      try {
        for (std::size_t i = static_cast<std::size_t>(w); i < count;
             i += static_cast<std::size_t>(workers_)) {
          (*fn)(i, w);
        }
      } catch (...) {
        std::lock_guard<std::mutex> g(mu_);
        errors_[static_cast<std::size_t>(w)] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> g(mu_);
        if (++finished_ == workers_) done_cv_.notify_all();
      }
    }
  }

  const int workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t count_ = 0;
  const std::function<void(std::size_t, int)>* fn_ = nullptr;
  int finished_ = 0;
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// Sequential path (threads == 1): the original node loop, preserved
// bit-identically — same node order, branching, and incumbents.
// ---------------------------------------------------------------------------

MilpResult run_sequential(Model& model_, const MilpOptions& options_,
                          const LazyConstraintCallback& lazy_,
                          const std::vector<double>& warm_start_) {
  const auto t0 = Clock::now();
  const auto deadline = solve_deadline(t0, options_.time_limit_sec);
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  const double sense_sign =
      model_.objective_sense() == ObjSense::kMinimize ? 1.0 : -1.0;

  MilpResult result;
  MilpStats& stats = result.stats;

  // Incumbent (internal minimize sense).
  double incumbent_obj = kInf;
  std::vector<double> incumbent_x;
  auto accept_incumbent = [&](std::vector<double> x, double internal_obj) {
    // Snap integers exactly for a clean reported solution.
    for (int j = 0; j < model_.num_vars(); ++j) {
      if (model_.var(j).type != VarType::kContinuous) {
        x[static_cast<std::size_t>(j)] =
            std::round(x[static_cast<std::size_t>(j)]);
      }
    }
    incumbent_obj = internal_obj;
    incumbent_x = std::move(x);
    const double t = elapsed();
    const double reported = sense_sign * incumbent_obj;
    if (stats.first_incumbent_sec < 0) stats.first_incumbent_sec = t;
    stats.incumbents.push_back({t, reported, stats.nodes_explored});
    obs::flight_event("milp.incumbent", "milp",
                      {{"objective", reported},
                       {"nodes", stats.nodes_explored},
                       {"t_sec", t}});
    if (options_.log) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "incumbent obj=%.6g nodes=%ld t=%.2fs",
                    reported, stats.nodes_explored, t);
      obs::log_info("milp", buf);
    }
    if (options_.on_incumbent) options_.on_incumbent(incumbent_x, reported);
  };

  // Gap-over-time samples: recorded on a 256-node cadence (and once at
  // the end) while an incumbent and a finite bound exist. The cap bounds
  // memory on pathological runs; obs mirrors each sample as counters.
  auto record_gap = [&](double internal_bound) {
    if (incumbent_x.empty() || internal_bound == -kInf) return;
    if (stats.gap_timeline.size() >= 4096) return;
    const double denom = std::max(1.0, std::abs(incumbent_obj));
    GapSample s;
    s.t_sec = elapsed();
    s.gap = std::abs(incumbent_obj - internal_bound) / denom;
    s.best_bound = sense_sign * internal_bound;
    s.nodes = stats.nodes_explored;
    stats.gap_timeline.push_back(s);
    if (obs::enabled()) {
      obs::Event e;
      e.phase = obs::Phase::kCounter;
      e.name = "milp.gap";
      e.category = "milp";
      e.ts_us = obs::now_us();
      e.args.push_back({"value", s.gap});
      obs::emit(std::move(e));
      obs::Event n;
      n.phase = obs::Phase::kCounter;
      n.name = "milp.nodes";
      n.category = "milp";
      n.ts_us = e.ts_us;
      n.args.push_back({"value", stats.nodes_explored});
      obs::emit(std::move(n));
    }
  };

  auto mirror_worker = [&] {
    stats.threads_used = 1;
    WorkerStats ws;
    ws.worker = 0;
    ws.nodes_explored = stats.nodes_explored;
    ws.lp_iterations = stats.lp_iterations;
    ws.nodes_pruned = stats.nodes_pruned;
    ws.incumbents_found = static_cast<int>(stats.incumbents.size());
    stats.per_worker.assign(1, ws);
  };

  if (!warm_start_.empty()) {
    accept_incumbent(warm_start_,
                     sense_sign * model_.objective_value(warm_start_));
  }

  OpenQueue open;
  auto root = std::make_shared<Node>();
  root->bound = -kInf;
  open.push({root});

  SimplexSolver lp(model_, options_.lp);
  std::vector<double> lb, ub;
  bool bound_proof_intact = true;  // false if any node was lost to limits

  // Root presolve: propagated bounds apply to every node (lazy rows can
  // only shrink the feasible set further). An accepted warm start is
  // proof of feasibility, so a presolve infeasibility verdict is only
  // trusted without one.
  PresolveResult presolved;
  if (options_.presolve) {
    presolved = presolve_bounds(model_);
    if (presolved.infeasible && incumbent_x.empty()) {
      result.status = MilpStatus::kInfeasible;
      result.stats.wall_sec = elapsed();
      mirror_worker();
      return result;
    }
  }

  std::vector<Pseudocost> pseudo;

  // Depth-first plunging: after branching, dive into one child directly
  // (skipping the queue) until the plunge ends in a prune/leaf — finds
  // incumbents early while the queue keeps global best-bound order.
  std::shared_ptr<const Node> plunge;

  MilpStatus final_status = MilpStatus::kOptimal;
  while (!open.empty() || plunge != nullptr) {
    const bool stop_raised =
        options_.stop != nullptr &&
        options_.stop->load(std::memory_order_relaxed);
    if (stop_raised || Clock::now() > deadline ||
        stats.nodes_explored >= options_.node_limit) {
      bound_proof_intact = false;
      stats.cancelled = stop_raised;
      final_status = incumbent_x.empty() ? MilpStatus::kLimit
                                         : MilpStatus::kFeasible;
      break;
    }
    std::shared_ptr<const Node> picked;
    if (plunge != nullptr) {
      picked = std::move(plunge);
      plunge = nullptr;
    } else {
      picked = open.top().node;
      open.pop();
    }
    const Node& node = *picked;
    const QueueEntry entry{picked};

    if (const auto fault = guard::fault_point("milp.node")) {
      if (*fault == guard::FaultKind::kSpuriousInfeasible) {
        // Silently drop the node, leaving the bound proof "intact": when
        // this empties the tree with no incumbent the solver confidently
        // reports kInfeasible for a feasible instance — exactly the lie
        // the supervised engine's cross-check is built to refute.
        continue;
      }
      if (*fault == guard::FaultKind::kStall) {
        stall_sleep(deadline);
      }
    }

    // Prune by bound (the incumbent may have improved since push).
    if (node.bound >= incumbent_obj - options_.abs_gap) {
      ++stats.nodes_pruned;
      continue;
    }

    ++stats.nodes_explored;
    if ((stats.nodes_explored & 0xFF) == 0) {
      double global_bound = node.bound;
      if (!open.empty()) {
        global_bound = std::min(global_bound, open.top().node->bound);
      }
      record_gap(global_bound);
    }

    // Re-solve loop: lazy rows/columns may be added while this node is
    // integral, so the variable count is refreshed per pass.
    for (;;) {
      intersect_node_bounds(model_, options_, presolved, node, lb, ub);
      const int n = model_.num_vars();
      const LpResult rel = timed_lp((stats.nodes_explored & 0xF) == 0,
                                    [&] { return lp.solve_with_bounds(lb, ub); });
      stats.lp_iterations += rel.iterations;
      if (rel.status == LpStatus::kInfeasible) break;
      if (rel.status == LpStatus::kUnbounded) {
        if (!model_.has_integer_vars() || node.depth == 0) {
          result.status = MilpStatus::kUnbounded;
          result.stats.wall_sec = elapsed();
          mirror_worker();
          return result;
        }
        bound_proof_intact = false;
        break;
      }
      if (rel.status == LpStatus::kIterLimit) {
        bound_proof_intact = false;  // node unresolved; optimality is lost
        break;
      }
      const double node_obj = sense_sign * rel.objective;

      // Feed the pseudocost of the branching that created this node.
      feed_pseudocost(pseudo, node, node_obj, options_.int_tol);

      if (node_obj >= incumbent_obj - options_.abs_gap) {
        ++stats.nodes_pruned;
        break;  // pruned
      }

      const BranchPick pick =
          pick_branch(model_, rel.x, n, pseudo, options_.int_tol);
      const int branch_var = pick.var;
      const double branch_frac = pick.frac;

      if (branch_var < 0) {
        // Integral relaxation: separate lazy rows, else new incumbent.
        if (lazy_) {
          std::vector<double> snapped = rel.x;
          snap_integral(model_, snapped, n);
          std::vector<LazyRow> rows = lazy_(snapped);
          if (!rows.empty()) {
            ++stats.separation_rounds;
            if (obs::enabled()) {
              obs::instant("milp.lazy_separation", "milp",
                           {{"rows", static_cast<std::int64_t>(rows.size())},
                            {"nodes", stats.nodes_explored}});
            }
            for (LazyRow& r : rows) {
              model_.add_constraint(std::move(r.expr), r.sense, r.rhs,
                                    std::move(r.name));
              ++stats.lazy_rows_added;
            }
            continue;  // re-solve the same node against the enlarged model
          }
        }
        accept_incumbent(rel.x, node_obj);
        break;
      }

      // Branch; dive into the child closer to the relaxation value and
      // queue the other.
      const double v = rel.x[static_cast<std::size_t>(branch_var)];
      const double dn = std::floor(v);
      auto down = std::make_shared<Node>();
      down->parent = entry.node;
      down->var = branch_var;
      down->lb = lb[static_cast<std::size_t>(branch_var)];
      down->ub = dn;
      down->bound = node_obj;
      down->depth = node.depth + 1;
      down->frac = branch_frac;
      down->is_down = true;
      auto up = std::make_shared<Node>();
      up->parent = entry.node;
      up->var = branch_var;
      up->lb = dn + 1.0;
      up->ub = ub[static_cast<std::size_t>(branch_var)];
      up->bound = node_obj;
      up->depth = node.depth + 1;
      up->frac = branch_frac;
      up->is_down = false;
      if (branch_frac < 0.5) {
        plunge = std::move(down);
        open.push({std::move(up)});
      } else {
        plunge = std::move(up);
        open.push({std::move(down)});
      }
      break;
    }
  }

  // Assemble the result. A pending plunge node is part of the open set for
  // bound purposes.
  double best_open_bound = incumbent_obj;
  if (!open.empty()) {
    best_open_bound = std::min(best_open_bound, open.top().node->bound);
  }
  if (plunge != nullptr) {
    best_open_bound = std::min(best_open_bound, plunge->bound);
  }
  record_gap(best_open_bound);  // closing sample (gap 0 when proved)
  result.stats.wall_sec = elapsed();
  mirror_worker();
  if (incumbent_x.empty()) {
    if (open.empty() && plunge == nullptr && bound_proof_intact) {
      result.status = MilpStatus::kInfeasible;
    } else {
      result.status = MilpStatus::kLimit;
    }
    return result;
  }
  result.x = std::move(incumbent_x);
  result.objective = sense_sign * incumbent_obj;
  if (open.empty() && plunge == nullptr && bound_proof_intact) {
    result.status = MilpStatus::kOptimal;
    result.best_bound = result.objective;
  } else {
    result.status = final_status == MilpStatus::kOptimal
                        ? MilpStatus::kFeasible
                        : final_status;
    result.best_bound = sense_sign * best_open_bound;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Free-running parallel path (threads > 1): a worker pool over a shared
// best-bound queue. Locking discipline (acquire order, never reversed):
//
//   cb_mu     — serializes lazy separation, incumbent acceptance, and both
//               user callbacks; also the only context that mutates the model.
//   model_mu  — shared for LP solves / bound materialization / branching
//               (model reads), unique for lazy row/column insertion.
//   mu        — queue, incumbent record, merged stats, termination state.
//
// Workers prune against an atomic mirror of the incumbent objective so the
// hot path takes no lock. Each worker owns its simplex workspace, bound
// scratch, pseudocost table, and plunge chain.
// ---------------------------------------------------------------------------

MilpResult run_parallel(Model& model_, const MilpOptions& options_,
                        const LazyConstraintCallback& lazy_,
                        const std::vector<double>& warm_start_,
                        int nthreads) {
  const auto t0 = Clock::now();
  const auto deadline = solve_deadline(t0, options_.time_limit_sec);
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  const double sense_sign =
      model_.objective_sense() == ObjSense::kMinimize ? 1.0 : -1.0;
  const bool model_has_integers = model_.has_integer_vars();

  MilpResult result;
  MilpStats& stats = result.stats;
  stats.threads_used = nthreads;

  std::mutex mu;  // queue + incumbent record + merged stats + termination
  std::condition_variable cv;
  std::shared_mutex model_mu;
  std::mutex cb_mu;

  OpenQueue open;
  int active = nthreads;  // workers currently holding a node
  bool done = false;
  bool abort_flag = false;
  bool unbounded = false;
  bool stop_flagged = false;
  bool bound_proof_intact = true;
  std::exception_ptr first_error;

  double incumbent_obj = kInf;  // guarded by mu
  std::vector<double> incumbent_x;
  std::atomic<double> incumbent_mirror{kInf};
  std::atomic<long> nodes_total{0};
  // In-flight node bound per worker (kInf when idle), for the global bound.
  std::vector<double> worker_bound(static_cast<std::size_t>(nthreads), kInf);
  std::vector<WorkerStats> wstats(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) wstats[static_cast<std::size_t>(w)].worker = w;

  // Requires mu. Global bound = min over queued and in-flight nodes.
  auto record_gap_locked = [&] {
    if (incumbent_x.empty()) return;
    if (stats.gap_timeline.size() >= 4096) return;
    double bound = open.empty() ? kInf : open.top().node->bound;
    for (const double b : worker_bound) bound = std::min(bound, b);
    if (bound == -kInf || bound == kInf) return;
    const double denom = std::max(1.0, std::abs(incumbent_obj));
    GapSample s;
    s.t_sec = elapsed();
    s.gap = std::abs(incumbent_obj - bound) / denom;
    s.best_bound = sense_sign * bound;
    s.nodes = nodes_total.load(std::memory_order_relaxed);
    stats.gap_timeline.push_back(s);
    if (obs::enabled()) {
      obs::Event e;
      e.phase = obs::Phase::kCounter;
      e.name = "milp.gap";
      e.category = "milp";
      e.ts_us = obs::now_us();
      e.args.push_back({"value", s.gap});
      obs::emit(std::move(e));
      obs::Event n;
      n.phase = obs::Phase::kCounter;
      n.name = "milp.nodes";
      n.category = "milp";
      n.ts_us = e.ts_us;
      n.args.push_back({"value", s.nodes});
      obs::emit(std::move(n));
    }
  };

  // Caller holds cb_mu (or no workers are running yet), so callbacks are
  // serialized and the model's variable set is stable. Returns false when
  // a better incumbent won the race.
  auto accept_incumbent = [&](std::vector<double> x, double internal_obj) {
    snap_integral(model_, x, model_.num_vars());
    const double reported = sense_sign * internal_obj;
    double t = 0.0;
    long nodes_at = 0;
    {
      std::lock_guard<std::mutex> g(mu);
      if (internal_obj >= incumbent_obj - options_.abs_gap) return false;
      incumbent_obj = internal_obj;
      incumbent_mirror.store(internal_obj, std::memory_order_relaxed);
      incumbent_x = x;
      t = elapsed();
      nodes_at = nodes_total.load(std::memory_order_relaxed);
      if (stats.first_incumbent_sec < 0) stats.first_incumbent_sec = t;
      stats.incumbents.push_back({t, reported, nodes_at});
    }
    // Incumbents are rare and load-bearing for post-mortems: record them
    // in the flight ring (always on) as well as the trace stream.
    obs::flight_event("milp.incumbent", "milp",
                      {{"objective", reported}, {"nodes", nodes_at},
                       {"t_sec", t}});
    if (options_.log) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "incumbent obj=%.6g nodes=%ld t=%.2fs",
                    reported, nodes_at, t);
      obs::log_info("milp", buf);
    }
    if (options_.on_incumbent) options_.on_incumbent(x, reported);
    return true;
  };

  if (!warm_start_.empty()) {
    accept_incumbent(warm_start_,
                     sense_sign * model_.objective_value(warm_start_));
  }

  PresolveResult presolved;
  if (options_.presolve) {
    presolved = presolve_bounds(model_);
    if (presolved.infeasible && incumbent_x.empty()) {
      result.status = MilpStatus::kInfeasible;
      result.stats.wall_sec = elapsed();
      stats.per_worker = wstats;
      return result;
    }
  }

  {
    auto root = std::make_shared<Node>();
    root->bound = -kInf;
    open.push({root});
  }

  auto worker_fn = [&](int w) {
    WorkerStats& ws = wstats[static_cast<std::size_t>(w)];
    SimplexSolver lp(model_, options_.lp);
    std::vector<double> lb, ub;
    std::vector<Pseudocost> pseudo;
    std::shared_ptr<const Node> plunge;
    try {
      for (;;) {
        std::shared_ptr<const Node> picked;
        if (plunge != nullptr) {
          picked = std::move(plunge);
          plunge = nullptr;
        } else {
          std::unique_lock<std::mutex> lock(mu);
          worker_bound[static_cast<std::size_t>(w)] = kInf;
          --active;
          if (active == 0 && open.empty() && !done) {
            done = true;
            cv.notify_all();
          }
          cv.wait(lock,
                  [&] { return done || abort_flag || !open.empty(); });
          if (done || abort_flag) break;
          picked = open.top().node;
          open.pop();
          ++active;
          worker_bound[static_cast<std::size_t>(w)] = picked->bound;
        }

        // Limit / cancellation check on every node boundary. The node in
        // hand goes back to the queue so the final bound stays sound.
        const bool stop_raised =
            options_.stop != nullptr &&
            options_.stop->load(std::memory_order_relaxed);
        if (stop_raised || Clock::now() > deadline ||
            nodes_total.load(std::memory_order_relaxed) >=
                options_.node_limit) {
          std::lock_guard<std::mutex> g(mu);
          open.push({std::move(picked)});
          abort_flag = true;
          bound_proof_intact = false;
          if (stop_raised) stop_flagged = true;
          cv.notify_all();
          break;
        }

        if (const auto fault = guard::fault_point("milp.worker")) {
          if (*fault == guard::FaultKind::kSpuriousInfeasible) continue;
          if (*fault == guard::FaultKind::kStall) stall_sleep(deadline);
        }
        if (const auto fault = guard::fault_point("milp.node")) {
          if (*fault == guard::FaultKind::kSpuriousInfeasible) continue;
          if (*fault == guard::FaultKind::kStall) stall_sleep(deadline);
        }

        const Node& node = *picked;
        if (node.bound >=
            incumbent_mirror.load(std::memory_order_relaxed) -
                options_.abs_gap) {
          ++ws.nodes_pruned;
          continue;
        }

        const long node_idx =
            nodes_total.fetch_add(1, std::memory_order_relaxed) + 1;
        ++ws.nodes_explored;
        if ((node_idx & 0xFF) == 0) {
          std::lock_guard<std::mutex> g(mu);
          record_gap_locked();
        }

        // Re-solve loop: lazy rows/columns may be added while this node
        // is integral, so sizes are refreshed per pass.
        for (;;) {
          LpResult rel;
          int n_at_solve = 0;
          int rows_at_solve = 0;
          BranchPick pick;
          std::vector<double> snapped;
          bool root_unbounded = false;
          {
            std::shared_lock<std::shared_mutex> ml(model_mu);
            rows_at_solve = model_.num_constraints();
            intersect_node_bounds(model_, options_, presolved, node, lb, ub);
            n_at_solve = model_.num_vars();
            rel = timed_lp((node_idx & 0xF) == 0,
                           [&] { return lp.solve_with_bounds(lb, ub); });
            if (rel.status == LpStatus::kOptimal) {
              pick = pick_branch(model_, rel.x, n_at_solve, pseudo,
                                 options_.int_tol);
              if (pick.var < 0) {
                snapped = rel.x;
                snap_integral(model_, snapped, n_at_solve);
              }
            } else if (rel.status == LpStatus::kUnbounded) {
              root_unbounded = !model_has_integers || node.depth == 0;
            }
          }
          ws.lp_iterations += rel.iterations;
          if (rel.status == LpStatus::kInfeasible) break;
          if (rel.status == LpStatus::kUnbounded) {
            std::lock_guard<std::mutex> g(mu);
            if (root_unbounded) {
              unbounded = true;
              abort_flag = true;
              cv.notify_all();
            } else {
              bound_proof_intact = false;
            }
            break;
          }
          if (rel.status == LpStatus::kIterLimit) {
            std::lock_guard<std::mutex> g(mu);
            bound_proof_intact = false;
            break;
          }
          const double node_obj = sense_sign * rel.objective;
          feed_pseudocost(pseudo, node, node_obj, options_.int_tol);
          if (node_obj >=
              incumbent_mirror.load(std::memory_order_relaxed) -
                  options_.abs_gap) {
            ++ws.nodes_pruned;
            break;
          }

          if (pick.var < 0) {
            // Integral relaxation. All model mutation happens under cb_mu,
            // so comparing the row count against the count at LP-solve
            // time (under cb_mu) detects rows that landed after this
            // relaxation was computed — the point must then be re-proved
            // against the enlarged model instead of trusted.
            bool resolve_again = false;
            {
              std::unique_lock<std::mutex> cbl(cb_mu);
              if (lazy_) {
                if (model_.num_constraints() != rows_at_solve) {
                  resolve_again = true;
                } else {
                  std::vector<LazyRow> rows;
                  {
                    // The callback may add variables before returning rows
                    // that reference them, so it runs under the writer
                    // lock itself.
                    std::unique_lock<std::shared_mutex> mlw(model_mu);
                    rows = lazy_(snapped);
                    for (LazyRow& r : rows) {
                      model_.add_constraint(std::move(r.expr), r.sense,
                                            r.rhs, std::move(r.name));
                    }
                  }
                  if (!rows.empty()) {
                    {
                      std::lock_guard<std::mutex> g(mu);
                      ++stats.separation_rounds;
                      stats.lazy_rows_added +=
                          static_cast<int>(rows.size());
                    }
                    if (obs::enabled()) {
                      obs::instant(
                          "milp.lazy_separation", "milp",
                          {{"rows", static_cast<std::int64_t>(rows.size())},
                           {"nodes",
                            nodes_total.load(std::memory_order_relaxed)}});
                    }
                    resolve_again = true;
                  }
                }
              }
              if (!resolve_again) {
                if (accept_incumbent(std::move(snapped), node_obj)) {
                  ++ws.incumbents_found;
                }
              }
            }
            if (resolve_again) continue;
            break;
          }

          // Branch; dive into the child closer to the relaxation value
          // and queue the other.
          const double v = rel.x[static_cast<std::size_t>(pick.var)];
          const double dn = std::floor(v);
          auto down = std::make_shared<Node>();
          down->parent = picked;
          down->var = pick.var;
          down->lb = lb[static_cast<std::size_t>(pick.var)];
          down->ub = dn;
          down->bound = node_obj;
          down->depth = node.depth + 1;
          down->frac = pick.frac;
          down->is_down = true;
          auto up = std::make_shared<Node>();
          up->parent = picked;
          up->var = pick.var;
          up->lb = dn + 1.0;
          up->ub = ub[static_cast<std::size_t>(pick.var)];
          up->bound = node_obj;
          up->depth = node.depth + 1;
          up->frac = pick.frac;
          up->is_down = false;
          std::shared_ptr<const Node> queued;
          if (pick.frac < 0.5) {
            plunge = std::move(down);
            queued = std::move(up);
          } else {
            plunge = std::move(up);
            queued = std::move(down);
          }
          {
            std::lock_guard<std::mutex> g(mu);
            open.push({std::move(queued)});
            worker_bound[static_cast<std::size_t>(w)] = plunge->bound;
          }
          cv.notify_one();
          break;
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> g(mu);
      if (!first_error) first_error = std::current_exception();
      abort_flag = true;
      bound_proof_intact = false;
      cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> g(mu);
      worker_bound[static_cast<std::size_t>(w)] = kInf;
    }
  };

  // Gauge timelines for the trace export. Each gauge takes mu for a few
  // loads; at the sampler's default 20 Hz that is noise next to the queue
  // traffic the workers generate. The sequential path gets no sampler —
  // its queue is single-thread-owned and unsynchronized, so a sampler
  // thread reading it would race. start() is a no-op with no sink.
  obs::Sampler sampler({0.05, "milp", 0});
  sampler.add_gauge("milp.queue_depth", [&] {
    std::lock_guard<std::mutex> g(mu);
    return static_cast<double>(open.size());
  });
  sampler.add_gauge("milp.workers_idle_frac", [&] {
    std::lock_guard<std::mutex> g(mu);
    return static_cast<double>(nthreads - active) /
           static_cast<double>(nthreads);
  });
  sampler.add_gauge("milp.bound_spread", [&] {
    std::lock_guard<std::mutex> g(mu);
    double lo = kInf, hi = -kInf;
    const auto feed = [&](double b) {
      if (b == kInf || b == -kInf) return;
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    };
    for (const double b : worker_bound) feed(b);
    if (!open.empty()) feed(open.top().node->bound);
    return hi > lo ? hi - lo : 0.0;
  });
  sampler.start();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) threads.emplace_back(worker_fn, w);
  for (std::thread& t : threads) t.join();
  sampler.stop();

  if (first_error) std::rethrow_exception(first_error);

  for (const WorkerStats& ws : wstats) {
    stats.lp_iterations += ws.lp_iterations;
    stats.nodes_pruned += ws.nodes_pruned;
  }
  stats.nodes_explored = nodes_total.load(std::memory_order_relaxed);
  stats.per_worker = wstats;
  stats.cancelled = stop_flagged;

  if (unbounded) {
    result.status = MilpStatus::kUnbounded;
    result.stats.wall_sec = elapsed();
    return result;
  }

  double best_open_bound = incumbent_obj;
  if (!open.empty()) {
    best_open_bound = std::min(best_open_bound, open.top().node->bound);
  }
  record_gap_locked();  // closing sample (workers joined; mu uncontended)
  result.stats.wall_sec = elapsed();
  if (incumbent_x.empty()) {
    result.status = (open.empty() && bound_proof_intact)
                        ? MilpStatus::kInfeasible
                        : MilpStatus::kLimit;
    return result;
  }
  result.x = std::move(incumbent_x);
  result.objective = sense_sign * incumbent_obj;
  if (open.empty() && bound_proof_intact) {
    result.status = MilpStatus::kOptimal;
    result.best_bound = result.objective;
  } else {
    result.status = MilpStatus::kFeasible;
    result.best_bound = sense_sign * best_open_bound;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Deterministic epoch path: nodes are popped in best-bound order in fixed-
// size batches, relaxations solve in parallel against an epoch-start
// snapshot of incumbent/pseudocosts/model, and every side effect commits
// sequentially in pop order. The schedule of work — and therefore the
// result — is independent of the worker count.
// ---------------------------------------------------------------------------

/// What one epoch task observed for its node; consumed by the commit phase.
struct EpochOut {
  LpStatus status = LpStatus::kIterLimit;
  bool dropped = false;  // injected spurious-infeasible: skip entirely
  bool root_unbounded = false;
  double node_obj = 0.0;  // internal sense (kOptimal only)
  long iterations = 0;
  int branch_var = -1;
  double branch_frac = 0.0;
  double branch_lb = 0.0;  // materialized bounds of branch_var
  double branch_ub = 0.0;
  std::vector<double> x;  // relaxation point (kOptimal only)
};

MilpResult run_deterministic(Model& model_, const MilpOptions& options_,
                             const LazyConstraintCallback& lazy_,
                             const std::vector<double>& warm_start_,
                             int nthreads) {
  const auto t0 = Clock::now();
  const auto deadline = solve_deadline(t0, options_.time_limit_sec);
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  const double sense_sign =
      model_.objective_sense() == ObjSense::kMinimize ? 1.0 : -1.0;
  const bool model_has_integers = model_.has_integer_vars();
  const std::size_t batch_cap = static_cast<std::size_t>(
      std::max(1, options_.deterministic_batch));

  MilpResult result;
  MilpStats& stats = result.stats;
  stats.threads_used = nthreads;
  std::vector<WorkerStats> wstats(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) wstats[static_cast<std::size_t>(w)].worker = w;

  double incumbent_obj = kInf;
  std::vector<double> incumbent_x;
  auto accept_incumbent = [&](std::vector<double> x, double internal_obj) {
    snap_integral(model_, x, model_.num_vars());
    incumbent_obj = internal_obj;
    incumbent_x = std::move(x);
    const double t = elapsed();
    const double reported = sense_sign * incumbent_obj;
    if (stats.first_incumbent_sec < 0) stats.first_incumbent_sec = t;
    stats.incumbents.push_back({t, reported, stats.nodes_explored});
    obs::flight_event("milp.incumbent", "milp",
                      {{"objective", reported},
                       {"nodes", stats.nodes_explored},
                       {"t_sec", t}});
    if (options_.log) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "incumbent obj=%.6g nodes=%ld t=%.2fs",
                    reported, stats.nodes_explored, t);
      obs::log_info("milp", buf);
    }
    if (options_.on_incumbent) options_.on_incumbent(incumbent_x, reported);
  };

  auto record_gap = [&](double internal_bound) {
    if (incumbent_x.empty() || internal_bound == -kInf) return;
    if (stats.gap_timeline.size() >= 4096) return;
    const double denom = std::max(1.0, std::abs(incumbent_obj));
    GapSample s;
    s.t_sec = elapsed();
    s.gap = std::abs(incumbent_obj - internal_bound) / denom;
    s.best_bound = sense_sign * internal_bound;
    s.nodes = stats.nodes_explored;
    stats.gap_timeline.push_back(s);
  };

  auto finalize_workers = [&] { stats.per_worker = wstats; };

  if (!warm_start_.empty()) {
    accept_incumbent(warm_start_,
                     sense_sign * model_.objective_value(warm_start_));
    if (nthreads > 0) wstats[0].incumbents_found += 1;
  }

  PresolveResult presolved;
  if (options_.presolve) {
    presolved = presolve_bounds(model_);
    if (presolved.infeasible && incumbent_x.empty()) {
      result.status = MilpStatus::kInfeasible;
      result.stats.wall_sec = elapsed();
      finalize_workers();
      return result;
    }
  }

  OpenQueue open;
  {
    auto root = std::make_shared<Node>();
    root->bound = -kInf;
    open.push({root});
  }

  std::vector<Pseudocost> pseudo;
  bool bound_proof_intact = true;

  TaskPool pool(nthreads);
  std::vector<SimplexSolver> lps;
  lps.reserve(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) lps.emplace_back(model_, options_.lp);
  std::vector<std::vector<double>> lbs(static_cast<std::size_t>(nthreads));
  std::vector<std::vector<double>> ubs(static_cast<std::size_t>(nthreads));

  std::vector<std::shared_ptr<const Node>> batch;
  std::vector<EpochOut> results;
  long last_gap_nodes = 0;

  MilpStatus final_status = MilpStatus::kOptimal;
  while (!open.empty()) {
    const bool stop_raised =
        options_.stop != nullptr &&
        options_.stop->load(std::memory_order_relaxed);
    if (stop_raised || Clock::now() > deadline ||
        stats.nodes_explored >= options_.node_limit) {
      bound_proof_intact = false;
      stats.cancelled = stop_raised;
      final_status = incumbent_x.empty() ? MilpStatus::kLimit
                                         : MilpStatus::kFeasible;
      break;
    }

    // Pop an epoch's worth of nodes in best-bound order. The batch size
    // does not depend on the worker count, so the exploration schedule is
    // reproducible for any `threads`.
    batch.clear();
    while (batch.size() < batch_cap && !open.empty()) {
      std::shared_ptr<const Node> n = open.top().node;
      open.pop();
      if (n->bound >= incumbent_obj - options_.abs_gap) {
        ++stats.nodes_pruned;
        continue;
      }
      ++stats.nodes_explored;
      batch.push_back(std::move(n));
    }
    if (batch.empty()) continue;

    // Parallel phase: every task reads the epoch-start model/incumbent/
    // pseudocost snapshot and writes only its own slot.
    results.assign(batch.size(), EpochOut{});
    pool.run(batch.size(), [&](std::size_t i, int slot) {
      const Node& node = *batch[i];
      EpochOut& out = results[i];
      WorkerStats& ws = wstats[static_cast<std::size_t>(slot)];
      if (const auto fault = guard::fault_point("milp.worker")) {
        if (*fault == guard::FaultKind::kSpuriousInfeasible) {
          out.dropped = true;
          return;
        }
        if (*fault == guard::FaultKind::kStall) stall_sleep(deadline);
      }
      if (const auto fault = guard::fault_point("milp.node")) {
        if (*fault == guard::FaultKind::kSpuriousInfeasible) {
          out.dropped = true;
          return;
        }
        if (*fault == guard::FaultKind::kStall) stall_sleep(deadline);
      }
      std::vector<double>& lb = lbs[static_cast<std::size_t>(slot)];
      std::vector<double>& ub = ubs[static_cast<std::size_t>(slot)];
      intersect_node_bounds(model_, options_, presolved, node, lb, ub);
      const int n = model_.num_vars();
      LpResult rel =
          lps[static_cast<std::size_t>(slot)].solve_with_bounds(lb, ub);
      out.status = rel.status;
      out.iterations = rel.iterations;
      ws.nodes_explored += 1;
      ws.lp_iterations += rel.iterations;
      if (rel.status == LpStatus::kUnbounded) {
        out.root_unbounded = !model_has_integers || node.depth == 0;
        return;
      }
      if (rel.status != LpStatus::kOptimal) return;
      out.node_obj = sense_sign * rel.objective;
      const BranchPick pick =
          pick_branch(model_, rel.x, n, pseudo, options_.int_tol);
      out.branch_var = pick.var;
      out.branch_frac = pick.frac;
      if (pick.var >= 0) {
        out.branch_lb = lb[static_cast<std::size_t>(pick.var)];
        out.branch_ub = ub[static_cast<std::size_t>(pick.var)];
      }
      out.x = std::move(rel.x);
    });

    // Sequential commit phase, in pop order. Lazy rows landing earlier in
    // this epoch invalidate later integral candidates (their relaxations
    // never saw the new rows): those nodes are re-queued, not accepted.
    bool rows_added_this_epoch = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EpochOut& out = results[i];
      const std::shared_ptr<const Node>& picked = batch[i];
      const Node& node = *picked;
      const int slot = static_cast<int>(i) % nthreads;
      stats.lp_iterations += out.iterations;
      if (out.dropped) continue;
      if (out.status == LpStatus::kInfeasible) continue;
      if (out.status == LpStatus::kUnbounded) {
        if (out.root_unbounded) {
          result.status = MilpStatus::kUnbounded;
          result.stats.wall_sec = elapsed();
          finalize_workers();
          return result;
        }
        bound_proof_intact = false;
        continue;
      }
      if (out.status == LpStatus::kIterLimit) {
        bound_proof_intact = false;
        continue;
      }
      feed_pseudocost(pseudo, node, out.node_obj, options_.int_tol);
      if (out.node_obj >= incumbent_obj - options_.abs_gap) {
        ++stats.nodes_pruned;
        ++wstats[static_cast<std::size_t>(slot)].nodes_pruned;
        continue;
      }
      if (out.branch_var < 0) {
        // Integral candidate.
        if (rows_added_this_epoch) {
          open.push({picked});  // model changed under it: re-prove
          continue;
        }
        if (lazy_) {
          std::vector<double> snapped = out.x;
          snap_integral(model_, snapped,
                        static_cast<int>(snapped.size()));
          std::vector<LazyRow> rows = lazy_(snapped);
          if (!rows.empty()) {
            ++stats.separation_rounds;
            if (obs::enabled()) {
              obs::instant("milp.lazy_separation", "milp",
                           {{"rows", static_cast<std::int64_t>(rows.size())},
                            {"nodes", stats.nodes_explored}});
            }
            for (LazyRow& r : rows) {
              model_.add_constraint(std::move(r.expr), r.sense, r.rhs,
                                    std::move(r.name));
              ++stats.lazy_rows_added;
            }
            rows_added_this_epoch = true;
            open.push({picked});  // re-solve against the enlarged model
            continue;
          }
        }
        accept_incumbent(std::move(out.x), out.node_obj);
        ++wstats[static_cast<std::size_t>(slot)].incumbents_found;
        continue;
      }
      // Branch: both children go to the queue (no plunging — a plunge
      // chain's length depends on timing, which the epoch schedule must
      // not).
      const double v = out.x[static_cast<std::size_t>(out.branch_var)];
      const double dn = std::floor(v);
      auto down = std::make_shared<Node>();
      down->parent = picked;
      down->var = out.branch_var;
      down->lb = out.branch_lb;
      down->ub = dn;
      down->bound = out.node_obj;
      down->depth = node.depth + 1;
      down->frac = out.branch_frac;
      down->is_down = true;
      auto up = std::make_shared<Node>();
      up->parent = picked;
      up->var = out.branch_var;
      up->lb = dn + 1.0;
      up->ub = out.branch_ub;
      up->bound = out.node_obj;
      up->depth = node.depth + 1;
      up->frac = out.branch_frac;
      up->is_down = false;
      open.push({std::move(down)});
      open.push({std::move(up)});
    }

    if (stats.nodes_explored - last_gap_nodes >= 256 && !open.empty()) {
      last_gap_nodes = stats.nodes_explored;
      record_gap(open.top().node->bound);
    }
  }

  double best_open_bound = incumbent_obj;
  if (!open.empty()) {
    best_open_bound = std::min(best_open_bound, open.top().node->bound);
  }
  record_gap(best_open_bound);
  result.stats.wall_sec = elapsed();
  finalize_workers();
  if (incumbent_x.empty()) {
    result.status = (open.empty() && bound_proof_intact)
                        ? MilpStatus::kInfeasible
                        : MilpStatus::kLimit;
    return result;
  }
  result.x = std::move(incumbent_x);
  result.objective = sense_sign * incumbent_obj;
  if (open.empty() && bound_proof_intact) {
    result.status = MilpStatus::kOptimal;
    result.best_bound = result.objective;
  } else {
    result.status = final_status == MilpStatus::kOptimal
                        ? MilpStatus::kFeasible
                        : final_status;
    result.best_bound = sense_sign * best_open_bound;
  }
  return result;
}

}  // namespace

double MilpResult::gap() const {
  if (x.empty()) return kInf;
  const double denom = std::max(1.0, std::abs(objective));
  return std::abs(objective - best_bound) / denom;
}

MilpSolver::MilpSolver(Model& model, MilpOptions options)
    : model_(model), options_(options) {}

void MilpSolver::set_lazy_callback(LazyConstraintCallback cb) {
  lazy_ = std::move(cb);
}

bool MilpSolver::set_warm_start(std::vector<double> x) {
  if (!model_.is_feasible(x, options_.int_tol)) return false;
  if (lazy_) {
    const auto violated = lazy_(x);
    if (!violated.empty()) return false;
  }
  warm_start_ = std::move(x);
  return true;
}

MilpResult MilpSolver::solve() {
  const int threads = resolve_threads(options_.threads);

  obs::ScopedSpan span("milp.solve", "milp");
  span.arg("vars", static_cast<std::int64_t>(model_.num_vars()));
  span.arg("rows", static_cast<std::int64_t>(model_.num_constraints()));
  span.arg("threads", static_cast<std::int64_t>(threads));
  span.arg("deterministic", options_.deterministic);

  MilpResult result;
  if (options_.deterministic) {
    result = run_deterministic(model_, options_, lazy_, warm_start_, threads);
  } else if (threads <= 1) {
    result = run_sequential(model_, options_, lazy_, warm_start_);
  } else {
    result = run_parallel(model_, options_, lazy_, warm_start_, threads);
  }

  span.arg("nodes", result.stats.nodes_explored);
  span.arg("lp_iterations", result.stats.lp_iterations);
  span.arg("lazy_rows",
           static_cast<std::int64_t>(result.stats.lazy_rows_added));
  span.arg("incumbents",
           static_cast<std::int64_t>(result.stats.incumbents.size()));
  return result;
}

}  // namespace letdma::milp
