#include "letdma/milp/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <queue>
#include <thread>

#include "letdma/guard/faults.hpp"
#include "letdma/milp/presolve.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::milp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A branch-and-bound node stores only its bound change relative to the
/// parent; full bound vectors are materialized on demand by walking the
/// parent chain.
struct Node {
  std::shared_ptr<const Node> parent;
  int var = -1;      // changed variable (-1 for the root)
  double lb = 0.0;   // new bounds for `var`
  double ub = 0.0;
  double bound;      // parent relaxation value (internal minimize sense)
  int depth = 0;
  // Branching bookkeeping for pseudocost updates.
  double frac = 0.0;    // fractional part of `var` at the parent
  bool is_down = false; // this node is the floor-side child
};

struct QueueEntry {
  std::shared_ptr<const Node> node;
};

struct BestBoundOrder {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.node->bound != b.node->bound) return a.node->bound > b.node->bound;
    return a.node->depth < b.node->depth;  // on ties, dive (DFS-like)
  }
};

}  // namespace

double MilpResult::gap() const {
  if (x.empty()) return kInf;
  const double denom = std::max(1.0, std::abs(objective));
  return std::abs(objective - best_bound) / denom;
}

MilpSolver::MilpSolver(Model& model, MilpOptions options)
    : model_(model), options_(options) {}

void MilpSolver::set_lazy_callback(LazyConstraintCallback cb) {
  lazy_ = std::move(cb);
}

bool MilpSolver::set_warm_start(std::vector<double> x) {
  if (!model_.is_feasible(x, options_.int_tol)) return false;
  if (lazy_) {
    const auto violated = lazy_(x);
    if (!violated.empty()) return false;
  }
  warm_start_ = std::move(x);
  return true;
}

MilpResult MilpSolver::solve() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  const double sense_sign =
      model_.objective_sense() == ObjSense::kMinimize ? 1.0 : -1.0;

  obs::ScopedSpan span("milp.solve", "milp");
  span.arg("vars", static_cast<std::int64_t>(model_.num_vars()));
  span.arg("rows", static_cast<std::int64_t>(model_.num_constraints()));

  MilpResult result;
  MilpStats& stats = result.stats;

  // Final span args come from the stats as they stand at scope exit
  // (destroyed before `span`, so the args land on the solve slice).
  struct SpanStats {
    obs::ScopedSpan& span;
    const MilpStats& stats;
    ~SpanStats() {
      span.arg("nodes", stats.nodes_explored);
      span.arg("lp_iterations", stats.lp_iterations);
      span.arg("lazy_rows", static_cast<std::int64_t>(stats.lazy_rows_added));
      span.arg("incumbents",
               static_cast<std::int64_t>(stats.incumbents.size()));
    }
  } span_stats{span, stats};

  // Incumbent (internal minimize sense).
  double incumbent_obj = kInf;
  std::vector<double> incumbent_x;
  auto accept_incumbent = [&](std::vector<double> x, double internal_obj) {
    // Snap integers exactly for a clean reported solution.
    for (int j = 0; j < model_.num_vars(); ++j) {
      if (model_.var(j).type != VarType::kContinuous) {
        x[static_cast<std::size_t>(j)] =
            std::round(x[static_cast<std::size_t>(j)]);
      }
    }
    incumbent_obj = internal_obj;
    incumbent_x = std::move(x);
    const double t = elapsed();
    const double reported = sense_sign * incumbent_obj;
    if (stats.first_incumbent_sec < 0) stats.first_incumbent_sec = t;
    stats.incumbents.push_back({t, reported, stats.nodes_explored});
    if (obs::enabled()) {
      obs::instant("milp.incumbent", "milp",
                   {{"objective", reported},
                    {"nodes", stats.nodes_explored},
                    {"t_sec", t}});
    }
    if (options_.log) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "incumbent obj=%.6g nodes=%ld t=%.2fs",
                    reported, stats.nodes_explored, t);
      obs::log_info("milp", buf);
    }
    if (options_.on_incumbent) options_.on_incumbent(incumbent_x, reported);
  };

  // Gap-over-time samples: recorded on a 256-node cadence (and once at
  // the end) while an incumbent and a finite bound exist. The cap bounds
  // memory on pathological runs; obs mirrors each sample as counters.
  auto record_gap = [&](double internal_bound) {
    if (incumbent_x.empty() || internal_bound == -kInf) return;
    if (stats.gap_timeline.size() >= 4096) return;
    const double denom = std::max(1.0, std::abs(incumbent_obj));
    GapSample s;
    s.t_sec = elapsed();
    s.gap = std::abs(incumbent_obj - internal_bound) / denom;
    s.best_bound = sense_sign * internal_bound;
    s.nodes = stats.nodes_explored;
    stats.gap_timeline.push_back(s);
    if (obs::enabled()) {
      obs::Event e;
      e.phase = obs::Phase::kCounter;
      e.name = "milp.gap";
      e.category = "milp";
      e.ts_us = obs::now_us();
      e.args.push_back({"value", s.gap});
      obs::emit(std::move(e));
      obs::Event n;
      n.phase = obs::Phase::kCounter;
      n.name = "milp.nodes";
      n.category = "milp";
      n.ts_us = e.ts_us;
      n.args.push_back({"value", stats.nodes_explored});
      obs::emit(std::move(n));
    }
  };

  if (!warm_start_.empty()) {
    accept_incumbent(warm_start_,
                     sense_sign * model_.objective_value(warm_start_));
  }

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, BestBoundOrder>
      open;
  auto root = std::make_shared<Node>();
  root->bound = -kInf;
  open.push({root});

  SimplexSolver lp(model_, options_.lp);
  std::vector<double> lb, ub;
  bool bound_proof_intact = true;  // false if any node was lost to limits

  // Root presolve: propagated bounds apply to every node (lazy rows can
  // only shrink the feasible set further). An accepted warm start is
  // proof of feasibility, so a presolve infeasibility verdict is only
  // trusted without one.
  PresolveResult presolved;
  if (options_.presolve) {
    presolved = presolve_bounds(model_);
    if (presolved.infeasible && incumbent_x.empty()) {
      result.status = MilpStatus::kInfeasible;
      result.stats.wall_sec = elapsed();
      return result;
    }
  }

  auto materialize_bounds = [&](const Node& node) {
    // Bounds are rebuilt from the model each time because lazy callbacks
    // may append variables (and rows) mid-solve; node chains only ever
    // reference variables that existed when the node was created.
    const int n = model_.num_vars();
    lb.resize(static_cast<std::size_t>(n));
    ub.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      lb[static_cast<std::size_t>(j)] = model_.var(j).lb;
      ub[static_cast<std::size_t>(j)] = model_.var(j).ub;
    }
    if (options_.presolve && !presolved.infeasible) {
      const int np = static_cast<int>(presolved.lb.size());
      for (int j = 0; j < std::min(n, np); ++j) {
        lb[static_cast<std::size_t>(j)] =
            std::max(lb[static_cast<std::size_t>(j)],
                     presolved.lb[static_cast<std::size_t>(j)]);
        ub[static_cast<std::size_t>(j)] =
            std::min(ub[static_cast<std::size_t>(j)],
                     presolved.ub[static_cast<std::size_t>(j)]);
      }
    }
    // Apply changes root->leaf so later (deeper) changes win. Changes only
    // tighten, so applying leaf-first with max/min is equivalent; we walk
    // the chain and intersect.
    for (const Node* p = &node; p != nullptr; p = p->parent.get()) {
      if (p->var < 0) continue;
      lb[static_cast<std::size_t>(p->var)] =
          std::max(lb[static_cast<std::size_t>(p->var)], p->lb);
      ub[static_cast<std::size_t>(p->var)] =
          std::min(ub[static_cast<std::size_t>(p->var)], p->ub);
    }
  };

  // Pseudocosts: per variable, average relaxation degradation observed per
  // unit of fractionality when branching down/up. Guides later branching
  // decisions toward variables that actually move the bound.
  struct Pseudocost {
    double down_sum = 0, up_sum = 0;
    int down_n = 0, up_n = 0;
  };
  std::vector<Pseudocost> pseudo;
  auto pseudo_of = [&](int var) -> Pseudocost& {
    if (var >= static_cast<int>(pseudo.size())) {
      pseudo.resize(static_cast<std::size_t>(var) + 1);
    }
    return pseudo[static_cast<std::size_t>(var)];
  };

  // Depth-first plunging: after branching, dive into one child directly
  // (skipping the queue) until the plunge ends in a prune/leaf — finds
  // incumbents early while the queue keeps global best-bound order.
  std::shared_ptr<const Node> plunge;

  MilpStatus final_status = MilpStatus::kOptimal;
  while (!open.empty() || plunge != nullptr) {
    const bool stop_raised =
        options_.stop != nullptr &&
        options_.stop->load(std::memory_order_relaxed);
    if (stop_raised || elapsed() > options_.time_limit_sec ||
        stats.nodes_explored >= options_.node_limit) {
      bound_proof_intact = false;
      stats.cancelled = stop_raised;
      final_status = incumbent_x.empty() ? MilpStatus::kLimit
                                         : MilpStatus::kFeasible;
      break;
    }
    std::shared_ptr<const Node> picked;
    if (plunge != nullptr) {
      picked = std::move(plunge);
      plunge = nullptr;
    } else {
      picked = open.top().node;
      open.pop();
    }
    const Node& node = *picked;
    const QueueEntry entry{picked};

    if (const auto fault = guard::fault_point("milp.node")) {
      if (*fault == guard::FaultKind::kSpuriousInfeasible) {
        // Silently drop the node, leaving the bound proof "intact": when
        // this empties the tree with no incumbent the solver confidently
        // reports kInfeasible for a feasible instance — exactly the lie
        // the supervised engine's cross-check is built to refute.
        continue;
      }
      if (*fault == guard::FaultKind::kStall) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }

    // Prune by bound (the incumbent may have improved since push).
    if (node.bound >= incumbent_obj - options_.abs_gap) continue;

    ++stats.nodes_explored;
    if ((stats.nodes_explored & 0xFF) == 0) {
      double global_bound = node.bound;
      if (!open.empty()) {
        global_bound = std::min(global_bound, open.top().node->bound);
      }
      record_gap(global_bound);
    }

    // Re-solve loop: lazy rows/columns may be added while this node is
    // integral, so the variable count is refreshed per pass.
    for (;;) {
      materialize_bounds(node);
      const int n = model_.num_vars();
      const LpResult rel = lp.solve_with_bounds(lb, ub);
      stats.lp_iterations += rel.iterations;
      if (rel.status == LpStatus::kInfeasible) break;
      if (rel.status == LpStatus::kUnbounded) {
        if (!model_.has_integer_vars() || node.depth == 0) {
          result.status = MilpStatus::kUnbounded;
          result.stats.wall_sec = elapsed();
          return result;
        }
        bound_proof_intact = false;
        break;
      }
      if (rel.status == LpStatus::kIterLimit) {
        bound_proof_intact = false;  // node unresolved; optimality is lost
        break;
      }
      const double node_obj = sense_sign * rel.objective;

      // Feed the pseudocost of the branching that created this node.
      if (node.var >= 0 && node.frac > options_.int_tol &&
          node.bound > -kInf) {
        const double degradation =
            std::max(0.0, node_obj - node.bound) /
            (node.is_down ? node.frac : (1.0 - node.frac));
        Pseudocost& pc = pseudo_of(node.var);
        if (node.is_down) {
          pc.down_sum += degradation;
          pc.down_n += 1;
        } else {
          pc.up_sum += degradation;
          pc.up_n += 1;
        }
      }

      if (node_obj >= incumbent_obj - options_.abs_gap) break;  // pruned

      // Pick the branching variable: pseudocost product score, falling
      // back to most-fractional while no history exists.
      int branch_var = -1;
      double best_score = -1.0;
      double branch_frac = 0.0;
      for (int j = 0; j < n; ++j) {
        if (model_.var(j).type == VarType::kContinuous) continue;
        const double v = rel.x[static_cast<std::size_t>(j)];
        const double frac = v - std::floor(v);
        const double dist = std::min(frac, 1.0 - frac);
        if (dist <= options_.int_tol) continue;
        const Pseudocost& pc = pseudo_of(j);
        const double down_rate = pc.down_n > 0 ? pc.down_sum / pc.down_n : 1.0;
        const double up_rate = pc.up_n > 0 ? pc.up_sum / pc.up_n : 1.0;
        const double down_est = down_rate * frac;
        const double up_est = up_rate * (1.0 - frac);
        // Product rule with the fractionality as a tiebreaker.
        const double score =
            std::max(down_est, 1e-8) * std::max(up_est, 1e-8) + 1e-3 * dist;
        if (score > best_score) {
          best_score = score;
          branch_var = j;
          branch_frac = frac;
        }
      }

      if (branch_var < 0) {
        // Integral relaxation: separate lazy rows, else new incumbent.
        if (lazy_) {
          std::vector<double> snapped = rel.x;
          for (int j = 0; j < n; ++j) {
            if (model_.var(j).type != VarType::kContinuous) {
              snapped[static_cast<std::size_t>(j)] =
                  std::round(snapped[static_cast<std::size_t>(j)]);
            }
          }
          std::vector<LazyRow> rows = lazy_(snapped);
          if (!rows.empty()) {
            ++stats.separation_rounds;
            if (obs::enabled()) {
              obs::instant("milp.lazy_separation", "milp",
                           {{"rows", static_cast<std::int64_t>(rows.size())},
                            {"nodes", stats.nodes_explored}});
            }
            for (LazyRow& r : rows) {
              model_.add_constraint(std::move(r.expr), r.sense, r.rhs,
                                    std::move(r.name));
              ++stats.lazy_rows_added;
            }
            continue;  // re-solve the same node against the enlarged model
          }
        }
        accept_incumbent(rel.x, node_obj);
        break;
      }

      // Branch; dive into the child closer to the relaxation value and
      // queue the other.
      const double v = rel.x[static_cast<std::size_t>(branch_var)];
      const double dn = std::floor(v);
      auto down = std::make_shared<Node>();
      down->parent = entry.node;
      down->var = branch_var;
      down->lb = lb[static_cast<std::size_t>(branch_var)];
      down->ub = dn;
      down->bound = node_obj;
      down->depth = node.depth + 1;
      down->frac = branch_frac;
      down->is_down = true;
      auto up = std::make_shared<Node>();
      up->parent = entry.node;
      up->var = branch_var;
      up->lb = dn + 1.0;
      up->ub = ub[static_cast<std::size_t>(branch_var)];
      up->bound = node_obj;
      up->depth = node.depth + 1;
      up->frac = branch_frac;
      up->is_down = false;
      if (branch_frac < 0.5) {
        plunge = std::move(down);
        open.push({std::move(up)});
      } else {
        plunge = std::move(up);
        open.push({std::move(down)});
      }
      break;
    }
  }

  // Assemble the result. A pending plunge node is part of the open set for
  // bound purposes.
  double best_open_bound = incumbent_obj;
  if (!open.empty()) {
    best_open_bound = std::min(best_open_bound, open.top().node->bound);
  }
  if (plunge != nullptr) {
    best_open_bound = std::min(best_open_bound, plunge->bound);
  }
  record_gap(best_open_bound);  // closing sample (gap 0 when proved)
  result.stats.wall_sec = elapsed();
  if (incumbent_x.empty()) {
    if (open.empty() && plunge == nullptr && bound_proof_intact) {
      result.status = MilpStatus::kInfeasible;
    } else {
      result.status = MilpStatus::kLimit;
    }
    return result;
  }
  result.x = std::move(incumbent_x);
  result.objective = sense_sign * incumbent_obj;
  if (open.empty() && plunge == nullptr && bound_proof_intact) {
    result.status = MilpStatus::kOptimal;
    result.best_bound = result.objective;
  } else {
    result.status = final_status == MilpStatus::kOptimal
                        ? MilpStatus::kFeasible
                        : final_status;
    result.best_bound = sense_sign * best_open_bound;
  }
  return result;
}

}  // namespace letdma::milp
