#include "letdma/milp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "letdma/guard/faults.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::milp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class ColStatus : unsigned char { kBasic, kAtLower, kAtUpper, kFree };

/// Dense bounded-variable full-tableau simplex. One instance per solve call;
/// all state lives here.
class Tableau {
 public:
  Tableau(const Model& model, const SimplexOptions& opt,
          const std::vector<double>& lb_override,
          const std::vector<double>& ub_override)
      : model_(model), opt_(opt) {
    build(lb_override, ub_override);
  }

  LpResult run() {
    // Phase 1: drive artificials to zero (skipped when none are basic).
    if (num_art_ > 0) {
      set_phase1_costs();
      const LpStatus st = iterate(/*phase1=*/true);
      if (st == LpStatus::kIterLimit) return finish(st);
      if (artificial_sum() > 1e-6) return finish(LpStatus::kInfeasible);
      retire_artificials();
    }
    set_phase2_costs();
    const LpStatus st = iterate(/*phase1=*/false);
    return finish(st);
  }

 private:
  // --- construction ------------------------------------------------------

  void build(const std::vector<double>& lb_override,
             const std::vector<double>& ub_override) {
    m_ = model_.num_constraints();
    n_ = model_.num_vars();
    ncols_ = n_ + m_;  // structural + one slack per row

    lb_.assign(static_cast<std::size_t>(ncols_), 0.0);
    ub_.assign(static_cast<std::size_t>(ncols_), kInf);
    for (int j = 0; j < n_; ++j) {
      lb_[static_cast<std::size_t>(j)] =
          lb_override[static_cast<std::size_t>(j)];
      ub_[static_cast<std::size_t>(j)] =
          ub_override[static_cast<std::size_t>(j)];
    }
    rhs_model_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      const ConstraintInfo& row = model_.constraint(i);
      rhs_model_[static_cast<std::size_t>(i)] = row.rhs;
      const int s = n_ + i;
      switch (row.sense) {
        case Sense::kLe:
          lb_[static_cast<std::size_t>(s)] = 0.0;
          ub_[static_cast<std::size_t>(s)] = kInf;
          break;
        case Sense::kGe:
          lb_[static_cast<std::size_t>(s)] = -kInf;
          ub_[static_cast<std::size_t>(s)] = 0.0;
          break;
        case Sense::kEq:
          lb_[static_cast<std::size_t>(s)] = 0.0;
          ub_[static_cast<std::size_t>(s)] = 0.0;
          break;
      }
    }

    // Nonbasic starting point: finite bound nearest to zero, or 0 if free.
    xval_.assign(static_cast<std::size_t>(ncols_), 0.0);
    stat_.assign(static_cast<std::size_t>(ncols_), ColStatus::kAtLower);
    for (int j = 0; j < ncols_; ++j) {
      const double l = lb_[static_cast<std::size_t>(j)];
      const double u = ub_[static_cast<std::size_t>(j)];
      if (l > -kInf) {
        xval_[static_cast<std::size_t>(j)] = l;
        stat_[static_cast<std::size_t>(j)] = ColStatus::kAtLower;
      } else if (u < kInf) {
        xval_[static_cast<std::size_t>(j)] = u;
        stat_[static_cast<std::size_t>(j)] = ColStatus::kAtUpper;
      } else {
        xval_[static_cast<std::size_t>(j)] = 0.0;
        stat_[static_cast<std::size_t>(j)] = ColStatus::kFree;
      }
    }

    // Row residuals with all structural columns at their start values.
    std::vector<double> resid(rhs_model_);
    for (int i = 0; i < m_; ++i) {
      const ConstraintInfo& row = model_.constraint(i);
      for (const LinTerm& t : row.expr.terms()) {
        resid[static_cast<std::size_t>(i)] -=
            t.coef * xval_[static_cast<std::size_t>(t.var.index)];
      }
    }

    // Decide per row whether the slack can start basic, or an artificial
    // is required; record artificial signs.
    basis_.assign(static_cast<std::size_t>(m_), -1);
    std::vector<int> art_row;
    std::vector<double> art_sign;
    for (int i = 0; i < m_; ++i) {
      const int s = n_ + i;
      const double r = resid[static_cast<std::size_t>(i)];
      const double sl = lb_[static_cast<std::size_t>(s)];
      const double su = ub_[static_cast<std::size_t>(s)];
      if (r >= sl - opt_.feas_tol && r <= su + opt_.feas_tol) {
        basis_[static_cast<std::size_t>(i)] = s;
        xval_[static_cast<std::size_t>(s)] = std::clamp(r, sl, su);
        stat_[static_cast<std::size_t>(s)] = ColStatus::kBasic;
      } else {
        const double sval = std::clamp(r, sl, su);
        xval_[static_cast<std::size_t>(s)] = sval;
        stat_[static_cast<std::size_t>(s)] =
            (sval == sl) ? ColStatus::kAtLower : ColStatus::kAtUpper;
        art_row.push_back(i);
        art_sign.push_back(r - sval > 0 ? 1.0 : -1.0);
      }
    }
    num_art_ = static_cast<int>(art_row.size());
    total_ = ncols_ + num_art_;

    // Dense tableau rows: [A | I_slack | signed I_art], pre-multiplied by
    // B^{-1}. The initial basis matrix is diagonal with entries 1 (slack
    // rows) or the artificial sign, so pre-multiplication is a row scale.
    tab_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(total_),
                0.0);
    for (int i = 0; i < m_; ++i) {
      const ConstraintInfo& row = model_.constraint(i);
      for (const LinTerm& t : row.expr.terms()) {
        at(i, t.var.index) += t.coef;
      }
      at(i, n_ + i) = 1.0;
    }
    lb_.resize(static_cast<std::size_t>(total_), 0.0);
    ub_.resize(static_cast<std::size_t>(total_), kInf);
    xval_.resize(static_cast<std::size_t>(total_), 0.0);
    stat_.resize(static_cast<std::size_t>(total_), ColStatus::kAtLower);
    for (int a = 0; a < num_art_; ++a) {
      const int i = art_row[static_cast<std::size_t>(a)];
      const int col = ncols_ + a;
      at(i, col) = art_sign[static_cast<std::size_t>(a)];
      basis_[static_cast<std::size_t>(i)] = col;
      stat_[static_cast<std::size_t>(col)] = ColStatus::kBasic;
      if (art_sign[static_cast<std::size_t>(a)] < 0) {
        scale_row(i, -1.0);
      }
    }
    recompute_basics();
  }

  double& at(int i, int j) {
    return tab_[static_cast<std::size_t>(i) * static_cast<std::size_t>(total_) +
                static_cast<std::size_t>(j)];
  }
  double at(int i, int j) const {
    return tab_[static_cast<std::size_t>(i) * static_cast<std::size_t>(total_) +
                static_cast<std::size_t>(j)];
  }

  void scale_row(int i, double k) {
    double* row = &tab_[static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(total_)];
    for (int j = 0; j < total_; ++j) row[j] *= k;
  }

  // --- invariant maintenance ---------------------------------------------

  /// Recomputes basic variable values exactly from beta_ (B^{-1}b, kept in
  /// lockstep with the tableau by pivot()) and the nonbasic values:
  ///   xB_i = beta_i - sum_{nonbasic j} tab(i,j) * x_j.
  /// Called periodically to wash out incremental drift.
  void recompute_basics() {
    if (beta_empty_) {
      // First call: beta = B^{-1} b. The initial B is (signed) diagonal and
      // row scaling was already applied to tab_, so replicate it on rhs.
      beta_.resize(static_cast<std::size_t>(m_));
      for (int i = 0; i < m_; ++i) {
        // The row scale applied to tab_ rows for negative artificial signs
        // must also apply to the rhs; detect it from the basic column.
        const int bj = basis_[static_cast<std::size_t>(i)];
        const double diag = at(i, bj);  // +1 by construction after scaling
        LETDMA_ENSURE(std::abs(diag - 1.0) < 1e-9,
                      "initial basis column is not unit");
        // Determine whether this row was scaled by -1: the slack column
        // coefficient tells us (slack col had +1 before scaling).
        const double slack_coef = at(i, n_ + i);
        beta_[static_cast<std::size_t>(i)] =
            slack_coef * rhs_model_[static_cast<std::size_t>(i)];
      }
      beta_empty_ = false;
    }
    for (int i = 0; i < m_; ++i) {
      double v = beta_[static_cast<std::size_t>(i)];
      const double* row = &tab_[static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(total_)];
      for (int j = 0; j < total_; ++j) {
        if (stat_[static_cast<std::size_t>(j)] != ColStatus::kBasic &&
            row[j] != 0.0) {
          v -= row[j] * xval_[static_cast<std::size_t>(j)];
        }
      }
      xval_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])] = v;
    }
  }

  void set_phase1_costs() {
    cost_.assign(static_cast<std::size_t>(total_), 0.0);
    for (int a = 0; a < num_art_; ++a) {
      cost_[static_cast<std::size_t>(ncols_ + a)] = 1.0;
    }
    refresh_reduced_costs();
  }

  void set_phase2_costs() {
    cost_.assign(static_cast<std::size_t>(total_), 0.0);
    const double sign =
        model_.objective_sense() == ObjSense::kMinimize ? 1.0 : -1.0;
    for (const LinTerm& t : model_.objective().terms()) {
      cost_[static_cast<std::size_t>(t.var.index)] += sign * t.coef;
    }
    refresh_reduced_costs();
  }

  void refresh_reduced_costs() {
    // d = c - c_B^T * tab  (tab already equals B^{-1} A_all).
    dcost_ = cost_;
    for (int i = 0; i < m_; ++i) {
      const double cb =
          cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(i)])];
      if (cb == 0.0) continue;
      const double* row = &tab_[static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(total_)];
      for (int j = 0; j < total_; ++j) {
        dcost_[static_cast<std::size_t>(j)] -= cb * row[j];
      }
    }
    for (int i = 0; i < m_; ++i) {
      dcost_[static_cast<std::size_t>(
          basis_[static_cast<std::size_t>(i)])] = 0.0;
    }
  }

  double artificial_sum() const {
    double s = 0.0;
    for (int a = 0; a < num_art_; ++a) {
      s += std::abs(xval_[static_cast<std::size_t>(ncols_ + a)]);
    }
    return s;
  }

  /// After phase 1: pin artificials at zero and pivot basic ones out where
  /// possible; rows where that fails are redundant and keep a zero-fixed
  /// artificial as a placeholder basic variable.
  void retire_artificials() {
    for (int a = 0; a < num_art_; ++a) {
      const int col = ncols_ + a;
      lb_[static_cast<std::size_t>(col)] = 0.0;
      ub_[static_cast<std::size_t>(col)] = 0.0;
      xval_[static_cast<std::size_t>(col)] =
          std::abs(xval_[static_cast<std::size_t>(col)]) < opt_.feas_tol
              ? 0.0
              : xval_[static_cast<std::size_t>(col)];
    }
    for (int i = 0; i < m_; ++i) {
      const int bj = basis_[static_cast<std::size_t>(i)];
      if (bj < ncols_) continue;  // not artificial
      // Try to pivot the artificial out on any usable non-artificial column.
      int pivot_col = -1;
      double best = opt_.pivot_tol;
      for (int j = 0; j < ncols_; ++j) {
        if (stat_[static_cast<std::size_t>(j)] == ColStatus::kBasic) continue;
        const double y = std::abs(at(i, j));
        if (y > best) {
          best = y;
          pivot_col = j;
        }
      }
      if (pivot_col >= 0) {
        // Degenerate pivot: the artificial is at 0, so the entering column
        // enters at its current value; basic values are unchanged.
        pivot(i, pivot_col, /*entering_value=*/
              xval_[static_cast<std::size_t>(pivot_col)]);
      }
      // else: redundant row; artificial stays basic, fixed at 0.
    }
  }

  // --- simplex iterations --------------------------------------------------

  LpStatus iterate(bool phase1) {
    long degen_streak = 0;
    bool bland = false;
    for (;;) {
      if (iterations_ >= opt_.max_iterations) return LpStatus::kIterLimit;
      if ((iterations_ & 0x1ff) == 0x1ff) {
        // Fault poll rides the existing periodic refresh so the pivot hot
        // path never pays for it.
        guard::fault_point("simplex.pivot");
        refresh_reduced_costs();
        recompute_basics();
      }

      // Pricing: pick an entering column with a violating reduced cost.
      int q = -1;
      double q_score = opt_.opt_tol;
      int q_dir = 0;
      for (int j = 0; j < total_; ++j) {
        const ColStatus st = stat_[static_cast<std::size_t>(j)];
        if (st == ColStatus::kBasic) continue;
        if (lb_[static_cast<std::size_t>(j)] ==
                ub_[static_cast<std::size_t>(j)])
          continue;  // fixed
        const double d = dcost_[static_cast<std::size_t>(j)];
        int dir = 0;
        if (st == ColStatus::kAtLower && d < -opt_.opt_tol) dir = +1;
        else if (st == ColStatus::kAtUpper && d > opt_.opt_tol) dir = -1;
        else if (st == ColStatus::kFree && std::abs(d) > opt_.opt_tol)
          dir = d < 0 ? +1 : -1;
        if (dir == 0) continue;
        if (bland) {  // first eligible index
          q = j;
          q_dir = dir;
          break;
        }
        const double score = std::abs(d);
        if (score > q_score) {
          q_score = score;
          q = j;
          q_dir = dir;
        }
      }
      if (q < 0) return LpStatus::kOptimal;  // optimal for current phase

      // Ratio test along direction q_dir for column q.
      double t_max = kInf;
      int leave_row = -1;
      double leave_bound = 0.0;  // bound hit by the leaving variable
      // Entering variable's own opposite bound allows a bound flip.
      const double range = ub_[static_cast<std::size_t>(q)] -
                           lb_[static_cast<std::size_t>(q)];
      bool flip = false;
      if (range < kInf) {
        t_max = range;
        flip = true;
      }
      for (int i = 0; i < m_; ++i) {
        const double y = at(i, q);
        if (std::abs(y) <= opt_.pivot_tol) continue;
        const int bj = basis_[static_cast<std::size_t>(i)];
        const double v = xval_[static_cast<std::size_t>(bj)];
        const double rate = -static_cast<double>(q_dir) * y;
        double t_i = kInf;
        double bound = 0.0;
        if (rate > 0.0) {
          if (ub_[static_cast<std::size_t>(bj)] < kInf) {
            t_i = (ub_[static_cast<std::size_t>(bj)] - v) / rate;
            bound = ub_[static_cast<std::size_t>(bj)];
          }
        } else {
          if (lb_[static_cast<std::size_t>(bj)] > -kInf) {
            t_i = (lb_[static_cast<std::size_t>(bj)] - v) / rate;
            bound = lb_[static_cast<std::size_t>(bj)];
          }
        }
        if (t_i < -1e-9) t_i = 0.0;  // numerical: already past the bound
        const bool better =
            t_i < t_max - 1e-12 ||
            (t_i < t_max + 1e-12 && leave_row >= 0 &&
             std::abs(y) > std::abs(at(leave_row, q)));
        if (better) {
          t_max = std::max(t_i, 0.0);
          leave_row = i;
          leave_bound = bound;
          flip = false;
        }
      }

      if (t_max == kInf) {
        return phase1 ? LpStatus::kInfeasible  // cannot happen: phase-1 obj
                                               // is bounded below by 0
                      : LpStatus::kUnbounded;
      }

      // Apply the step.
      const double step = static_cast<double>(q_dir) * t_max;
      for (int i = 0; i < m_; ++i) {
        const double y = at(i, q);
        if (y == 0.0) continue;
        const int bj = basis_[static_cast<std::size_t>(i)];
        xval_[static_cast<std::size_t>(bj)] -= step * y;
      }
      xval_[static_cast<std::size_t>(q)] += step;

      if (flip) {
        stat_[static_cast<std::size_t>(q)] =
            (q_dir > 0) ? ColStatus::kAtUpper : ColStatus::kAtLower;
        ++iterations_;
        continue;
      }

      // Pivot: q enters the basis at row leave_row; the old basic leaves
      // to the bound it hit.
      const int old_basic = basis_[static_cast<std::size_t>(leave_row)];
      xval_[static_cast<std::size_t>(old_basic)] = leave_bound;
      stat_[static_cast<std::size_t>(old_basic)] =
          (leave_bound == lb_[static_cast<std::size_t>(old_basic)])
              ? ColStatus::kAtLower
              : ColStatus::kAtUpper;
      pivot(leave_row, q, xval_[static_cast<std::size_t>(q)]);

      ++iterations_;
      if (t_max <= 1e-12) {
        ++degenerate_pivots_;
        if (++degen_streak > opt_.degen_streak_limit && !bland) {
          bland = true;
          bland_used_ = true;
          ++bland_activations_;
        }
      } else {
        degen_streak = 0;
        bland = false;
      }
    }
  }

  /// Row-reduces the tableau so column q becomes the unit column of
  /// `row`; updates basis bookkeeping, beta_, and reduced costs.
  void pivot(int row, int q, double entering_value) {
    const double p = at(row, q);
    LETDMA_ENSURE(std::abs(p) > opt_.pivot_tol, "pivot on a ~zero element");
    const double inv = 1.0 / p;
    double* prow =
        &tab_[static_cast<std::size_t>(row) * static_cast<std::size_t>(total_)];
    for (int j = 0; j < total_; ++j) prow[j] *= inv;
    beta_[static_cast<std::size_t>(row)] *= inv;
    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double f = at(i, q);
      if (f == 0.0) continue;
      double* irow =
          &tab_[static_cast<std::size_t>(i) * static_cast<std::size_t>(total_)];
      for (int j = 0; j < total_; ++j) irow[j] -= f * prow[j];
      beta_[static_cast<std::size_t>(i)] -=
          f * beta_[static_cast<std::size_t>(row)];
    }
    const double dq = dcost_[static_cast<std::size_t>(q)];
    if (dq != 0.0) {
      for (int j = 0; j < total_; ++j) {
        dcost_[static_cast<std::size_t>(j)] -= dq * prow[j];
      }
    }
    dcost_[static_cast<std::size_t>(q)] = 0.0;
    basis_[static_cast<std::size_t>(row)] = q;
    stat_[static_cast<std::size_t>(q)] = ColStatus::kBasic;
    xval_[static_cast<std::size_t>(q)] = entering_value;
  }

  LpResult finish(LpStatus st) {
    LpResult out;
    out.status = st;
    out.iterations = iterations_;
    out.degenerate_pivots = degenerate_pivots_;
    out.bland_used = bland_used_;
    if (degenerate_pivots_ > 0) {
      obs::Registry::instance().counter_add("milp.simplex.degenerate_pivots",
                                            degenerate_pivots_);
    }
    if (bland_activations_ > 0) {
      obs::Registry::instance().counter_add("milp.simplex.bland_activations",
                                            bland_activations_);
    }
    if (st == LpStatus::kOptimal) {
      recompute_basics();
      out.x.resize(static_cast<std::size_t>(n_));
      for (int j = 0; j < n_; ++j) {
        out.x[static_cast<std::size_t>(j)] =
            xval_[static_cast<std::size_t>(j)];
      }
      out.objective = model_.objective().evaluate(out.x);
    }
    return out;
  }

  const Model& model_;
  SimplexOptions opt_;
  int m_ = 0, n_ = 0, ncols_ = 0, num_art_ = 0, total_ = 0;
  std::vector<double> tab_;
  std::vector<double> beta_;  // B^{-1} b, kept in lockstep with tab_
  bool beta_empty_ = true;
  std::vector<double> rhs_model_;
  std::vector<double> lb_, ub_, xval_, cost_, dcost_;
  std::vector<int> basis_;
  std::vector<ColStatus> stat_;
  long iterations_ = 0;
  long degenerate_pivots_ = 0;
  long bland_activations_ = 0;
  bool bland_used_ = false;
};

}  // namespace

SimplexSolver::SimplexSolver(const Model& model, SimplexOptions options)
    : model_(model), options_(options) {}

LpResult SimplexSolver::solve() const {
  std::vector<double> lb(static_cast<std::size_t>(model_.num_vars()));
  std::vector<double> ub(static_cast<std::size_t>(model_.num_vars()));
  for (int j = 0; j < model_.num_vars(); ++j) {
    lb[static_cast<std::size_t>(j)] = model_.var(j).lb;
    ub[static_cast<std::size_t>(j)] = model_.var(j).ub;
  }
  return solve_with_bounds(lb, ub);
}

LpResult SimplexSolver::solve_with_bounds(
    const std::vector<double>& lb, const std::vector<double>& ub) const {
  LETDMA_ENSURE(static_cast<int>(lb.size()) == model_.num_vars() &&
                    static_cast<int>(ub.size()) == model_.num_vars(),
                "bound override vectors must match the variable count");
  for (int j = 0; j < model_.num_vars(); ++j) {
    if (lb[static_cast<std::size_t>(j)] > ub[static_cast<std::size_t>(j)]) {
      LpResult out;
      out.status = LpStatus::kInfeasible;
      return out;
    }
  }
  Tableau t(model_, options_, lb, ub);
  return t.run();
}

}  // namespace letdma::milp
