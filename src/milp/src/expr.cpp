#include "letdma/milp/expr.hpp"

#include <algorithm>
#include <cmath>

#include "letdma/support/error.hpp"

namespace letdma::milp {

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  constant_ += other.constant_;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& other) {
  for (const LinTerm& t : other.terms_) {
    terms_.push_back({-t.coef, t.var});
  }
  constant_ -= other.constant_;
  return *this;
}

LinExpr& LinExpr::operator*=(double k) {
  for (LinTerm& t : terms_) t.coef *= k;
  constant_ *= k;
  return *this;
}

void LinExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const LinTerm& a, const LinTerm& b) {
              return a.var.index < b.var.index;
            });
  std::vector<LinTerm> merged;
  merged.reserve(terms_.size());
  for (const LinTerm& t : terms_) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coef += t.coef;
    } else {
      merged.push_back(t);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const LinTerm& t) { return t.coef == 0.0; }),
               merged.end());
  terms_ = std::move(merged);
}

double LinExpr::evaluate(const std::vector<double>& x) const {
  double v = constant_;
  for (const LinTerm& t : terms_) {
    LETDMA_ENSURE(t.var.index >= 0 &&
                      t.var.index < static_cast<int>(x.size()),
                  "expression references a variable outside the assignment");
    v += t.coef * x[static_cast<std::size_t>(t.var.index)];
  }
  return v;
}

LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
LinExpr operator-(LinExpr a) { return a *= -1.0; }
LinExpr operator*(double k, LinExpr e) { return e *= k; }
LinExpr operator*(LinExpr e, double k) { return e *= k; }
LinExpr operator*(double k, Var v) { return LinExpr(v) *= k; }
LinExpr operator*(Var v, double k) { return LinExpr(v) *= k; }
LinExpr operator+(Var a, Var b) { return LinExpr(a) += LinExpr(b); }
LinExpr operator-(Var a, Var b) { return LinExpr(a) -= LinExpr(b); }

}  // namespace letdma::milp
