#include "letdma/milp/presolve.hpp"

#include <cmath>
#include <limits>

namespace letdma::milp {
namespace {

constexpr double kTol = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

PresolveResult presolve_bounds(const Model& model, int max_rounds) {
  PresolveResult out;
  const int n = model.num_vars();
  out.lb.resize(static_cast<std::size_t>(n));
  out.ub.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    out.lb[static_cast<std::size_t>(j)] = model.var(j).lb;
    out.ub[static_cast<std::size_t>(j)] = model.var(j).ub;
  }

  auto tighten = [&](int j, double new_lb, double new_ub) {
    double& l = out.lb[static_cast<std::size_t>(j)];
    double& u = out.ub[static_cast<std::size_t>(j)];
    if (model.var(j).type != VarType::kContinuous) {
      if (new_lb > -kInf) new_lb = std::ceil(new_lb - kTol);
      if (new_ub < kInf) new_ub = std::floor(new_ub + kTol);
    }
    if (new_lb > l + kTol) {
      l = new_lb;
      ++out.tightenings;
    }
    if (new_ub < u - kTol) {
      u = new_ub;
      ++out.tightenings;
    }
    if (l > u + kTol) out.infeasible = true;
  };

  for (out.rounds = 0; out.rounds < max_rounds && !out.infeasible;
       ++out.rounds) {
    const int before = out.tightenings;
    for (int r = 0; r < model.num_constraints() && !out.infeasible; ++r) {
      const ConstraintInfo& row = model.constraint(r);
      // Activity bounds of the row under current variable bounds.
      double act_lo = 0, act_hi = 0;
      for (const LinTerm& t : row.expr.terms()) {
        const double l = out.lb[static_cast<std::size_t>(t.var.index)];
        const double u = out.ub[static_cast<std::size_t>(t.var.index)];
        if (t.coef >= 0) {
          act_lo += t.coef * l;
          act_hi += t.coef * u;
        } else {
          act_lo += t.coef * u;
          act_hi += t.coef * l;
        }
      }
      const bool need_le =
          row.sense == Sense::kLe || row.sense == Sense::kEq;
      const bool need_ge =
          row.sense == Sense::kGe || row.sense == Sense::kEq;
      if (need_le && act_lo > row.rhs + 1e-7) {
        out.infeasible = true;
        break;
      }
      if (need_ge && act_hi < row.rhs - 1e-7) {
        out.infeasible = true;
        break;
      }
      // Per-variable propagation: remove the variable's own contribution
      // from the activity bound and solve the row for it.
      for (const LinTerm& t : row.expr.terms()) {
        if (std::abs(t.coef) < kTol) continue;
        const int j = t.var.index;
        const double l = out.lb[static_cast<std::size_t>(j)];
        const double u = out.ub[static_cast<std::size_t>(j)];
        const double lo_others =
            act_lo - (t.coef >= 0 ? t.coef * l : t.coef * u);
        const double hi_others =
            act_hi - (t.coef >= 0 ? t.coef * u : t.coef * l);
        if (need_le && lo_others > -kInf) {
          // coef*x <= rhs - lo_others
          const double room = row.rhs - lo_others;
          if (t.coef > 0) {
            tighten(j, -kInf, room / t.coef);
          } else {
            tighten(j, room / t.coef, kInf);
          }
        }
        if (need_ge && hi_others < kInf) {
          // coef*x >= rhs - hi_others
          const double room = row.rhs - hi_others;
          if (t.coef > 0) {
            tighten(j, room / t.coef, kInf);
          } else {
            tighten(j, -kInf, room / t.coef);
          }
        }
        if (out.infeasible) break;
      }
    }
    if (out.tightenings == before) break;  // fixpoint
  }
  return out;
}

}  // namespace letdma::milp
