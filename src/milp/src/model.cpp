#include "letdma/milp/model.hpp"

#include <cmath>
#include <sstream>

#include "letdma/support/error.hpp"

namespace letdma::milp {

Var Model::add_var(VarType type, double lb, double ub, std::string name) {
  LETDMA_ENSURE(lb <= ub, "variable `" + name + "` has lb > ub");
  if (type == VarType::kBinary) {
    LETDMA_ENSURE(lb >= 0.0 && ub <= 1.0,
                  "binary variable `" + name + "` with bounds outside [0,1]");
  }
  vars_.push_back({std::move(name), type, lb, ub});
  return Var{static_cast<int>(vars_.size()) - 1};
}

int Model::add_constraint(LinExpr expr, Sense sense, double rhs,
                          std::string name) {
  expr.normalize();
  for (const LinTerm& t : expr.terms()) {
    LETDMA_ENSURE(t.var.index >= 0 && t.var.index < num_vars(),
                  "constraint `" + name + "` references an unknown variable");
  }
  rhs -= expr.constant();
  LinExpr without_const;
  for (const LinTerm& t : expr.terms()) without_const.add_term(t.coef, t.var);
  rows_.push_back({std::move(name), std::move(without_const), sense, rhs});
  return static_cast<int>(rows_.size()) - 1;
}

void Model::set_objective(LinExpr expr, ObjSense sense) {
  expr.normalize();
  for (const LinTerm& t : expr.terms()) {
    LETDMA_ENSURE(t.var.index >= 0 && t.var.index < num_vars(),
                  "objective references an unknown variable");
  }
  objective_ = std::move(expr);
  obj_sense_ = sense;
}

void Model::set_var_bounds(Var v, double lb, double ub) {
  LETDMA_ENSURE(v.index >= 0 && v.index < num_vars(), "unknown variable");
  LETDMA_ENSURE(lb <= ub, "set_var_bounds with lb > ub");
  vars_[static_cast<std::size_t>(v.index)].lb = lb;
  vars_[static_cast<std::size_t>(v.index)].ub = ub;
}

const VarInfo& Model::var(Var v) const { return var(v.index); }

const VarInfo& Model::var(int index) const {
  LETDMA_ENSURE(index >= 0 && index < num_vars(), "unknown variable index");
  return vars_[static_cast<std::size_t>(index)];
}

const ConstraintInfo& Model::constraint(int row) const {
  LETDMA_ENSURE(row >= 0 && row < num_constraints(), "unknown row index");
  return rows_[static_cast<std::size_t>(row)];
}

bool Model::has_integer_vars() const {
  for (const VarInfo& v : vars_) {
    if (v.type != VarType::kContinuous) return true;
  }
  return false;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_vars()) return false;
  for (int j = 0; j < num_vars(); ++j) {
    const VarInfo& v = vars_[static_cast<std::size_t>(j)];
    const double xj = x[static_cast<std::size_t>(j)];
    if (xj < v.lb - tol || xj > v.ub + tol) return false;
    if (v.type != VarType::kContinuous &&
        std::abs(xj - std::round(xj)) > tol) {
      return false;
    }
  }
  for (const ConstraintInfo& row : rows_) {
    const double lhs = row.expr.evaluate(x);
    switch (row.sense) {
      case Sense::kLe:
        if (lhs > row.rhs + tol) return false;
        break;
      case Sense::kGe:
        if (lhs < row.rhs - tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

double Model::objective_value(const std::vector<double>& x) const {
  return objective_.evaluate(x);
}

namespace {
std::string sanitized(const std::string& name, int index, char prefix) {
  if (name.empty()) return std::string(1, prefix) + std::to_string(index);
  std::string out = name;
  for (char& c : out) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.')) {
      c = '_';
    }
  }
  return out;
}

void write_expr(std::ostream& os, const LinExpr& e, const Model& m) {
  bool first = true;
  for (const LinTerm& t : e.terms()) {
    if (t.coef >= 0 && !first) os << " + ";
    if (t.coef < 0) os << (first ? "- " : " - ");
    const double a = std::abs(t.coef);
    if (a != 1.0) os << a << " ";
    os << sanitized(m.var(t.var).name, t.var.index, 'x');
    first = false;
  }
  if (first) os << "0";
}
}  // namespace

std::string Model::to_lp_string() const {
  std::ostringstream os;
  os << (obj_sense_ == ObjSense::kMinimize ? "Minimize" : "Maximize")
     << "\n obj: ";
  write_expr(os, objective_, *this);
  os << "\nSubject To\n";
  for (int r = 0; r < num_constraints(); ++r) {
    const ConstraintInfo& row = rows_[static_cast<std::size_t>(r)];
    os << " " << sanitized(row.name, r, 'c') << ": ";
    write_expr(os, row.expr, *this);
    switch (row.sense) {
      case Sense::kLe: os << " <= "; break;
      case Sense::kGe: os << " >= "; break;
      case Sense::kEq: os << " = "; break;
    }
    os << row.rhs << "\n";
  }
  os << "Bounds\n";
  for (int j = 0; j < num_vars(); ++j) {
    const VarInfo& v = vars_[static_cast<std::size_t>(j)];
    os << " ";
    if (v.lb == -kInfinity) {
      os << "-inf <= ";
    } else {
      os << v.lb << " <= ";
    }
    os << sanitized(v.name, j, 'x') << " <= ";
    if (v.ub == kInfinity) {
      os << "+inf";
    } else {
      os << v.ub;
    }
    os << "\n";
  }
  os << "Generals\n";
  for (int j = 0; j < num_vars(); ++j) {
    const VarInfo& v = vars_[static_cast<std::size_t>(j)];
    if (v.type != VarType::kContinuous) {
      os << " " << sanitized(v.name, j, 'x') << "\n";
    }
  }
  os << "End\n";
  return os.str();
}

}  // namespace letdma::milp
