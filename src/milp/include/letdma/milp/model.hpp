// Mixed-integer linear program container.
//
// A Model owns variables (continuous / integer / binary, with bounds),
// linear constraints, and an optional linear objective. It is a passive
// data structure: solving is done by SimplexSolver (LP relaxation) and
// MilpSolver (branch & bound) which read the model.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "letdma/milp/expr.hpp"

namespace letdma::milp {

enum class VarType { kContinuous, kInteger, kBinary };
enum class Sense { kLe, kGe, kEq };
enum class ObjSense { kMinimize, kMaximize };

constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct VarInfo {
  std::string name;
  VarType type = VarType::kContinuous;
  double lb = 0.0;
  double ub = kInfinity;
};

struct ConstraintInfo {
  std::string name;
  LinExpr expr;  // normalized; constant folded into rhs
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

class Model {
 public:
  /// Adds a variable; returns its handle. lb <= ub required.
  Var add_var(VarType type, double lb, double ub, std::string name);

  Var add_binary(std::string name) {
    return add_var(VarType::kBinary, 0.0, 1.0, std::move(name));
  }
  Var add_integer(double lb, double ub, std::string name) {
    return add_var(VarType::kInteger, lb, ub, std::move(name));
  }
  Var add_continuous(double lb, double ub, std::string name) {
    return add_var(VarType::kContinuous, lb, ub, std::move(name));
  }

  /// Adds `expr sense rhs`; the expression's constant is folded into rhs.
  /// Returns the constraint row index.
  int add_constraint(LinExpr expr, Sense sense, double rhs, std::string name);

  /// Sets the objective; defaults to "minimize 0" (pure feasibility).
  void set_objective(LinExpr expr, ObjSense sense);

  /// Tightens the bounds of an existing variable (used by branch & bound).
  void set_var_bounds(Var v, double lb, double ub);

  int num_vars() const { return static_cast<int>(vars_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }
  const VarInfo& var(Var v) const;
  const VarInfo& var(int index) const;
  const ConstraintInfo& constraint(int row) const;
  const LinExpr& objective() const { return objective_; }
  ObjSense objective_sense() const { return obj_sense_; }
  bool has_integer_vars() const;

  /// True when x satisfies all bounds, integrality and constraints within
  /// `tol`. Used to vet warm starts and final solutions.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Objective value at x (respecting the stored sense; always the raw
  /// expression value, not negated).
  double objective_value(const std::vector<double>& x) const;

  /// Renders the model in (a dialect of) CPLEX LP format, for debugging.
  std::string to_lp_string() const;

 private:
  std::vector<VarInfo> vars_;
  std::vector<ConstraintInfo> rows_;
  LinExpr objective_;
  ObjSense obj_sense_ = ObjSense::kMinimize;
};

}  // namespace letdma::milp
