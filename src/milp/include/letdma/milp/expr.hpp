// Linear expressions over model variables.
//
// `LinExpr` is a sum of (coefficient, variable) terms plus a constant. It is
// the currency of the modeling API: constraints and objectives are built by
// composing expressions with the overloaded operators below, e.g.
//
//   model.add_constraint(2.0 * x + y - 3.0 * z, Sense::kLe, 10.0, "cap");
//
// Expressions keep duplicate terms until `normalize()` merges them; the
// Model normalizes on ingestion so user code never needs to care.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace letdma::milp {

/// Lightweight handle to a model variable (index into the owning Model).
struct Var {
  int index = -1;

  friend bool operator==(Var a, Var b) { return a.index == b.index; }
};

/// One linear term: coefficient * variable.
struct LinTerm {
  double coef = 0.0;
  Var var;
};

/// A linear expression: sum of terms plus a constant offset.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinExpr(Var v) { terms_.push_back({1.0, v}); }

  LinExpr& operator+=(const LinExpr& other);
  LinExpr& operator-=(const LinExpr& other);
  LinExpr& operator*=(double k);

  void add_term(double coef, Var v) { terms_.push_back({coef, v}); }

  /// Merges duplicate variables and drops zero coefficients.
  void normalize();

  const std::vector<LinTerm>& terms() const { return terms_; }
  double constant() const { return constant_; }

  /// Evaluates the expression at a full assignment (indexed by Var::index).
  double evaluate(const std::vector<double>& x) const;

 private:
  std::vector<LinTerm> terms_;
  double constant_ = 0.0;
};

LinExpr operator+(LinExpr a, const LinExpr& b);
LinExpr operator-(LinExpr a, const LinExpr& b);
LinExpr operator-(LinExpr a);
LinExpr operator*(double k, LinExpr e);
LinExpr operator*(LinExpr e, double k);
LinExpr operator*(double k, Var v);
LinExpr operator*(Var v, double k);
LinExpr operator+(Var a, Var b);
LinExpr operator-(Var a, Var b);

}  // namespace letdma::milp
