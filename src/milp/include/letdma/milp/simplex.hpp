// Bounded-variable primal simplex for LP relaxations.
//
// The solver works on the computational standard form
//
//   min c'x   s.t.  A x + s = b,   l <= (x, s) <= u
//
// where one slack `s_i` per row carries the row sense in its bounds
// (<=: s in [0, inf),  >=: s in (-inf, 0],  =: s fixed at 0). An initial
// basis of slacks is used where feasible; rows whose slack value would
// violate its bounds receive an artificial variable, and a phase-1
// objective drives all artificials to zero before phase 2 optimizes the
// real objective. A dense full tableau is maintained; Dantzig pricing with
// a Bland fallback guards against cycling.
//
// The instance sizes produced by the LET-DMA formulation (about 10^3 rows
// and columns) are well within dense-tableau territory; no sparse basis
// factorization is attempted.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "letdma/milp/model.hpp"

namespace letdma::milp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpResult {
  LpStatus status = LpStatus::kIterLimit;
  /// Objective in the *model's* sense (a maximization model reports the
  /// maximum here).
  double objective = 0.0;
  /// Values of the structural variables (size = model.num_vars()).
  std::vector<double> x;
  long iterations = 0;
  /// Pivots that made no progress (step length ~0); long streaks of these
  /// are the precursor to cycling.
  long degenerate_pivots = 0;
  /// Whether the Bland anti-cycling rule was ever engaged on this solve.
  bool bland_used = false;
};

struct SimplexOptions {
  long max_iterations = 2'000'000;
  double feas_tol = 1e-7;   // bound/row feasibility tolerance
  double opt_tol = 1e-9;    // reduced-cost optimality tolerance
  double pivot_tol = 1e-9;  // minimum pivot magnitude
  /// Consecutive degenerate pivots tolerated under Dantzig pricing before
  /// falling back to Bland's rule (which provably cannot cycle). The
  /// fallback disengages after the next improving step.
  long degen_streak_limit = 400;
};

/// Solves the LP relaxation of `model` (integrality dropped). Variable
/// bounds may be overridden per call, which is how branch & bound explores
/// nodes without copying the model.
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model, SimplexOptions options = {});

  /// Solves with the model's own bounds.
  LpResult solve() const;

  /// Solves with overriding bounds (both vectors sized model.num_vars()).
  LpResult solve_with_bounds(const std::vector<double>& lb,
                             const std::vector<double>& ub) const;

 private:
  const Model& model_;
  SimplexOptions options_;
};

}  // namespace letdma::milp
