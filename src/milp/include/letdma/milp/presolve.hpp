// Presolve: iterated bound propagation.
//
// For every row sum(a_j x_j) {<=,>=,==} b, the activity interval implied
// by the current variable bounds either proves the row (and model)
// infeasible or tightens individual variable bounds; integer variables
// additionally round their bounds inward. The propagation runs to a
// fixpoint (bounded by max_rounds) and is valid for branch & bound with
// lazy constraints: lazy rows only shrink the feasible set further.
//
// The model itself is not modified; the caller receives the tightened
// bound vectors (MilpSolver uses them as the root node's bounds).
#pragma once

#include <vector>

#include "letdma/milp/model.hpp"

namespace letdma::milp {

struct PresolveResult {
  bool infeasible = false;
  std::vector<double> lb;  // tightened bounds, size model.num_vars()
  std::vector<double> ub;
  int rounds = 0;          // propagation sweeps executed
  int tightenings = 0;     // individual bound improvements
};

PresolveResult presolve_bounds(const Model& model, int max_rounds = 10);

}  // namespace letdma::milp
