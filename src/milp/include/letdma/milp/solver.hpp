// Branch & bound MILP solver with lazy-constraint support.
//
// Node relaxations are solved by SimplexSolver with per-node bound
// overrides (no model copies). Node selection is best-bound with
// depth-first plunging so feasible incumbents appear early; branching picks
// the most fractional integer variable. Lazy constraints — used by the
// LET-DMA formulation for the cubic contiguity family (Constraint 6) — are
// requested from a callback whenever a node relaxation is integral; any
// returned rows are added globally and the node is re-solved.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "letdma/milp/model.hpp"
#include "letdma/milp/simplex.hpp"

namespace letdma::milp {

enum class MilpStatus {
  kOptimal,    // proved optimal (or proved feasible for pure feasibility)
  kFeasible,   // limit hit with an incumbent available
  kInfeasible, // proved infeasible
  kUnbounded,  // relaxation unbounded with no integer restriction binding
  kLimit,      // limit hit with no incumbent
};

struct MilpOptions {
  double time_limit_sec = 60.0;
  long node_limit = 1'000'000;
  double abs_gap = 1e-6;
  double rel_gap = 1e-6;
  double int_tol = 1e-6;  // integrality tolerance
  /// Emit per-improvement diagnostics through obs::log (category "milp");
  /// with no log sink attached these land on stderr in the standard
  /// "[letdma +t] I milp: ..." format.
  bool log = false;
  bool presolve = true;   // root bound propagation (see presolve.hpp)
  SimplexOptions lp;
  /// Cooperative cancellation: polled at every branch-and-bound node. On
  /// cancel the solve stops exactly like on a time limit — kFeasible with
  /// the incumbent when one exists, kLimit otherwise — and
  /// MilpStats::cancelled is set. Not owned; may be null.
  const std::atomic<bool>* stop = nullptr;
  /// Called on the solving thread for every incumbent improvement with the
  /// integer-snapped solution vector and the reported (model-sense)
  /// objective. Keep it cheap relative to a node solve.
  std::function<void(const std::vector<double>& x, double objective)>
      on_incumbent;
};

/// One incumbent improvement: when it landed and what it was worth
/// (objective in the model's sense).
struct IncumbentSample {
  double t_sec = 0.0;
  double objective = 0.0;
  long nodes = 0;
};

/// A periodic snapshot of solve progress (model-sense bound; gap as in
/// MilpResult::gap()). Sampled every 256 nodes while an incumbent exists,
/// capped so pathological runs cannot grow the vector unboundedly.
struct GapSample {
  double t_sec = 0.0;
  double gap = 0.0;
  double best_bound = 0.0;
  long nodes = 0;
};

struct MilpStats {
  long nodes_explored = 0;
  long lp_iterations = 0;
  int lazy_rows_added = 0;
  int separation_rounds = 0;  // lazy-callback rounds that returned rows
  double wall_sec = 0.0;
  bool cancelled = false;     // stopped early via MilpOptions::stop

  // Solve *behaviour* over time (Table-1-style incumbent trajectories).
  double first_incumbent_sec = -1.0;  // -1 when no incumbent was found
  std::vector<IncumbentSample> incumbents;
  std::vector<GapSample> gap_timeline;

  int incumbent_improvements() const {
    return static_cast<int>(incumbents.size());
  }
};

struct MilpResult {
  MilpStatus status = MilpStatus::kLimit;
  double objective = 0.0;   // incumbent objective (model sense)
  double best_bound = 0.0;  // proven bound (model sense)
  std::vector<double> x;    // incumbent (empty when none)
  MilpStats stats;

  bool has_solution() const { return !x.empty(); }
  /// Relative optimality gap; 0 when proved optimal, +inf with no incumbent.
  double gap() const;
};

/// A lazily separated row: expr sense rhs.
struct LazyRow {
  LinExpr expr;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Called on every integral relaxation solution; returns the violated rows
/// to add (empty = the point satisfies all lazy constraints and may become
/// the incumbent). Rows must be *globally valid* for the true feasible set.
/// The callback may also add *variables* to the model it captured before
/// returning rows that reference them; the solver re-reads the model size
/// after every separation round.
using LazyConstraintCallback =
    std::function<std::vector<LazyRow>(const std::vector<double>& x)>;

class MilpSolver {
 public:
  /// The model is held by reference and mutated only by lazy-row insertion.
  explicit MilpSolver(Model& model, MilpOptions options = {});

  /// Registers the lazy-constraint separator (optional).
  void set_lazy_callback(LazyConstraintCallback cb);

  /// Seeds the incumbent. The point must satisfy the model *and* the lazy
  /// callback; if it does not, it is rejected (returns false).
  bool set_warm_start(std::vector<double> x);

  MilpResult solve();

 private:
  Model& model_;
  MilpOptions options_;
  LazyConstraintCallback lazy_;
  std::vector<double> warm_start_;
};

}  // namespace letdma::milp
