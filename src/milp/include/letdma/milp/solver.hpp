// Branch & bound MILP solver with lazy-constraint support.
//
// Node relaxations are solved by SimplexSolver with per-node bound
// overrides (no model copies). Node selection is best-bound with
// depth-first plunging so feasible incumbents appear early; branching picks
// the most fractional integer variable. Lazy constraints — used by the
// LET-DMA formulation for the cubic contiguity family (Constraint 6) — are
// requested from a callback whenever a node relaxation is integral; any
// returned rows are added globally and the node is re-solved.
//
// With MilpOptions::threads != 1 the node loop runs as a worker pool over
// a shared best-bound queue: each worker owns a simplex workspace and
// pseudocost table, prunes against an atomic global incumbent, and fires
// lazy/incumbent callbacks under a callback mutex. An optional
// `deterministic` mode trades the plunging heuristic for thread-count
// independent, reproducible exploration (see DESIGN.md §10).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "letdma/milp/model.hpp"
#include "letdma/milp/simplex.hpp"

namespace letdma::milp {

enum class MilpStatus {
  kOptimal,    // proved optimal (or proved feasible for pure feasibility)
  kFeasible,   // limit hit with an incumbent available
  kInfeasible, // proved infeasible
  kUnbounded,  // relaxation unbounded with no integer restriction binding
  kLimit,      // limit hit with no incumbent
};

struct MilpOptions {
  double time_limit_sec = 60.0;
  long node_limit = 1'000'000;
  double abs_gap = 1e-6;
  double rel_gap = 1e-6;
  double int_tol = 1e-6;  // integrality tolerance
  /// Emit per-improvement diagnostics through obs::log (category "milp");
  /// with no log sink attached these land on stderr in the standard
  /// "[letdma +t] I milp: ..." format.
  bool log = false;
  bool presolve = true;   // root bound propagation (see presolve.hpp)
  SimplexOptions lp;
  /// Cooperative cancellation: polled at every branch-and-bound node. On
  /// cancel the solve stops exactly like on a time limit — kFeasible with
  /// the incumbent when one exists, kLimit otherwise — and
  /// MilpStats::cancelled is set. Not owned; may be null.
  const std::atomic<bool>* stop = nullptr;
  /// Called for every incumbent improvement with the integer-snapped
  /// solution vector and the reported (model-sense) objective. With
  /// `threads > 1` the callback fires from worker threads, serialized
  /// under the solver's callback mutex (never concurrently with itself or
  /// with the lazy callback). Keep it cheap relative to a node solve.
  std::function<void(const std::vector<double>& x, double objective)>
      on_incumbent;
  /// Branch-and-bound worker threads. 0 picks one worker per hardware
  /// thread (`std::thread::hardware_concurrency`). 1 runs the classic
  /// sequential node loop, preserving its deterministic node order
  /// bit-identically. Larger values explore a shared best-bound queue
  /// concurrently with per-worker simplex workspaces; node order then
  /// depends on timing unless `deterministic` is set.
  int threads = 0;
  /// Reproducible parallel search: nodes are popped in best-bound order in
  /// fixed-size epochs, relaxations solve concurrently against an
  /// epoch-start snapshot, and all side effects (incumbents, lazy rows,
  /// pseudocosts, child pushes) commit sequentially in pop order. The
  /// exploration — and therefore the result — is identical for every
  /// `threads` value, at the cost of the plunging heuristic.
  bool deterministic = false;
  /// Nodes popped per epoch in deterministic mode. Thread-count
  /// independent so the work schedule is too.
  int deterministic_batch = 8;
};

/// One incumbent improvement: when it landed and what it was worth
/// (objective in the model's sense).
struct IncumbentSample {
  double t_sec = 0.0;
  double objective = 0.0;
  long nodes = 0;
};

/// A periodic snapshot of solve progress (model-sense bound; gap as in
/// MilpResult::gap()). Sampled every 256 nodes while an incumbent exists,
/// capped so pathological runs cannot grow the vector unboundedly.
struct GapSample {
  double t_sec = 0.0;
  double gap = 0.0;
  double best_bound = 0.0;
  long nodes = 0;
};

/// One worker's slice of a solve. Sequential solves report a single entry
/// (worker 0); parallel solves one per spawned worker.
struct WorkerStats {
  int worker = 0;
  long nodes_explored = 0;
  long lp_iterations = 0;
  long nodes_pruned = 0;     // dropped against the incumbent bound
  int incumbents_found = 0;  // improvements this worker committed
};

struct MilpStats {
  long nodes_explored = 0;
  long lp_iterations = 0;
  long nodes_pruned = 0;      // bound-pruned nodes, merged across workers
  int lazy_rows_added = 0;
  int separation_rounds = 0;  // lazy-callback rounds that returned rows
  double wall_sec = 0.0;
  bool cancelled = false;     // stopped early via MilpOptions::stop
  int threads_used = 1;       // resolved worker count for this solve
  std::vector<WorkerStats> per_worker;

  // Solve *behaviour* over time (Table-1-style incumbent trajectories).
  double first_incumbent_sec = -1.0;  // -1 when no incumbent was found
  std::vector<IncumbentSample> incumbents;
  std::vector<GapSample> gap_timeline;

  int incumbent_improvements() const {
    return static_cast<int>(incumbents.size());
  }
};

struct MilpResult {
  MilpStatus status = MilpStatus::kLimit;
  double objective = 0.0;   // incumbent objective (model sense)
  double best_bound = 0.0;  // proven bound (model sense)
  std::vector<double> x;    // incumbent (empty when none)
  MilpStats stats;

  bool has_solution() const { return !x.empty(); }
  /// Relative optimality gap; 0 when proved optimal, +inf with no incumbent.
  double gap() const;
};

/// A lazily separated row: expr sense rhs.
struct LazyRow {
  LinExpr expr;
  Sense sense = Sense::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Called on every integral relaxation solution; returns the violated rows
/// to add (empty = the point satisfies all lazy constraints and may become
/// the incumbent). Rows must be *globally valid* for the true feasible set.
/// The callback may also add *variables* to the model it captured before
/// returning rows that reference them; the solver re-reads the model size
/// after every separation round.
using LazyConstraintCallback =
    std::function<std::vector<LazyRow>(const std::vector<double>& x)>;

class MilpSolver {
 public:
  /// The model is held by reference and mutated only by lazy-row insertion.
  explicit MilpSolver(Model& model, MilpOptions options = {});

  /// Registers the lazy-constraint separator (optional).
  void set_lazy_callback(LazyConstraintCallback cb);

  /// Seeds the incumbent. The point must satisfy the model *and* the lazy
  /// callback; if it does not, it is rejected (returns false).
  bool set_warm_start(std::vector<double> x);

  MilpResult solve();

 private:
  Model& model_;
  MilpOptions options_;
  LazyConstraintCallback lazy_;
  std::vector<double> warm_start_;
};

}  // namespace letdma::milp
