#include "letdma/analysis/protocol_rta.hpp"

#include <algorithm>
#include <limits>

#include "letdma/support/error.hpp"
#include "letdma/support/math.hpp"

namespace letdma::analysis {

std::vector<LetInterference> let_interference(
    const let::LetComms& comms, const let::TransferSchedule& schedule) {
  const model::Application& app = comms.app();
  const model::Platform& plat = app.platform();
  const model::DmaParams& dma = plat.dma();

  std::vector<LetInterference> out(
      static_cast<std::size_t>(plat.num_cores()));
  for (const Time t : comms.required_instants()) {
    if (!schedule.has_instant(t)) continue;
    const auto& transfers = schedule.at(t);
    std::vector<Time> demand(static_cast<std::size_t>(plat.num_cores()), 0);
    for (std::size_t g = 0; g < transfers.size(); ++g) {
      const int prog =
          plat.core_of(transfers[g].local_mem).value;
      demand[static_cast<std::size_t>(prog)] += dma.programming_overhead;
      const int isr =
          (g + 1 < transfers.size())
              ? plat.core_of(transfers[g + 1].local_mem).value
              : prog;
      demand[static_cast<std::size_t>(isr)] += dma.isr_overhead;
    }
    for (int k = 0; k < plat.num_cores(); ++k) {
      if (demand[static_cast<std::size_t>(k)] > 0) {
        out[static_cast<std::size_t>(k)].demands.push_back(
            {t, demand[static_cast<std::size_t>(k)]});
      }
    }
  }

  const Time h = app.hyperperiod();
  for (LetInterference& li : out) {
    for (const LetDemand& d : li.demands) {
      li.max_burst = std::max(li.max_burst, d.cpu_time);
    }
    if (li.demands.size() <= 1) {
      // One demanding instant per hyperperiod: it recurs with period H.
      li.min_separation = li.demands.empty() ? 0 : h;
      continue;
    }
    Time min_gap = std::numeric_limits<Time>::max();
    for (std::size_t i = 0; i + 1 < li.demands.size(); ++i) {
      min_gap = std::min(min_gap,
                         li.demands[i + 1].instant - li.demands[i].instant);
    }
    // Wrap-around to the next hyperperiod.
    min_gap = std::min(min_gap, h + li.demands.front().instant -
                                    li.demands.back().instant);
    li.min_separation = min_gap;
  }
  return out;
}

Time max_demand_in_window(const LetInterference& li, Time window,
                          Time hyperperiod) {
  LETDMA_ENSURE(window >= 0, "negative window");
  LETDMA_ENSURE(hyperperiod > 0, "hyperperiod must be positive");
  if (window == 0 || li.demands.empty()) return 0;

  // Unroll the periodic calendar far enough to cover a window starting
  // anywhere in the first hyperperiod.
  const std::int64_t periods =
      support::ceil_div(window, hyperperiod) + 1;
  std::vector<LetDemand> unrolled;
  unrolled.reserve(li.demands.size() * static_cast<std::size_t>(periods));
  for (std::int64_t p = 0; p < periods; ++p) {
    for (const LetDemand& d : li.demands) {
      unrolled.push_back({d.instant + p * hyperperiod, d.cpu_time});
    }
  }
  // Prefix sums + binary search: the maximum is attained by a window
  // starting at a demand instant of the first period.
  std::vector<Time> prefix(unrolled.size() + 1, 0);
  for (std::size_t i = 0; i < unrolled.size(); ++i) {
    prefix[i + 1] = prefix[i] + unrolled[i].cpu_time;
  }
  Time best = 0;
  for (std::size_t anchor = 0; anchor < li.demands.size(); ++anchor) {
    const Time start = unrolled[anchor].instant;
    const auto end_it = std::lower_bound(
        unrolled.begin(), unrolled.end(), start + window,
        [](const LetDemand& d, Time v) { return d.instant < v; });
    const std::size_t end =
        static_cast<std::size_t>(end_it - unrolled.begin());
    best = std::max(best, prefix[end] - prefix[anchor]);
  }
  return best;
}

namespace {

/// Response-time recurrence with calendar-exact LET interference.
std::optional<Time> response_time_with_dbf(
    const TaskParams& task, const std::vector<TaskParams>& higher,
    const LetInterference& li, Time hyperperiod, Time cap) {
  Time w = task.wcet;
  for (;;) {
    Time next = task.wcet + max_demand_in_window(li, w, hyperperiod);
    for (const TaskParams& h : higher) {
      next += support::ceil_div(w + h.jitter, h.period) * h.wcet;
    }
    if (next + task.jitter > cap) return std::nullopt;
    if (next == w) return next + task.jitter;
    w = next;
  }
}

}  // namespace

RtaResult analyze_with_protocol(const let::LetComms& comms,
                                const let::TransferSchedule& schedule,
                                let::ReadinessSemantics semantics,
                                InterferenceModel model) {
  const model::Application& app = comms.app();
  const std::vector<LetInterference> interference =
      let_interference(comms, schedule);
  const std::vector<Time> jitter =
      let::worst_case_latencies(comms, schedule, semantics);
  const Time h = app.hyperperiod();

  RtaResult out;
  out.schedulable = true;
  for (int k = 0; k < app.platform().num_cores(); ++k) {
    std::vector<TaskParams> higher;
    const LetInterference& li =
        interference[static_cast<std::size_t>(k)];
    if (model == InterferenceModel::kSporadic && li.active()) {
      LETDMA_ENSURE(li.min_separation > 0,
                    "LET interference with zero separation");
      higher.push_back(
          {li.max_burst, li.min_separation, 0, li.min_separation});
    }
    for (const model::TaskId tid : app.tasks_on(model::CoreId{k})) {
      const model::Task& t = app.task(tid);
      const Time j = jitter[static_cast<std::size_t>(tid.value)];
      const TaskParams params{t.wcet, t.period, j, t.period};
      const auto r = model == InterferenceModel::kDemandBound
                         ? response_time_with_dbf(params, higher, li, h,
                                                  t.period)
                         : response_time(params, higher, t.period);
      if (r.has_value()) {
        out.response[tid.value] = *r;
        out.slack[tid.value] = t.period - *r;
      } else {
        out.schedulable = false;
        out.slack[tid.value] = -1;
      }
      higher.push_back(params);
    }
  }
  return out;
}

}  // namespace letdma::analysis
