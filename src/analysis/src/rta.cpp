#include "letdma/analysis/rta.hpp"

#include "letdma/support/error.hpp"
#include "letdma/support/math.hpp"

namespace letdma::analysis {

std::optional<Time> response_time(
    const TaskParams& task, const std::vector<TaskParams>& higher_priority,
    Time cap) {
  LETDMA_ENSURE(task.wcet >= 0 && task.period > 0,
                "response_time needs wcet >= 0 and period > 0");
  Time w = task.wcet;
  for (;;) {
    Time next = task.wcet;
    for (const TaskParams& h : higher_priority) {
      LETDMA_ENSURE(h.period > 0, "interfering task needs a positive period");
      next += support::ceil_div(w + h.jitter, h.period) * h.wcet;
    }
    if (next + task.jitter > cap) return std::nullopt;
    if (next == w) return next + task.jitter;
    w = next;
  }
}

RtaResult analyze(const model::Application& app,
                  const std::map<int, Time>& jitter) {
  RtaResult out;
  out.schedulable = true;
  auto jitter_of = [&](int id) {
    const auto it = jitter.find(id);
    return it == jitter.end() ? Time{0} : it->second;
  };
  for (int k = 0; k < app.platform().num_cores(); ++k) {
    const auto core_tasks = app.tasks_on(model::CoreId{k});  // by priority
    std::vector<TaskParams> higher;
    for (const model::TaskId tid : core_tasks) {
      const model::Task& t = app.task(tid);
      const TaskParams params{t.wcet, t.period, jitter_of(tid.value),
                              t.period};
      const auto r = response_time(params, higher, t.period);
      if (r.has_value()) {
        out.response[tid.value] = *r;
        out.slack[tid.value] = t.period - *r;
      } else {
        out.schedulable = false;
        out.slack[tid.value] = -1;
      }
      higher.push_back(params);
    }
  }
  return out;
}

SensitivityResult acquisition_deadlines(const model::Application& app,
                                        double alpha) {
  LETDMA_ENSURE(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0, 1]");
  SensitivityResult out;
  const RtaResult base = analyze(app);
  if (!base.schedulable) return out;
  std::map<int, Time> jitter;
  for (const auto& [task, slack] : base.slack) {
    const Time gamma = static_cast<Time>(alpha * static_cast<double>(slack));
    out.gamma[task] = gamma;
    jitter[task] = gamma;
  }
  const RtaResult with_jitter = analyze(app, jitter);
  out.feasible = with_jitter.schedulable;
  return out;
}

void apply_acquisition_deadlines(model::Application& app,
                                 const std::map<int, Time>& gamma) {
  for (const auto& [task, g] : gamma) {
    app.set_acquisition_deadline(model::TaskId{task}, g);
  }
}

}  // namespace letdma::analysis
