// Response-time analysis for partitioned fixed-priority periodic tasks with
// release jitter, plus the acquisition-deadline sensitivity procedure of
// Section VII.
//
// The classic recurrence (Audsley et al.) is used per core:
//   w = C_i + sum_{j in hp(i)} ceil((w + J_j) / T_j) * C_j
//   R_i = J_i + w
// A task set is schedulable when R_i <= D_i (= T_i) for every task. The
// data-acquisition latency of the LET protocol acts as release jitter, so
// gamma_i bounds J_i.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "letdma/model/application.hpp"

namespace letdma::analysis {

using support::Time;

/// Analysis view of one task.
struct TaskParams {
  Time wcet = 0;
  Time period = 0;
  Time jitter = 0;
  Time deadline = 0;  // relative; 0 means "= period"
};

/// Worst-case response time of `task` under interference from
/// `higher_priority` tasks on the same core. Returns nullopt when the
/// recurrence exceeds `cap` (unschedulable).
std::optional<Time> response_time(const TaskParams& task,
                                  const std::vector<TaskParams>& higher_priority,
                                  Time cap);

struct RtaResult {
  bool schedulable = false;
  /// Per TaskId::value; only present when the recurrence converged.
  std::map<int, Time> response;
  std::map<int, Time> slack;  // D_i - R_i (may be negative when missed)
};

/// Full-application RTA; `jitter` (per TaskId::value) defaults to zero.
RtaResult analyze(const model::Application& app,
                  const std::map<int, Time>& jitter = {});

struct SensitivityResult {
  bool feasible = false;
  /// gamma_i = alpha * S_i per TaskId::value (S_i from the zero-jitter RTA).
  std::map<int, Time> gamma;
};

/// The paper's sensitivity procedure: compute zero-jitter slacks, set
/// gamma_i = alpha * S_i, and re-run the RTA with J_i = gamma_i. Feasible
/// when both analyses converge schedulably.
SensitivityResult acquisition_deadlines(const model::Application& app,
                                        double alpha);

/// Applies a gamma assignment to the application's tasks.
void apply_acquisition_deadlines(model::Application& app,
                                 const std::map<int, Time>& gamma);

}  // namespace letdma::analysis
