// Protocol-aware schedulability analysis (Section V-C).
//
// Under the proposed protocol two effects act on the application tasks:
//   1. the LET task of each core (and the DMA completion ISRs charged to
//      it) preempt everything at the highest priority — the LET task
//      behaves as a generalized multiframe task whose execution segments
//      can each be modeled as an independent sporadic interferer;
//   2. every communicating task suffers a release jitter equal to its
//      worst-case data-acquisition latency lambda_i.
//
// This module extracts the per-core LET interference from a concrete
// transfer schedule and runs the response-time analysis with both effects
// applied. The interference model is a sound coarse bound: per core, one
// sporadic interferer whose cost is the largest single-instant CPU demand
// of the LET machinery on that core and whose minimum inter-arrival is the
// smallest gap between two instants with non-zero demand. The exact
// per-instant demand list is also exposed for finer-grained analyses.
#pragma once

#include <vector>

#include "letdma/analysis/rta.hpp"
#include "letdma/let/latency.hpp"

namespace letdma::analysis {

/// CPU demand of the LET machinery on one core at one instant.
struct LetDemand {
  Time instant = 0;
  Time cpu_time = 0;  // o_DP per programmed transfer + o_ISR per ISR
};

/// Aggregate sporadic bound of the per-core LET interference.
struct LetInterference {
  Time max_burst = 0;       // largest single-instant demand
  Time min_separation = 0;  // smallest gap between demanding instants
  std::vector<LetDemand> demands;  // full per-instant list

  bool active() const { return max_burst > 0; }
};

/// Per-core (indexed by CoreId::value) LET interference induced by a
/// transfer schedule, mirroring the simulator's charging rules: o_DP on
/// the core whose local memory a transfer touches, o_ISR on the core that
/// dispatches the next transfer (the programming core for the last one).
std::vector<LetInterference> let_interference(
    const let::LetComms& comms, const let::TransferSchedule& schedule);

/// Maximum CPU demand of the LET machinery in ANY window of length
/// `window`, computed exactly from the per-instant demand calendar (which
/// repeats with `hyperperiod`). Tighter than the sporadic
/// (max_burst, min_separation) bound.
Time max_demand_in_window(const LetInterference& li, Time window,
                          Time hyperperiod);

/// How the LET interference enters the response-time recurrence.
enum class InterferenceModel {
  kSporadic,     // one sporadic task (max_burst, min_separation) — Sec. V-C
  kDemandBound,  // exact calendar demand in the response window (tighter)
};

/// Full protocol-aware analysis: response times with (a) highest-priority
/// LET interference per core and (b) release jitter equal to each task's
/// worst-case data-acquisition latency under `semantics`.
RtaResult analyze_with_protocol(
    const let::LetComms& comms, const let::TransferSchedule& schedule,
    let::ReadinessSemantics semantics = let::ReadinessSemantics::kProposed,
    InterferenceModel model = InterferenceModel::kSporadic);

}  // namespace letdma::analysis
