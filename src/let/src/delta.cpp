#include "letdma/let/delta.hpp"

#include <algorithm>
#include <chrono>
#include <climits>

#include "letdma/obs/histogram.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {

DeltaEvaluator::DeltaEvaluator(const CompiledComms& compiled,
                               std::vector<std::vector<int>> groups,
                               LocalSearchGoal goal)
    : compiled_(&compiled), goal_(goal), groups_(std::move(groups)) {
  for (const std::vector<int>& g : groups_) {
    LETDMA_ENSURE(!g.empty(), "delta evaluation needs non-empty groups");
  }
  const std::size_t labels = static_cast<std::size_t>(compiled_->num_labels());
  const std::size_t tasks = static_cast<std::size_t>(compiled_->num_tasks());
  cand_label_pos_.resize(labels, -1);
  label_epoch_.resize(labels, 0);
  ready_.resize(tasks, 0);
  ready_stamp_.resize(tasks, 0);
  reset_state();
}

void DeltaEvaluator::reset_state() {
  const std::size_t labels = static_cast<std::size_t>(compiled_->num_labels());
  const std::size_t tasks = static_cast<std::size_t>(compiled_->num_tasks());
  label_pos_.assign(labels, -1);
  label_write_.assign(labels, -1);
  label_read_min_.assign(labels, INT_MAX);
  task_write_max_.assign(tasks, -1);
  task_read_min_.assign(tasks, INT_MAX);
  int pos = 0;
  for (int gi = 0; gi < num_groups(); ++gi) {
    for (const int c : groups_[static_cast<std::size_t>(gi)]) {
      const std::size_t l = static_cast<std::size_t>(compiled_->label_of(c));
      const std::size_t t = static_cast<std::size_t>(compiled_->task_of(c));
      if (label_pos_[l] < 0) label_pos_[l] = pos++;
      if (compiled_->is_write(c)) {
        task_write_max_[t] = std::max(task_write_max_[t], gi);
        label_write_[l] = gi;
      } else {
        task_read_min_[t] = std::min(task_read_min_[t], gi);
        label_read_min_[l] = std::min(label_read_min_[l], gi);
      }
    }
  }
  decomp_.assign(groups_.size(), {});
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    compiled_->decompose_group(groups_[gi], label_pos_, &decomp_[gi]);
  }
}

DeltaEval DeltaEvaluator::evaluate_current() {
  // Full Properties 1-2 check (the seed's order_feasible on the whole
  // partition); incremental rules take over once this holds.
  for (std::size_t t = 0; t < task_write_max_.size(); ++t) {
    if (task_write_max_[t] >= 0 && task_read_min_[t] != INT_MAX &&
        task_write_max_[t] >= task_read_min_[t]) {
      return {};
    }
  }
  for (std::size_t l = 0; l < label_write_.size(); ++l) {
    if (label_write_[l] >= 0 && label_read_min_[l] != INT_MAX &&
        label_write_[l] >= label_read_min_[l]) {
      return {};
    }
  }
  view_.clear();
  for (const std::vector<CompiledTransfer>& d : decomp_) view_.push_back(&d);
  return sweep();
}

bool DeltaEvaluator::move_order_feasible(const ScheduleDelta& move) const {
  // The current partition is feasible; a move can only create a violation
  // through the content it repositions, and only in the direction that
  // moves writes later or reads earlier.
  switch (move.kind) {
    case ScheduleDelta::Kind::kSplit:
      return true;
    case ScheduleDelta::Kind::kRelocate: {
      const int i = move.from, j = move.to;
      const std::vector<int>& g = groups_[static_cast<std::size_t>(i)];
      if (group_is_write(i)) {
        if (j <= i) return true;  // writes moving earlier are always safe
        for (const int c : g) {
          if (task_read_min_[static_cast<std::size_t>(
                  compiled_->task_of(c))] <= j ||
              label_read_min_[static_cast<std::size_t>(
                  compiled_->label_of(c))] <= j) {
            return false;
          }
        }
        return true;
      }
      if (j >= i) return true;  // reads moving later are always safe
      for (const int c : g) {
        if (task_write_max_[static_cast<std::size_t>(
                compiled_->task_of(c))] >= j ||
            label_write_[static_cast<std::size_t>(compiled_->label_of(c))] >=
                j) {
          return false;
        }
      }
      return true;
    }
    case ScheduleDelta::Kind::kMerge: {
      const int i = move.from, j = move.to;
      if (group_is_write(i)) return true;  // write merges move writes earlier
      for (const int c : groups_[static_cast<std::size_t>(j)]) {
        if (task_write_max_[static_cast<std::size_t>(
                compiled_->task_of(c))] >= i ||
            label_write_[static_cast<std::size_t>(compiled_->label_of(c))] >=
                i) {
          return false;
        }
      }
      return true;
    }
  }
  return true;
}

bool DeltaEvaluator::assign_candidate_positions() {
  ++label_gen_;
  int pos = 0;
  bool changed = false;
  for (const std::vector<int>* g : order_) {
    for (const int c : *g) {
      const std::size_t l = static_cast<std::size_t>(compiled_->label_of(c));
      if (label_epoch_[l] == label_gen_) continue;
      label_epoch_[l] = label_gen_;
      cand_label_pos_[l] = pos++;
      changed = changed || cand_label_pos_[l] != label_pos_[l];
    }
  }
  return changed;
}

DeltaEval DeltaEvaluator::evaluate(const ScheduleDelta& move) {
  if (!move_order_feasible(move)) return {};

  // Sampled timing: full clock reads on every call would cost a visible
  // fraction of the ~O(|group|) evaluation itself; 1-in-64 keeps the
  // percentiles honest and the overhead invisible.
  const bool timed = (eval_calls_++ & 0x3F) == 0;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};

  const int n = num_groups();
  order_.clear();
  src_.clear();
  switch (move.kind) {
    case ScheduleDelta::Kind::kRelocate: {
      for (int g = 0; g < n; ++g) {
        if (g == move.from) continue;
        order_.push_back(&groups_[static_cast<std::size_t>(g)]);
        src_.push_back(g);
      }
      order_.insert(order_.begin() + move.to,
                    &groups_[static_cast<std::size_t>(move.from)]);
      src_.insert(src_.begin() + move.to, move.from);
      break;
    }
    case ScheduleDelta::Kind::kMerge: {
      merged_scratch_ = groups_[static_cast<std::size_t>(move.from)];
      const std::vector<int>& b = groups_[static_cast<std::size_t>(move.to)];
      merged_scratch_.insert(merged_scratch_.end(), b.begin(), b.end());
      for (int g = 0; g < n; ++g) {
        if (g == move.to) continue;
        if (g == move.from) {
          order_.push_back(&merged_scratch_);
          src_.push_back(-1);
        } else {
          order_.push_back(&groups_[static_cast<std::size_t>(g)]);
          src_.push_back(g);
        }
      }
      break;
    }
    case ScheduleDelta::Kind::kSplit: {
      const std::vector<int>& g = groups_[static_cast<std::size_t>(move.from)];
      const std::size_t half = g.size() / 2;
      head_scratch_.assign(g.begin(),
                           g.begin() + static_cast<std::ptrdiff_t>(half));
      tail_scratch_.assign(g.begin() + static_cast<std::ptrdiff_t>(half),
                           g.end());
      for (int gi = 0; gi < n; ++gi) {
        if (gi == move.from) {
          order_.push_back(&head_scratch_);
          src_.push_back(-1);
          order_.push_back(&tail_scratch_);
          src_.push_back(-1);
        } else {
          order_.push_back(&groups_[static_cast<std::size_t>(gi)]);
          src_.push_back(gi);
        }
      }
      break;
    }
  }

  const bool layout_changed = assign_candidate_positions();
  view_.clear();
  // Pre-size the scratch pool: view_ keeps pointers to its elements, so it
  // must not reallocate while candidates are being decomposed.
  if (scratch_decomp_.size() < order_.size()) {
    scratch_decomp_.resize(order_.size());
  }
  std::size_t scratch_used = 0;
  std::int64_t hits = 0;
  for (std::size_t e = 0; e < order_.size(); ++e) {
    bool dirty = src_[e] < 0;
    if (!dirty && layout_changed) {
      for (const int c : *order_[e]) {
        const std::size_t l =
            static_cast<std::size_t>(compiled_->label_of(c));
        if (cand_label_pos_[l] != label_pos_[l]) {
          dirty = true;
          break;
        }
      }
    }
    if (!dirty) {
      ++hits;
      view_.push_back(&decomp_[static_cast<std::size_t>(src_[e])]);
      continue;
    }
    std::vector<CompiledTransfer>& slot = scratch_decomp_[scratch_used++];
    slot.clear();
    compiled_->decompose_group(*order_[e], cand_label_pos_, &slot);
    view_.push_back(&slot);
  }
  // Two relaxed adds per evaluate, not per group: the hit path is a bare
  // pointer push and must stay that way.
  static obs::Counter cache_hits("let.delta.cache_hits");
  static obs::Counter cache_misses("let.delta.cache_misses");
  cache_hits.add(hits);
  cache_misses.add(static_cast<std::int64_t>(order_.size()) - hits);

  const DeltaEval result = sweep();
  if (timed) {
    static obs::Histogram eval_us("let.delta.eval_us");
    eval_us.record(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }
  return result;
}

DeltaEval DeltaEvaluator::sweep() {
  DeltaEval ev;
  int transfer_count = 0;
  if (goal_ == LocalSearchGoal::kMinTransfers) {
    for (const std::vector<CompiledTransfer>* d : view_) {
      transfer_count += static_cast<int>(d->size());
    }
    if (!compiled_->any_deadline()) {
      ev.feasible = true;
      ev.objective = static_cast<double>(transfer_count);
      return ev;
    }
  }

  const int classes = compiled_->num_classes();
  const int cw = compiled_->comm_words();
  const int tw = compiled_->task_words();
  const Time overhead = compiled_->per_transfer_overhead();
  double worst_ratio = 0.0;
  for (int cls = 0; cls < classes; ++cls) {
    ++sweep_gen_;
    Time acc = 0;
    const std::uint64_t* act = compiled_->active_row(cls);
    for (const std::vector<CompiledTransfer>* transfers : view_) {
      for (const CompiledTransfer& tr : *transfers) {
        bool full = true, any = false;
        for (int w = 0; w < cw; ++w) {
          const std::uint64_t inter =
              tr.comm_mask[static_cast<std::size_t>(w)] &
              act[static_cast<std::size_t>(w)];
          any = any || inter != 0;
          full = full && inter == tr.comm_mask[static_cast<std::size_t>(w)];
        }
        if (!any) continue;
        if (full) {
          acc += tr.duration;
          for (int w = 0; w < tw; ++w) {
            std::uint64_t bits = tr.task_mask[static_cast<std::size_t>(w)];
            while (bits != 0) {
              const int task = w * 64 + __builtin_ctzll(bits);
              bits &= bits - 1;
              ready_[static_cast<std::size_t>(task)] = acc;
              ready_stamp_[static_cast<std::size_t>(task)] = sweep_gen_;
            }
          }
          continue;
        }
        // Partial restriction: the present comms form maximal
        // list-consecutive runs (the transfer is contiguous in both
        // memories), one derived piece per run.
        std::size_t i = 0;
        while (i < tr.comms.size()) {
          if (!compiled_->active(tr.comms[i], cls)) {
            ++i;
            continue;
          }
          std::size_t j = i;
          std::int64_t bytes = 0;
          while (j < tr.comms.size() && compiled_->active(tr.comms[j], cls)) {
            bytes += compiled_->size_bytes(tr.comms[j]);
            ++j;
          }
          acc += overhead + compiled_->copy_time(bytes);
          for (std::size_t k = i; k < j; ++k) {
            const std::size_t task =
                static_cast<std::size_t>(compiled_->task_of(tr.comms[k]));
            ready_[task] = acc;
            ready_stamp_[task] = sweep_gen_;
          }
          i = j;
        }
      }
    }
    for (const int task : compiled_->released_tasks(cls)) {
      const std::size_t t = static_cast<std::size_t>(task);
      const Time lam = ready_stamp_[t] == sweep_gen_ ? ready_[t] : 0;
      const Time deadline = compiled_->deadline(task);
      if (deadline >= 0 && lam > deadline) return ev;  // infeasible
      worst_ratio = std::max(
          worst_ratio, static_cast<double>(lam) /
                           static_cast<double>(compiled_->period(task)));
    }
  }
  ev.feasible = true;
  ev.objective = goal_ == LocalSearchGoal::kMinTransfers
                     ? static_cast<double>(transfer_count)
                     : worst_ratio;
  return ev;
}

void DeltaEvaluator::apply(const ScheduleDelta& move) {
  switch (move.kind) {
    case ScheduleDelta::Kind::kRelocate: {
      std::vector<int> moved =
          std::move(groups_[static_cast<std::size_t>(move.from)]);
      groups_.erase(groups_.begin() + move.from);
      groups_.insert(groups_.begin() + move.to, std::move(moved));
      break;
    }
    case ScheduleDelta::Kind::kMerge: {
      std::vector<int>& dst = groups_[static_cast<std::size_t>(move.from)];
      const std::vector<int>& b = groups_[static_cast<std::size_t>(move.to)];
      dst.insert(dst.end(), b.begin(), b.end());
      groups_.erase(groups_.begin() + move.to);
      break;
    }
    case ScheduleDelta::Kind::kSplit: {
      std::vector<int>& g = groups_[static_cast<std::size_t>(move.from)];
      const std::size_t half = g.size() / 2;
      std::vector<int> tail(g.begin() + static_cast<std::ptrdiff_t>(half),
                            g.end());
      g.resize(half);
      groups_.insert(groups_.begin() + move.from + 1, std::move(tail));
      break;
    }
  }
  reset_state();
}

std::vector<std::vector<Communication>> DeltaEvaluator::groups_as_comms()
    const {
  std::vector<std::vector<Communication>> out;
  out.reserve(groups_.size());
  for (const std::vector<int>& g : groups_) {
    std::vector<Communication> comms;
    comms.reserve(g.size());
    for (const int c : g) comms.push_back(compiled_->comm(c));
    out.push_back(std::move(comms));
  }
  return out;
}

ScheduleResult DeltaEvaluator::materialize() const {
  return build_from_groups_compiled(*compiled_, groups_as_comms());
}

}  // namespace letdma::let
