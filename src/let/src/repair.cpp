#include "letdma/let/repair.hpp"

#include <map>
#include <vector>

#include "letdma/let/compiled.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

using Groups = std::vector<std::vector<Communication>>;

/// Stable topological legalization of a single-direction group sequence.
/// Write groups keep their relative order; each read group is placed
/// directly after the last write group it depends on (per-task and
/// per-label write-before-read, strict). Returns true when the order
/// changed.
bool legalize_order(Groups* groups) {
  const int n = static_cast<int>(groups->size());
  // Positions of write groups in write-subsequence order, and for every
  // task/label the write-subsequence index of its latest write group.
  std::vector<int> write_groups;  // group index per write-subsequence slot
  std::map<int, int> task_write_slot;   // task -> latest write slot
  std::map<int, int> label_write_slot;  // label -> write slot
  std::vector<int> kind(static_cast<std::size_t>(n), 0);  // 0=read, 1=write
  for (int gi = 0; gi < n; ++gi) {
    const auto& g = (*groups)[static_cast<std::size_t>(gi)];
    if (g.empty() || g.front().dir != Direction::kWrite) continue;
    kind[static_cast<std::size_t>(gi)] = 1;
    const int slot = static_cast<int>(write_groups.size());
    write_groups.push_back(gi);
    for (const Communication& c : g) {
      task_write_slot[c.task.value] = slot;
      label_write_slot[c.label.value] = slot;
    }
  }
  // dep[gi] for a read group: the write slot it must follow (-1 = none).
  // Bucket reads by dep, preserving their relative order.
  const int num_writes = static_cast<int>(write_groups.size());
  std::vector<std::vector<int>> buckets(
      static_cast<std::size_t>(num_writes) + 1);
  for (int gi = 0; gi < n; ++gi) {
    if (kind[static_cast<std::size_t>(gi)] == 1) continue;
    int dep = -1;
    for (const Communication& c :
         (*groups)[static_cast<std::size_t>(gi)]) {
      if (auto it = task_write_slot.find(c.task.value);
          it != task_write_slot.end()) {
        dep = std::max(dep, it->second);
      }
      if (auto it = label_write_slot.find(c.label.value);
          it != label_write_slot.end()) {
        dep = std::max(dep, it->second);
      }
    }
    buckets[static_cast<std::size_t>(dep + 1)].push_back(gi);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int gi : buckets[0]) order.push_back(gi);
  for (int slot = 0; slot < num_writes; ++slot) {
    order.push_back(write_groups[static_cast<std::size_t>(slot)]);
    for (int gi : buckets[static_cast<std::size_t>(slot) + 1]) {
      order.push_back(gi);
    }
  }
  bool changed = false;
  for (int i = 0; i < n; ++i) {
    if (order[static_cast<std::size_t>(i)] != i) {
      changed = true;
      break;
    }
  }
  if (!changed) return false;
  Groups reordered;
  reordered.reserve(static_cast<std::size_t>(n));
  for (int gi : order) {
    reordered.push_back(std::move((*groups)[static_cast<std::size_t>(gi)]));
  }
  *groups = std::move(reordered);
  return true;
}

int map_index(const std::vector<int>& map, int idx) {
  if (map.empty()) return idx;  // identity diff
  if (idx < 0 || idx >= static_cast<int>(map.size())) return -1;
  return map[static_cast<std::size_t>(idx)];
}

}  // namespace

ScheduleResult warm_start(const CompiledComms& compiled,
                          const ScheduleResult& prev,
                          const model::ApplicationDiff* diff,
                          WarmStartStats* stats) {
  WarmStartStats local;
  WarmStartStats& st = stats != nullptr ? *stats : local;
  st = WarmStartStats{};

  // Membership of the new instance's C(s0), by canonical comm identity.
  std::map<Communication, int> new_index;
  const auto& new_comms = compiled.let_comms().comms_at_s0();
  for (int c = 0; c < compiled.num_comms(); ++c) {
    new_index.emplace(new_comms[static_cast<std::size_t>(c)], c);
  }

  std::vector<char> covered(static_cast<std::size_t>(compiled.num_comms()), 0);
  Groups groups;
  st.prev_groups = static_cast<int>(prev.s0_transfers.size());
  for (const DmaTransfer& t : prev.s0_transfers) {
    std::vector<Communication> group;
    group.reserve(t.comms.size());
    for (const Communication& old_c : t.comms) {
      Communication c = old_c;
      if (diff != nullptr) {
        const int task = map_index(diff->task_map, old_c.task.value);
        const int label = map_index(diff->label_map, old_c.label.value);
        if (task < 0 || label < 0) {
          ++st.comms_dropped;
          continue;
        }
        c.task = model::TaskId{task};
        c.label = model::LabelId{label};
      }
      const auto it = new_index.find(c);
      if (it == new_index.end() || covered[static_cast<std::size_t>(it->second)]) {
        // Dropped: the comm no longer exists at s0 on the new instance
        // (label no longer inter-core, reader gone) or was already carried.
        ++st.comms_dropped;
        continue;
      }
      covered[static_cast<std::size_t>(it->second)] = 1;
      group.push_back(c);
      ++st.comms_carried;
    }
    if (!group.empty()) {
      groups.push_back(std::move(group));
      ++st.groups_kept;
    }
  }
  // Communications the previous schedule does not cover (added by the
  // diff, or newly inter-core) join as singleton groups; legalization
  // places them legally and the search may merge them.
  for (int c = 0; c < compiled.num_comms(); ++c) {
    if (covered[static_cast<std::size_t>(c)]) continue;
    groups.push_back({compiled.comm(c)});
    ++st.comms_added;
  }

  st.order_legalized = legalize_order(&groups);
  static obs::Counter carried("let.warmstart.comms_carried");
  static obs::Counter dropped("let.warmstart.comms_dropped");
  static obs::Counter added("let.warmstart.comms_added");
  carried.add(st.comms_carried);
  dropped.add(st.comms_dropped);
  added.add(st.comms_added);
  return build_from_groups_compiled(compiled, groups);
}

RepairResult repair(const CompiledComms& compiled, const ScheduleResult& prev,
                    const model::ApplicationDiff* diff,
                    LocalSearchOptions options) {
  RepairResult out{
      /*repaired=*/false, WarmStartStats{},
      LocalSearchResult{ScheduleResult{MemoryLayout(compiled.app()), {}, {}},
                        0.0, 0, 0}};
  static obs::Counter accepted("let.repair.accepted");
  static obs::Counter rejected("let.repair.seed_rejected");
  ScheduleResult seed{MemoryLayout(compiled.app()), {}, {}};
  try {
    seed = warm_start(compiled, prev, diff, &out.stats);
  } catch (const support::Error&) {
    rejected.add();
    return out;
  }
  if (seed.s0_transfers.empty()) {
    // Nothing to schedule on the new instance; the empty schedule is the
    // (trivially optimal) repair.
    out.repaired = true;
    out.result.schedule = std::move(seed);
    out.result.objective = 0.0;
    return out;
  }
  try {
    out.result = improve_schedule(compiled, seed, options);
    out.repaired = true;
    accepted.add();
  } catch (const support::Error&) {
    // The seed does not rebuild feasibly (deadline-infeasible placement the
    // local moves cannot reach from); report not-repaired so the caller
    // falls through to a cold solve.
    rejected.add();
  }
  return out;
}

}  // namespace letdma::let
