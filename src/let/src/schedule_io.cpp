#include "letdma/let/schedule_io.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "letdma/guard/faults.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

using support::ParseError;
using support::PreconditionError;

[[noreturn]] void fail(int line, const std::string& what) {
  throw ParseError(line, what);
}

std::vector<std::string> split(const std::string& v, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : v) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string slot_token(const model::Application& app, const Slot& s) {
  const std::string label = app.label(s.label).name;
  if (s.owner.value < 0) return label;
  return label + "@" + app.task(s.owner).name;
}

std::string comm_token(const model::Application& app,
                       const Communication& c) {
  if (c.dir == Direction::kWrite) {
    return "W:" + app.task(c.task).name + ":" + app.label(c.label).name;
  }
  return "R:" + app.label(c.label).name + ":" + app.task(c.task).name;
}

model::LabelId find_label(const model::Application& app,
                          const std::string& name, int line) {
  for (int l = 0; l < app.num_labels(); ++l) {
    if (app.label(model::LabelId{l}).name == name) return model::LabelId{l};
  }
  fail(line, "unknown label `" + name + "`");
}

}  // namespace

std::string write_schedule(const model::Application& app,
                           const ScheduleResult& schedule) {
  std::ostringstream os;
  os << "# letdma schedule v1\n";
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    const model::MemoryId mem{m};
    if (!schedule.layout.has_order(mem) ||
        schedule.layout.order(mem).empty()) {
      continue;
    }
    os << "layout mem=" << app.platform().memory_name(mem) << " slots=";
    const auto& order = schedule.layout.order(mem);
    for (std::size_t i = 0; i < order.size(); ++i) {
      os << (i ? "," : "") << slot_token(app, order[i]);
    }
    os << "\n";
  }
  for (const DmaTransfer& t : schedule.s0_transfers) {
    os << "transfer dir=" << (t.dir == Direction::kWrite ? "W" : "R")
       << " comms=";
    for (std::size_t i = 0; i < t.comms.size(); ++i) {
      os << (i ? "," : "") << comm_token(app, t.comms[i]);
    }
    os << "\n";
  }
  return os.str();
}

ScheduleResult read_schedule(const LetComms& comms, const std::string& text) {
  const model::Application& app = comms.app();
  ScheduleResult out{MemoryLayout(app), {}, {}};

  auto memory_by_name = [&](const std::string& name,
                            int line) -> model::MemoryId {
    for (int m = 0; m < app.platform().num_memories(); ++m) {
      if (app.platform().memory_name(model::MemoryId{m}) == name) {
        return model::MemoryId{m};
      }
    }
    fail(line, "unknown memory `" + name + "`");
  };

  std::string effective = text;
  if (const auto fault = guard::fault_point("io.parse");
      fault == guard::FaultKind::kTruncate) {
    effective.resize(effective.size() / 2);
  }
  std::istringstream is(effective);
  std::string line;
  int line_no = 0;
  std::vector<std::vector<Communication>> transfer_comms;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;

    std::map<std::string, std::string> fields;
    std::string token;
    while (ls >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(line_no, "expected key=value, got `" + token + "`");
      }
      const std::string key = token.substr(0, eq);
      if (!fields.emplace(key, token.substr(eq + 1)).second) {
        fail(line_no, "duplicate key `" + key + "`");
      }
    }

    if (directive == "layout") {
      if (!fields.count("mem") || !fields.count("slots")) {
        fail(line_no, "layout needs mem= and slots=");
      }
      const model::MemoryId mem = memory_by_name(fields["mem"], line_no);
      if (out.layout.has_order(mem)) {
        fail(line_no, "duplicate layout for memory `" + fields["mem"] + "`");
      }
      std::vector<Slot> slots;
      for (const std::string& s : split(fields["slots"], ',')) {
        if (s.empty()) fail(line_no, "empty slot token");
        const std::size_t at = s.find('@');
        Slot slot;
        if (at == std::string::npos) {
          slot = Slot{find_label(app, s, line_no), model::TaskId{-1}};
        } else {
          slot = Slot{find_label(app, s.substr(0, at), line_no),
                      [&] {
                        try {
                          return app.find_task(s.substr(at + 1));
                        } catch (const support::Error&) {
                          fail(line_no,
                               "unknown task `" + s.substr(at + 1) + "`");
                        }
                      }()};
        }
        slots.push_back(slot);
      }
      try {
        out.layout.set_order(mem, std::move(slots));
      } catch (const support::Error& e) {
        fail(line_no, e.what());
      }
    } else if (directive == "transfer") {
      if (!fields.count("comms")) fail(line_no, "transfer needs comms=");
      std::vector<Communication> cs;
      for (const std::string& c : split(fields["comms"], ',')) {
        const std::vector<std::string> parts = split(c, ':');
        if (parts.size() != 3) {
          fail(line_no, "bad communication token `" + c + "`");
        }
        Communication comm;
        try {
          if (parts[0] == "W") {
            comm = {Direction::kWrite, app.find_task(parts[1]),
                    find_label(app, parts[2], line_no)};
          } else if (parts[0] == "R") {
            comm = {Direction::kRead, app.find_task(parts[2]),
                    find_label(app, parts[1], line_no)};
          } else {
            fail(line_no, "direction must be W or R in `" + c + "`");
          }
        } catch (const ParseError&) {
          throw;
        } catch (const support::Error& e) {
          fail(line_no, e.what());
        }
        cs.push_back(comm);
      }
      transfer_comms.push_back(std::move(cs));
    } else {
      fail(line_no, "unknown directive `" + directive + "`");
    }
  }

  for (std::vector<Communication>& cs : transfer_comms) {
    try {
      out.s0_transfers.push_back(make_transfer(out.layout, std::move(cs)));
    } catch (const support::Error& e) {
      throw ParseError(0, std::string("invalid transfer: ") + e.what());
    }
  }
  try {
    out.schedule = derive_schedule(comms, out.layout, out.s0_transfers);
  } catch (const support::Error& e) {
    // A document can be token-wise well-formed yet describe a schedule the
    // hyperperiod expansion rejects; surface that as malformed input too.
    throw ParseError(0, std::string("invalid schedule: ") + e.what());
  }
  return out;
}

}  // namespace letdma::let
