#include "letdma/let/eta.hpp"

#include <algorithm>

#include "letdma/support/error.hpp"
#include "letdma/support/math.hpp"

namespace letdma::let {

std::int64_t eta_write(std::int64_t v, Time producer_period,
                       Time consumer_period) {
  LETDMA_ENSURE(producer_period > 0 && consumer_period > 0,
                "eta_write requires positive periods");
  LETDMA_ENSURE(v >= 0, "eta_write requires a non-negative job index");
  if (producer_period < consumer_period) {
    return support::floor_div(
        support::checked_mul(v, consumer_period), producer_period);
  }
  return v;
}

std::int64_t eta_read(std::int64_t v, Time producer_period,
                      Time consumer_period) {
  LETDMA_ENSURE(producer_period > 0 && consumer_period > 0,
                "eta_read requires positive periods");
  LETDMA_ENSURE(v >= 0, "eta_read requires a non-negative job index");
  if (consumer_period < producer_period) {
    return support::ceil_div(
        support::checked_mul(v, producer_period), consumer_period);
  }
  return v;
}

namespace {
std::vector<Time> unique_sorted(std::vector<Time> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}
}  // namespace

std::vector<Time> write_instants(Time producer_period, Time consumer_period,
                                 Time horizon) {
  LETDMA_ENSURE(horizon > 0 && horizon % producer_period == 0 &&
                    horizon % consumer_period == 0,
                "horizon must be a common multiple of both periods");
  std::vector<Time> out;
  const std::int64_t consumer_jobs = horizon / consumer_period;
  out.reserve(static_cast<std::size_t>(consumer_jobs));
  for (std::int64_t v = 0; v < consumer_jobs; ++v) {
    const std::int64_t job = eta_write(v, producer_period, consumer_period);
    out.push_back((job * producer_period) % horizon);
  }
  return unique_sorted(std::move(out));
}

std::vector<Time> read_instants(Time producer_period, Time consumer_period,
                                Time horizon) {
  LETDMA_ENSURE(horizon > 0 && horizon % producer_period == 0 &&
                    horizon % consumer_period == 0,
                "horizon must be a common multiple of both periods");
  std::vector<Time> out;
  const std::int64_t producer_jobs = horizon / producer_period;
  out.reserve(static_cast<std::size_t>(producer_jobs));
  for (std::int64_t v = 0; v < producer_jobs; ++v) {
    const std::int64_t job = eta_read(v, producer_period, consumer_period);
    out.push_back((job * consumer_period) % horizon);
  }
  return unique_sorted(std::move(out));
}

}  // namespace letdma::let
