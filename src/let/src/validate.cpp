#include "letdma/let/validate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

std::string at_time(Time t) { return " at t=" + support::format_time(t); }

}  // namespace

const char* rule_name(Rule rule) {
  switch (rule) {
    case Rule::kLayoutMissing: return "layout-missing";
    case Rule::kCoverage: return "coverage";
    case Rule::kDuplicateComm: return "duplicate-communication";
    case Rule::kMalformedTransfer: return "malformed-transfer";
    case Rule::kProperty1: return "property-1";
    case Rule::kProperty2: return "property-2";
    case Rule::kProperty3: return "property-3";
    case Rule::kDeadline: return "deadline";
    case Rule::kTheorem1: return "theorem-1";
  }
  return "?";
}

std::string ValidationReport::summary() const {
  if (ok()) return "OK";
  std::ostringstream os;
  os << issues.size() << " issue(s):\n";
  for (const std::string& s : issues) os << "  - " << s << "\n";
  return os.str();
}

bool ValidationReport::violates(Rule rule) const {
  return std::any_of(violations.begin(), violations.end(),
                     [rule](const Violation& v) { return v.rule == rule; });
}

ValidationReport validate_schedule(const LetComms& comms,
                                   const MemoryLayout& layout,
                                   const TransferSchedule& schedule,
                                   ValidationOptions options) {
  const model::Application& app = comms.app();
  const LatencyModel lat(app.platform());
  ValidationReport report;
  auto issue = [&](Violation v) {
    report.issues.push_back(v.message);
    report.violations.push_back(std::move(v));
  };

  // Layout completeness for every memory that must hold slots.
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    if (!layout.has_order(model::MemoryId{m})) {
      Violation v;
      v.rule = Rule::kLayoutMissing;
      v.message = "memory " + app.platform().memory_name(model::MemoryId{m}) +
                  " has no slot order";
      issue(std::move(v));
    }
  }
  if (!report.ok()) return report;

  const std::vector<Time>& instants = comms.required_instants();
  const Time h = app.hyperperiod();

  // Baseline latency at s0 for the Theorem-1 comparison.
  std::map<int, Time> s0_latency;
  if (!instants.empty() && schedule.has_instant(instants.front())) {
    for (int i = 0; i < app.num_tasks(); ++i) {
      s0_latency[i] = lat.task_latency(schedule.at(instants.front()),
                                       model::TaskId{i}, options.semantics);
    }
  }

  for (std::size_t idx = 0; idx < instants.size(); ++idx) {
    const Time t = instants[idx];
    if (!schedule.has_instant(t)) {
      Violation v;
      v.rule = Rule::kCoverage;
      v.instant = t;
      v.message = "no transfer list" + at_time(t);
      issue(std::move(v));
      continue;
    }
    const auto& transfers = schedule.at(t);

    // Coverage: union of transfer comms == C(t), no duplicates.
    std::vector<Communication> carried;
    for (const DmaTransfer& d : transfers) {
      carried.insert(carried.end(), d.comms.begin(), d.comms.end());
    }
    std::vector<Communication> sorted_carried = carried;
    std::sort(sorted_carried.begin(), sorted_carried.end());
    const auto dup = std::adjacent_find(sorted_carried.begin(),
                                        sorted_carried.end());
    if (dup != sorted_carried.end()) {
      Violation v;
      v.rule = Rule::kDuplicateComm;
      v.instant = t;
      v.task = dup->task.value;
      v.label = dup->label.value;
      v.message = "communication " + to_string(app, *dup) +
                  " is carried twice" + at_time(t);
      issue(std::move(v));
    }
    const std::vector<Communication> needed = comms.comms_at(t);
    if (sorted_carried != needed) {
      Violation v;
      v.rule = Rule::kCoverage;
      v.instant = t;
      // Name one witness: a needed communication that is not carried (or,
      // failing that, a carried one that is not needed).
      std::vector<Communication> missing;
      std::set_difference(needed.begin(), needed.end(),
                          sorted_carried.begin(), sorted_carried.end(),
                          std::back_inserter(missing));
      if (missing.empty()) {
        std::set_difference(sorted_carried.begin(), sorted_carried.end(),
                            needed.begin(), needed.end(),
                            std::back_inserter(missing));
      }
      if (!missing.empty()) {
        v.task = missing.front().task.value;
        v.label = missing.front().label.value;
      }
      v.message = "carried communications differ from C(t)" + at_time(t);
      issue(std::move(v));
    }

    // Transfer well-formedness (delegates to make_transfer's checks).
    for (std::size_t g = 0; g < transfers.size(); ++g) {
      const DmaTransfer& d = transfers[g];
      try {
        const DmaTransfer rebuilt = make_transfer(layout, d.comms);
        if (rebuilt.bytes != d.bytes || rebuilt.local_addr != d.local_addr ||
            rebuilt.global_addr != d.global_addr) {
          Violation v;
          v.rule = Rule::kMalformedTransfer;
          v.instant = t;
          v.transfer = static_cast<int>(g);
          if (!d.comms.empty()) v.label = d.comms.front().label.value;
          v.message = "transfer metadata inconsistent with layout" +
                      at_time(t);
          issue(std::move(v));
        }
      } catch (const support::Error& e) {
        Violation v;
        v.rule = Rule::kMalformedTransfer;
        v.instant = t;
        v.transfer = static_cast<int>(g);
        if (!d.comms.empty()) v.label = d.comms.front().label.value;
        v.message =
            std::string("malformed transfer") + at_time(t) + ": " + e.what();
        issue(std::move(v));
      }
    }

    // Properties 1 and 2 on the transfer order.
    std::map<int, int> max_write_of_task;   // task -> max transfer index
    std::map<int, int> min_read_of_task;    // task -> min transfer index
    std::map<int, int> write_of_label;      // label -> transfer index
    std::map<int, int> min_read_of_label;   // label -> min transfer index
    for (std::size_t g = 0; g < transfers.size(); ++g) {
      for (const Communication& c : transfers[g].comms) {
        const int gi = static_cast<int>(g);
        if (c.dir == Direction::kWrite) {
          auto [it, inserted] = max_write_of_task.try_emplace(c.task.value, gi);
          if (!inserted) it->second = std::max(it->second, gi);
          write_of_label[c.label.value] = gi;
        } else {
          auto [it, inserted] = min_read_of_task.try_emplace(c.task.value, gi);
          if (!inserted) it->second = std::min(it->second, gi);
          auto [lt, linserted] =
              min_read_of_label.try_emplace(c.label.value, gi);
          if (!linserted) lt->second = std::min(lt->second, gi);
        }
      }
    }
    for (const auto& [task, wmax] : max_write_of_task) {
      const auto it = min_read_of_task.find(task);
      if (it != min_read_of_task.end() && wmax >= it->second) {
        Violation v;
        v.rule = Rule::kProperty1;
        v.instant = t;
        v.task = task;
        v.transfer = wmax;
        v.slack = static_cast<double>(it->second - wmax - 1);
        v.message = "Property 1 violated for task " +
                    app.task(model::TaskId{task}).name + at_time(t);
        issue(std::move(v));
      }
    }
    for (const auto& [label, wg] : write_of_label) {
      const auto it = min_read_of_label.find(label);
      if (it != min_read_of_label.end() && wg >= it->second) {
        Violation v;
        v.rule = Rule::kProperty2;
        v.instant = t;
        v.label = label;
        v.transfer = wg;
        v.slack = static_cast<double>(it->second - wg - 1);
        v.message = "Property 2 violated for label " +
                    app.label(model::LabelId{label}).name + at_time(t);
        issue(std::move(v));
      }
    }

    // Property 3: everything finishes before the next instant of T*.
    if (options.check_slot_capacity) {
      const Time next =
          (idx + 1 < instants.size()) ? instants[idx + 1] : h + instants[0];
      const Time total = lat.total_duration(transfers);
      if (total > next - t) {
        Violation v;
        v.rule = Rule::kProperty3;
        v.instant = t;
        v.slack = static_cast<double>((next - t) - total);
        v.message = "Property 3 violated: transfers take " +
                    support::format_time(total) + " but the slot is " +
                    support::format_time(next - t) + at_time(t);
        issue(std::move(v));
      }
    }

    // Deadlines and Theorem 1.
    for (int i = 0; i < app.num_tasks(); ++i) {
      const model::Task& task = app.task(model::TaskId{i});
      if (t % task.period != 0) continue;  // not a release of this task
      const Time l =
          lat.task_latency(transfers, model::TaskId{i}, options.semantics);
      if (options.check_deadlines && task.acquisition_deadline &&
          l > *task.acquisition_deadline) {
        Violation v;
        v.rule = Rule::kDeadline;
        v.instant = t;
        v.task = i;
        v.slack = static_cast<double>(*task.acquisition_deadline - l);
        v.message = "acquisition deadline of " + task.name + " exceeded (" +
                    support::format_time(l) + " > " +
                    support::format_time(*task.acquisition_deadline) + ")" +
                    at_time(t);
        issue(std::move(v));
      }
      if (options.check_theorem1 && s0_latency.count(i) > 0 &&
          l > s0_latency[i]) {
        Violation v;
        v.rule = Rule::kTheorem1;
        v.instant = t;
        v.task = i;
        v.slack = static_cast<double>(s0_latency[i] - l);
        v.message = "Theorem 1 violated for " + task.name + ": latency " +
                    support::format_time(l) + " exceeds s0 latency " +
                    support::format_time(s0_latency[i]) + at_time(t);
        issue(std::move(v));
      }
    }
  }
  return report;
}

}  // namespace letdma::let
