#include "letdma/let/validate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

std::string at_time(Time t) { return " at t=" + support::format_time(t); }

}  // namespace

std::string ValidationReport::summary() const {
  if (ok()) return "OK";
  std::ostringstream os;
  os << issues.size() << " issue(s):\n";
  for (const std::string& s : issues) os << "  - " << s << "\n";
  return os.str();
}

ValidationReport validate_schedule(const LetComms& comms,
                                   const MemoryLayout& layout,
                                   const TransferSchedule& schedule,
                                   ValidationOptions options) {
  const model::Application& app = comms.app();
  const LatencyModel lat(app.platform());
  ValidationReport report;
  auto issue = [&](const std::string& s) { report.issues.push_back(s); };

  // Layout completeness for every memory that must hold slots.
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    if (!layout.has_order(model::MemoryId{m})) {
      issue("memory " + app.platform().memory_name(model::MemoryId{m}) +
            " has no slot order");
    }
  }
  if (!report.ok()) return report;

  const std::vector<Time>& instants = comms.required_instants();
  const Time h = app.hyperperiod();

  // Baseline latency at s0 for the Theorem-1 comparison.
  std::map<int, Time> s0_latency;
  if (!instants.empty() && schedule.has_instant(instants.front())) {
    for (int i = 0; i < app.num_tasks(); ++i) {
      s0_latency[i] = lat.task_latency(app, schedule.at(instants.front()),
                                       model::TaskId{i}, options.semantics);
    }
  }

  for (std::size_t idx = 0; idx < instants.size(); ++idx) {
    const Time t = instants[idx];
    if (!schedule.has_instant(t)) {
      issue("no transfer list" + at_time(t));
      continue;
    }
    const auto& transfers = schedule.at(t);

    // Coverage: union of transfer comms == C(t), no duplicates.
    std::vector<Communication> carried;
    for (const DmaTransfer& d : transfers) {
      carried.insert(carried.end(), d.comms.begin(), d.comms.end());
    }
    std::vector<Communication> sorted_carried = carried;
    std::sort(sorted_carried.begin(), sorted_carried.end());
    if (std::adjacent_find(sorted_carried.begin(), sorted_carried.end()) !=
        sorted_carried.end()) {
      issue("a communication is carried twice" + at_time(t));
    }
    const std::vector<Communication> needed = comms.comms_at(t);
    if (sorted_carried != needed) {
      issue("carried communications differ from C(t)" + at_time(t));
    }

    // Transfer well-formedness (delegates to make_transfer's checks).
    for (const DmaTransfer& d : transfers) {
      try {
        const DmaTransfer rebuilt = make_transfer(layout, d.comms);
        if (rebuilt.bytes != d.bytes || rebuilt.local_addr != d.local_addr ||
            rebuilt.global_addr != d.global_addr) {
          issue("transfer metadata inconsistent with layout" + at_time(t));
        }
      } catch (const support::Error& e) {
        issue(std::string("malformed transfer") + at_time(t) + ": " +
              e.what());
      }
    }

    // Properties 1 and 2 on the transfer order.
    std::map<int, int> max_write_of_task;   // task -> max transfer index
    std::map<int, int> min_read_of_task;    // task -> min transfer index
    std::map<int, int> write_of_label;      // label -> transfer index
    std::map<int, int> min_read_of_label;   // label -> min transfer index
    for (std::size_t g = 0; g < transfers.size(); ++g) {
      for (const Communication& c : transfers[g].comms) {
        const int gi = static_cast<int>(g);
        if (c.dir == Direction::kWrite) {
          auto [it, inserted] = max_write_of_task.try_emplace(c.task.value, gi);
          if (!inserted) it->second = std::max(it->second, gi);
          write_of_label[c.label.value] = gi;
        } else {
          auto [it, inserted] = min_read_of_task.try_emplace(c.task.value, gi);
          if (!inserted) it->second = std::min(it->second, gi);
          auto [lt, linserted] =
              min_read_of_label.try_emplace(c.label.value, gi);
          if (!linserted) lt->second = std::min(lt->second, gi);
        }
      }
    }
    for (const auto& [task, wmax] : max_write_of_task) {
      const auto it = min_read_of_task.find(task);
      if (it != min_read_of_task.end() && wmax >= it->second) {
        issue("Property 1 violated for task " +
              app.task(model::TaskId{task}).name + at_time(t));
      }
    }
    for (const auto& [label, wg] : write_of_label) {
      const auto it = min_read_of_label.find(label);
      if (it != min_read_of_label.end() && wg >= it->second) {
        issue("Property 2 violated for label " +
              app.label(model::LabelId{label}).name + at_time(t));
      }
    }

    // Property 3: everything finishes before the next instant of T*.
    if (options.check_slot_capacity) {
      const Time next =
          (idx + 1 < instants.size()) ? instants[idx + 1] : h + instants[0];
      const Time total = lat.total_duration(transfers);
      if (total > next - t) {
        issue("Property 3 violated: transfers take " +
              support::format_time(total) + " but the slot is " +
              support::format_time(next - t) + at_time(t));
      }
    }

    // Deadlines and Theorem 1.
    for (int i = 0; i < app.num_tasks(); ++i) {
      const model::Task& task = app.task(model::TaskId{i});
      if (t % task.period != 0) continue;  // not a release of this task
      const Time l =
          lat.task_latency(app, transfers, model::TaskId{i}, options.semantics);
      if (options.check_deadlines && task.acquisition_deadline &&
          l > *task.acquisition_deadline) {
        issue("acquisition deadline of " + task.name + " exceeded (" +
              support::format_time(l) + " > " +
              support::format_time(*task.acquisition_deadline) + ")" +
              at_time(t));
      }
      if (options.check_theorem1 && s0_latency.count(i) > 0 &&
          l > s0_latency[i]) {
        issue("Theorem 1 violated for " + task.name + ": latency " +
              support::format_time(l) + " exceeds s0 latency " +
              support::format_time(s0_latency[i]) + at_time(t));
      }
    }
  }
  return report;
}

}  // namespace letdma::let
