#include "letdma/let/local_search.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "letdma/let/compiled.hpp"
#include "letdma/let/delta.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/obs/sampler.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

using Groups = std::vector<std::vector<Communication>>;

/// Budget shared by both evaluator paths; semantics match the seed: the
/// stop token and the wall clock are polled before every candidate, the
/// evaluation and improvement caps are strict.
class SearchBudget {
 public:
  explicit SearchBudget(const LocalSearchOptions& opt) : opt_(opt) {
    if (opt_.time_limit_sec > 0) {
      deadline_ =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(opt_.time_limit_sec));
    }
  }

  bool left(int evaluations, int improvements) const {
    if (opt_.stop != nullptr && opt_.stop->load(std::memory_order_relaxed)) {
      return false;
    }
    if (std::chrono::steady_clock::now() >= deadline_) return false;
    return evaluations < opt_.max_evaluations &&
           improvements < opt_.max_improvements;
  }

 private:
  const LocalSearchOptions& opt_;
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
};

// ---------------------------------------------------------------------------
// Reference path: the seed evaluator. Every candidate partition is
// materialized, rebuilt via build_from_groups and scored from the full
// worst-case latency recomputation. Kept callable (LocalSearchEngine::
// kReference) as the ground truth the compiled path is benchmarked and
// equivalence-tested against.
// ---------------------------------------------------------------------------

/// Properties 1-2 on an ordered partition (cheap pre-filter before the
/// expensive rebuild): per task, writes strictly before reads; per label,
/// the write strictly before every read.
bool order_feasible(const Groups& groups) {
  std::map<int, int> task_write_max, task_read_min;
  std::map<int, int> label_write, label_read_min;
  for (int gi = 0; gi < static_cast<int>(groups.size()); ++gi) {
    for (const Communication& c : groups[static_cast<std::size_t>(gi)]) {
      if (c.dir == Direction::kWrite) {
        auto [it, fresh] = task_write_max.try_emplace(c.task.value, gi);
        if (!fresh) it->second = std::max(it->second, gi);
        label_write[c.label.value] = gi;
      } else {
        auto [it, fresh] = task_read_min.try_emplace(c.task.value, gi);
        if (!fresh) it->second = std::min(it->second, gi);
        auto [lt, lfresh] = label_read_min.try_emplace(c.label.value, gi);
        if (!lfresh) lt->second = std::min(lt->second, gi);
      }
    }
  }
  for (const auto& [task, wmax] : task_write_max) {
    const auto it = task_read_min.find(task);
    if (it != task_read_min.end() && wmax >= it->second) return false;
  }
  for (const auto& [label, wg] : label_write) {
    const auto it = label_read_min.find(label);
    if (it != label_read_min.end() && wg >= it->second) return false;
  }
  return true;
}

struct Evaluation {
  bool feasible = false;
  double objective = 0.0;
};

class ReferenceSearch {
 public:
  ReferenceSearch(const LetComms& comms, const LocalSearchOptions& options)
      : comms_(comms), app_(comms.app()), opt_(options) {}

  Evaluation evaluate(const Groups& groups, ScheduleResult* out) {
    Evaluation ev;
    if (!order_feasible(groups)) return ev;
    ScheduleResult built = build_from_groups(comms_, groups);
    // Deadlines (where set) must hold at every instant.
    const std::vector<Time> wc = worst_case_latencies(
        comms_, built.schedule, ReadinessSemantics::kProposed);
    double worst_ratio = 0.0;
    for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
      const model::Task& t = app_.task(model::TaskId{task});
      const Time lam = wc[static_cast<std::size_t>(task)];
      if (t.acquisition_deadline && lam > *t.acquisition_deadline) return ev;
      worst_ratio = std::max(worst_ratio, static_cast<double>(lam) /
                                              static_cast<double>(t.period));
    }
    ev.feasible = true;
    ev.objective = opt_.goal == LocalSearchGoal::kMinTransfers
                       ? static_cast<double>(built.s0_transfers.size())
                       : worst_ratio;
    if (out != nullptr) *out = std::move(built);
    return ev;
  }

 private:
  const LetComms& comms_;
  const model::Application& app_;
  const LocalSearchOptions& opt_;
};

/// Candidate neighbours of a partition, in deterministic order (reference
/// path only; the compiled path enumerates the same moves lazily).
std::vector<Groups> neighbours(const model::Application& app,
                               const Groups& g) {
  std::vector<Groups> out;
  const int n = static_cast<int>(g.size());
  // Relocations (bounded window to keep the neighbourhood manageable).
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - 4); j <= std::min(n - 1, i + 4); ++j) {
      if (i == j) continue;
      Groups cand = g;
      std::vector<Communication> moved =
          std::move(cand[static_cast<std::size_t>(i)]);
      cand.erase(cand.begin() + i);
      cand.insert(cand.begin() + j, std::move(moved));
      out.push_back(std::move(cand));
    }
  }
  // Merges of compatible groups.
  auto group_key = [&](const std::vector<Communication>& grp) {
    return std::pair<int, int>{
        let::local_memory_of(app, grp.front()).value,
        grp.front().dir == Direction::kWrite ? 0 : 1};
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (group_key(g[static_cast<std::size_t>(i)]) !=
          group_key(g[static_cast<std::size_t>(j)])) {
        continue;
      }
      Groups cand = g;
      auto& dst = cand[static_cast<std::size_t>(i)];
      dst.insert(dst.end(), cand[static_cast<std::size_t>(j)].begin(),
                 cand[static_cast<std::size_t>(j)].end());
      cand.erase(cand.begin() + j);
      out.push_back(std::move(cand));
    }
  }
  // Splits of multi-communication groups (in half).
  for (int i = 0; i < n; ++i) {
    const auto& grp = g[static_cast<std::size_t>(i)];
    if (grp.size() < 2) continue;
    Groups cand = g;
    const std::size_t half = grp.size() / 2;
    std::vector<Communication> tail(
        grp.begin() + static_cast<std::ptrdiff_t>(half), grp.end());
    cand[static_cast<std::size_t>(i)].resize(half);
    cand.insert(cand.begin() + i + 1, std::move(tail));
    out.push_back(std::move(cand));
  }
  return out;
}

LocalSearchResult improve_reference(const LetComms& comms,
                                    const ScheduleResult& start,
                                    const LocalSearchOptions& options) {
  ReferenceSearch search(comms, options);
  SearchBudget budget(options);

  // Seed partition: one group per starting transfer.
  Groups groups;
  for (const DmaTransfer& t : start.s0_transfers) {
    groups.push_back(t.comms);
  }

  LocalSearchResult best{ScheduleResult{MemoryLayout(comms.app()), {}, {}},
                         0.0, 0, 0};
  {
    ScheduleResult rebuilt{MemoryLayout(comms.app()), {}, {}};
    ++best.evaluations;
    const Evaluation ev = search.evaluate(groups, &rebuilt);
    LETDMA_ENSURE(ev.feasible,
                  "the starting schedule does not rebuild feasibly");
    best.schedule = std::move(rebuilt);
    best.objective = ev.objective;
  }

  bool improved = true;
  while (improved && budget.left(best.evaluations, best.improvements)) {
    improved = false;
    for (Groups& cand : neighbours(comms.app(), groups)) {
      if (!budget.left(best.evaluations, best.improvements)) break;
      ScheduleResult built{MemoryLayout(comms.app()), {}, {}};
      ++best.evaluations;
      static obs::Counter accepted("let.local_search.accepted");
      static obs::Counter rejected("let.local_search.rejected");
      const Evaluation ev = search.evaluate(cand, &built);
      if (ev.feasible && ev.objective < best.objective - 1e-12) {
        accepted.add();
        best.schedule = std::move(built);
        best.objective = ev.objective;
        best.improvements += 1;
        groups = std::move(cand);
        improved = true;
        if (options.on_improvement) {
          options.on_improvement(best.schedule, best.objective);
        }
        break;  // first improvement: restart the neighbourhood
      } else {
        rejected.add();
      }
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Compiled path: lazy move generation + delta evaluation. Enumeration
// order matches neighbours() exactly (relocations, merges, splits), so the
// accepted-move sequence — and with it evaluations, improvements,
// objective and the final schedule — is identical to the reference path.
// ---------------------------------------------------------------------------

/// Lazily enumerates the moves of the current partition in the reference
/// neighbour order. Regenerated after every accepted move.
class MoveGen {
 public:
  explicit MoveGen(const DeltaEvaluator& ev) : ev_(ev), n_(ev.num_groups()) {}

  std::optional<ScheduleDelta> next() {
    while (true) {
      switch (phase_) {
        case 0: {  // relocations: i x [i-4, i+4]
          if (i_ >= n_) {
            phase_ = 1;
            i_ = 0;
            j_ = 1;
            break;
          }
          if (!reloc_started_) {
            j_ = std::max(0, i_ - 4);
            reloc_started_ = true;
          }
          while (j_ <= std::min(n_ - 1, i_ + 4)) {
            const int j = j_++;
            if (j == i_) continue;
            return ScheduleDelta{ScheduleDelta::Kind::kRelocate, i_, j};
          }
          ++i_;
          reloc_started_ = false;
          break;
        }
        case 1: {  // merges: i < j with equal (memory, direction)
          if (i_ >= n_) {
            phase_ = 2;
            i_ = 0;
            break;
          }
          while (j_ < n_) {
            const int j = j_++;
            if (ev_.group_mem(i_) == ev_.group_mem(j) &&
                ev_.group_is_write(i_) == ev_.group_is_write(j)) {
              return ScheduleDelta{ScheduleDelta::Kind::kMerge, i_, j};
            }
          }
          ++i_;
          j_ = i_ + 1;
          break;
        }
        case 2: {  // splits of multi-communication groups
          while (i_ < n_) {
            const int i = i_++;
            if (ev_.group(i).size() >= 2) {
              return ScheduleDelta{ScheduleDelta::Kind::kSplit, i, -1};
            }
          }
          return std::nullopt;
        }
      }
    }
  }

 private:
  const DeltaEvaluator& ev_;
  const int n_;
  int phase_ = 0;
  int i_ = 0;
  int j_ = 1;
  bool reloc_started_ = false;
};

LocalSearchResult improve_compiled(const CompiledComms& compiled,
                                   const ScheduleResult& start,
                                   const LocalSearchOptions& options) {
  SearchBudget budget(options);

  std::vector<std::vector<int>> groups;
  groups.reserve(start.s0_transfers.size());
  for (const DmaTransfer& t : start.s0_transfers) {
    std::vector<int> ids;
    ids.reserve(t.comms.size());
    for (const Communication& c : t.comms) {
      ids.push_back(compiled.index_of(c));
    }
    groups.push_back(std::move(ids));
  }
  DeltaEvaluator ev(compiled, std::move(groups), options.goal);

  LocalSearchResult best{
      ScheduleResult{MemoryLayout(compiled.app()), {}, {}}, 0.0, 0, 0};
  ++best.evaluations;
  {
    const DeltaEval seed = ev.evaluate_current();
    LETDMA_ENSURE(seed.feasible,
                  "the starting schedule does not rebuild feasibly");
    best.objective = seed.objective;
  }

  bool materialized = false;
  bool improved = true;
  while (improved && budget.left(best.evaluations, best.improvements)) {
    improved = false;
    MoveGen gen(ev);
    while (const std::optional<ScheduleDelta> move = gen.next()) {
      if (!budget.left(best.evaluations, best.improvements)) break;
      ++best.evaluations;
      static obs::Counter accepted("let.local_search.accepted");
      static obs::Counter rejected("let.local_search.rejected");
      const DeltaEval cand = ev.evaluate(*move);
      if (cand.feasible && cand.objective < best.objective - 1e-12) {
        accepted.add();
        ev.apply(*move);
        best.objective = cand.objective;
        best.improvements += 1;
        improved = true;
        if (options.on_improvement) {
          best.schedule = ev.materialize();
          materialized = true;
          options.on_improvement(best.schedule, best.objective);
        } else {
          materialized = false;
        }
        break;  // first improvement: restart the neighbourhood
      } else {
        rejected.add();
      }
    }
  }
  if (!materialized) best.schedule = ev.materialize();
  return best;
}

LocalSearchResult improve_any(const LetComms& comms,
                              const CompiledComms* compiled,
                              const ScheduleResult& start,
                              const LocalSearchOptions& options) {
  LETDMA_ENSURE(!start.s0_transfers.empty(),
                "local search needs a non-empty starting schedule");
  obs::ScopedSpan span("let.local_search", "let");
  // Gauge timelines for traced runs: accept/reject/eval rates and the
  // delta-cache hit rate, derived from the always-on counters. No sink
  // attached => start() is a no-op and the search pays nothing.
  obs::Sampler sampler({0.05, "let", 0});
  sampler.add_counter_rate("ls.accept_per_sec", "let.local_search.accepted");
  sampler.add_counter_rate("ls.reject_per_sec", "let.local_search.rejected");
  sampler.add_gauge("ls.delta_cache_hit_rate", [] {
    obs::Registry& reg = obs::Registry::instance();
    const double hits =
        static_cast<double>(reg.counter_value("let.delta.cache_hits"));
    const double misses =
        static_cast<double>(reg.counter_value("let.delta.cache_misses"));
    return hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  });
  sampler.start();
  LocalSearchResult best = [&]() {
    if (options.engine == LocalSearchEngine::kReference) {
      return improve_reference(comms, start, options);
    }
    if (compiled != nullptr) {
      return improve_compiled(*compiled, start, options);
    }
    const CompiledComms local(comms);
    return improve_compiled(local, start, options);
  }();
  static obs::Counter evaluations("let.local_search.evaluations");
  evaluations.add(best.evaluations);
  span.arg("evaluations", static_cast<std::int64_t>(best.evaluations));
  span.arg("improvements", static_cast<std::int64_t>(best.improvements));
  span.arg("objective", best.objective);
  return best;
}

}  // namespace

LocalSearchResult improve_schedule(const LetComms& comms,
                                   const ScheduleResult& start,
                                   LocalSearchOptions options) {
  return improve_any(comms, nullptr, start, options);
}

LocalSearchResult improve_schedule(const CompiledComms& compiled,
                                   const ScheduleResult& start,
                                   LocalSearchOptions options) {
  return improve_any(compiled.let_comms(), &compiled, start, options);
}

}  // namespace letdma::let
