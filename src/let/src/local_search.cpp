#include "letdma/let/local_search.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "letdma/let/latency.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

using Groups = std::vector<std::vector<Communication>>;

/// Properties 1-2 on an ordered partition (cheap pre-filter before the
/// expensive rebuild): per task, writes strictly before reads; per label,
/// the write strictly before every read.
bool order_feasible(const Groups& groups) {
  std::map<int, int> task_write_max, task_read_min;
  std::map<int, int> label_write, label_read_min;
  for (int gi = 0; gi < static_cast<int>(groups.size()); ++gi) {
    for (const Communication& c : groups[static_cast<std::size_t>(gi)]) {
      if (c.dir == Direction::kWrite) {
        auto [it, fresh] = task_write_max.try_emplace(c.task.value, gi);
        if (!fresh) it->second = std::max(it->second, gi);
        label_write[c.label.value] = gi;
      } else {
        auto [it, fresh] = task_read_min.try_emplace(c.task.value, gi);
        if (!fresh) it->second = std::min(it->second, gi);
        auto [lt, lfresh] = label_read_min.try_emplace(c.label.value, gi);
        if (!lfresh) lt->second = std::min(lt->second, gi);
      }
    }
  }
  for (const auto& [task, wmax] : task_write_max) {
    const auto it = task_read_min.find(task);
    if (it != task_read_min.end() && wmax >= it->second) return false;
  }
  for (const auto& [label, wg] : label_write) {
    const auto it = label_read_min.find(label);
    if (it != label_read_min.end() && wg >= it->second) return false;
  }
  return true;
}

struct Evaluation {
  bool feasible = false;
  double objective = 0.0;
};

class Search {
 public:
  Search(const LetComms& comms, LocalSearchOptions options)
      : comms_(comms), app_(comms.app()), opt_(options) {
    if (opt_.time_limit_sec > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(opt_.time_limit_sec));
    }
  }

  Evaluation evaluate(const Groups& groups, ScheduleResult* out) {
    ++evaluations_;
    Evaluation ev;
    if (!order_feasible(groups)) return ev;
    ScheduleResult built = build_from_groups(comms_, groups);
    // Deadlines (where set) must hold at every instant.
    const auto wc = worst_case_latencies(comms_, built.schedule,
                                         ReadinessSemantics::kProposed);
    double worst_ratio = 0.0;
    for (const auto& [task, lam] : wc) {
      const model::Task& t = app_.task(model::TaskId{task});
      if (t.acquisition_deadline && lam > *t.acquisition_deadline) return ev;
      worst_ratio = std::max(worst_ratio,
                             static_cast<double>(lam) /
                                 static_cast<double>(t.period));
    }
    ev.feasible = true;
    ev.objective = opt_.goal == LocalSearchGoal::kMinTransfers
                       ? static_cast<double>(built.s0_transfers.size())
                       : worst_ratio;
    if (out != nullptr) *out = std::move(built);
    return ev;
  }

  bool budget_left(int improvements) const {
    if (opt_.stop != nullptr &&
        opt_.stop->load(std::memory_order_relaxed)) {
      return false;
    }
    if (std::chrono::steady_clock::now() >= deadline_) {
      return false;
    }
    return evaluations_ < opt_.max_evaluations &&
           improvements < opt_.max_improvements;
  }

  int evaluations() const { return evaluations_; }

  const LetComms& comms_;
  const model::Application& app_;
  LocalSearchOptions opt_;
  int evaluations_ = 0;
  std::chrono::steady_clock::time_point deadline_ =
      std::chrono::steady_clock::time_point::max();
};

/// Candidate neighbours of a partition, in deterministic order.
std::vector<Groups> neighbours(const model::Application& app,
                               const Groups& g) {
  std::vector<Groups> out;
  const int n = static_cast<int>(g.size());
  // Relocations (bounded window to keep the neighbourhood manageable).
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - 4); j <= std::min(n - 1, i + 4); ++j) {
      if (i == j) continue;
      Groups cand = g;
      std::vector<Communication> moved = std::move(cand[static_cast<std::size_t>(i)]);
      cand.erase(cand.begin() + i);
      cand.insert(cand.begin() + j, std::move(moved));
      out.push_back(std::move(cand));
    }
  }
  // Merges of compatible groups.
  auto group_key = [&](const std::vector<Communication>& grp) {
    return std::pair<int, int>{
        let::local_memory_of(app, grp.front()).value,
        grp.front().dir == Direction::kWrite ? 0 : 1};
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (group_key(g[static_cast<std::size_t>(i)]) !=
          group_key(g[static_cast<std::size_t>(j)])) {
        continue;
      }
      Groups cand = g;
      auto& dst = cand[static_cast<std::size_t>(i)];
      dst.insert(dst.end(), cand[static_cast<std::size_t>(j)].begin(),
                 cand[static_cast<std::size_t>(j)].end());
      cand.erase(cand.begin() + j);
      out.push_back(std::move(cand));
    }
  }
  // Splits of multi-communication groups (in half).
  for (int i = 0; i < n; ++i) {
    const auto& grp = g[static_cast<std::size_t>(i)];
    if (grp.size() < 2) continue;
    Groups cand = g;
    const std::size_t half = grp.size() / 2;
    std::vector<Communication> tail(grp.begin() + static_cast<std::ptrdiff_t>(half),
                                    grp.end());
    cand[static_cast<std::size_t>(i)].resize(half);
    cand.insert(cand.begin() + i + 1, std::move(tail));
    out.push_back(std::move(cand));
  }
  return out;
}

}  // namespace

LocalSearchResult improve_schedule(const LetComms& comms,
                                   const ScheduleResult& start,
                                   LocalSearchOptions options) {
  LETDMA_ENSURE(!start.s0_transfers.empty(),
                "local search needs a non-empty starting schedule");
  obs::ScopedSpan span("let.local_search", "let");
  Search search(comms, options);

  // Seed partition: one group per starting transfer.
  Groups groups;
  for (const DmaTransfer& t : start.s0_transfers) {
    groups.push_back(t.comms);
  }

  LocalSearchResult best{ScheduleResult{MemoryLayout(comms.app()), {}, {}},
                         0.0, 0, 0};
  {
    ScheduleResult rebuilt{MemoryLayout(comms.app()), {}, {}};
    const Evaluation ev = search.evaluate(groups, &rebuilt);
    LETDMA_ENSURE(ev.feasible,
                  "the starting schedule does not rebuild feasibly");
    best.schedule = std::move(rebuilt);
    best.objective = ev.objective;
  }

  bool improved = true;
  while (improved && search.budget_left(best.improvements)) {
    improved = false;
    for (Groups& cand : neighbours(comms.app(), groups)) {
      if (!search.budget_left(best.improvements)) break;
      ScheduleResult built{MemoryLayout(comms.app()), {}, {}};
      const Evaluation ev = search.evaluate(cand, &built);
      if (ev.feasible && ev.objective < best.objective - 1e-12) {
        best.schedule = std::move(built);
        best.objective = ev.objective;
        best.improvements += 1;
        groups = std::move(cand);
        improved = true;
        break;  // first improvement: restart the neighbourhood
      }
    }
  }
  best.evaluations = search.evaluations();
  static obs::Counter evaluations("let.local_search.evaluations");
  evaluations.add(best.evaluations);
  span.arg("evaluations", static_cast<std::int64_t>(best.evaluations));
  span.arg("improvements", static_cast<std::int64_t>(best.improvements));
  span.arg("objective", best.objective);
  return best;
}

}  // namespace letdma::let
