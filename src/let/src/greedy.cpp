#include "letdma/let/greedy.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "letdma/let/latency.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

/// Presence pattern of a communication: the sorted instants of T* at which
/// it is required. Communications whose patterns form a subset chain can be
/// merged into one transfer without breaking per-instant contiguity.
std::vector<Time> presence_pattern(const LetComms& comms,
                                   const Communication& c) {
  std::vector<Time> out;
  for (const Time t : comms.required_instants()) {
    const std::vector<Communication> at_t = comms.comms_at(t);
    if (std::binary_search(at_t.begin(), at_t.end(), c)) out.push_back(t);
  }
  return out;
}

using PatternCache = std::map<Communication, std::vector<Time>>;

/// True when, at every instant, the subset of `ordered` (by address) that
/// is required forms a contiguous index interval — the semantic content of
/// Constraint 6 for this transfer.
bool instant_restrictions_contiguous(const LetComms& comms,
                                     const PatternCache& patterns,
                                     const std::vector<Communication>& ordered,
                                     std::size_t* split_at) {
  for (const Time t : comms.required_instants()) {
    std::size_t first = ordered.size(), last = 0;
    bool any = false;
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      const std::vector<Time>& p = patterns.at(ordered[i]);
      if (std::binary_search(p.begin(), p.end(), t)) {
        first = std::min(first, i);
        last = i;
        any = true;
      }
    }
    if (!any) continue;
    for (std::size_t i = first; i <= last; ++i) {
      const std::vector<Time>& p = patterns.at(ordered[i]);
      if (!std::binary_search(p.begin(), p.end(), t)) {
        *split_at = i;  // hole: cut the run before index i
        return false;
      }
    }
  }
  return true;
}

/// Splits `comms` into transfers that are contiguous in both memories AND
/// whose per-instant restrictions stay contiguous (recursively cutting at
/// pattern holes).
void make_safe_transfers(const LetComms& comms, const PatternCache& patterns,
                         const MemoryLayout& layout,
                         std::vector<Communication> group,
                         std::vector<DmaTransfer>* out) {
  for (DmaTransfer& piece : split_into_transfers(layout, std::move(group))) {
    std::size_t split_at = 0;
    if (instant_restrictions_contiguous(comms, patterns, piece.comms,
                                        &split_at)) {
      out->push_back(std::move(piece));
      continue;
    }
    std::vector<Communication> head(piece.comms.begin(),
                                    piece.comms.begin() +
                                        static_cast<std::ptrdiff_t>(split_at));
    std::vector<Communication> tail(piece.comms.begin() +
                                        static_cast<std::ptrdiff_t>(split_at),
                                    piece.comms.end());
    make_safe_transfers(comms, patterns, layout, std::move(head), out);
    make_safe_transfers(comms, patterns, layout, std::move(tail), out);
  }
}

}  // namespace

namespace {

/// Shared core of build_from_groups and GreedyScheduler: layout follows
/// the group order (optionally letting read groups claim global-memory
/// positions first), then groups become transfers via make_safe_transfers.
ScheduleResult detail_build_from_groups(
    const LetComms& comms, const std::vector<std::vector<Communication>>& groups,
    bool reads_first_placement) {
  const model::Application& app = comms.app();
  PatternCache patterns;
  for (const Communication& c : comms.comms_at_s0()) {
    patterns.emplace(c, presence_pattern(comms, c));
  }

  ScheduleResult result{MemoryLayout(app), {}, {}};
  const model::Platform& plat = app.platform();
  std::vector<std::vector<Slot>> mem_order(
      static_cast<std::size_t>(plat.num_memories()));
  std::set<std::pair<int, Slot>> placed;
  auto place = [&](model::MemoryId mem, const Slot& slot) {
    if (placed.insert({mem.value, slot}).second) {
      mem_order[static_cast<std::size_t>(mem.value)].push_back(slot);
    }
  };
  std::vector<const std::vector<Communication>*> placement_order;
  for (const auto& g : groups) placement_order.push_back(&g);
  if (reads_first_placement) {
    std::stable_partition(placement_order.begin(), placement_order.end(),
                          [](const std::vector<Communication>* g) {
                            return !g->empty() &&
                                   g->front().dir == Direction::kRead;
                          });
  }
  for (const std::vector<Communication>* g : placement_order) {
    for (const Communication& c : *g) {
      place(plat.global_memory(), global_slot_of(c));
      place(local_memory_of(app, c), local_slot_of(c));
    }
  }
  for (int m = 0; m < plat.num_memories(); ++m) {
    const model::MemoryId mem{m};
    if (!MemoryLayout::required_slots(app, mem).empty()) {
      result.layout.set_order(mem, mem_order[static_cast<std::size_t>(m)]);
    }
  }

  for (const std::vector<Communication>& g : groups) {
    if (g.empty()) continue;
    make_safe_transfers(comms, patterns, result.layout, g,
                        &result.s0_transfers);
  }
  result.schedule = derive_schedule(comms, result.layout, result.s0_transfers);
  return result;
}

}  // namespace

ScheduleResult build_from_groups(
    const LetComms& comms,
    const std::vector<std::vector<Communication>>& groups) {
  return detail_build_from_groups(comms, groups,
                                  /*reads_first_placement=*/false);
}

ScheduleResult GreedyScheduler::build() const {
  static obs::Counter builds("let.greedy.builds");
  builds.add();
  obs::ScopedSpan span("let.greedy.build", "let");
  span.arg("strategy", static_cast<std::int64_t>(options_.strategy));

  const model::Application& app = comms_.app();
  const std::vector<Communication>& s0 = comms_.comms_at_s0();
  PatternCache patterns;
  for (const Communication& c : s0) {
    patterns.emplace(c, presence_pattern(comms_, c));
  }

  // Urgency order: tightest acquisition deadline first, then shortest
  // period, then id (deterministic).
  std::vector<model::TaskId> order;
  for (int i = 0; i < app.num_tasks(); ++i) order.push_back(model::TaskId{i});
  std::sort(order.begin(), order.end(), [&](model::TaskId a, model::TaskId b) {
    const model::Task& ta = app.task(a);
    const model::Task& tb = app.task(b);
    const Time ga = ta.acquisition_deadline.value_or(ta.period);
    const Time gb = tb.acquisition_deadline.value_or(tb.period);
    if (ga != gb) return ga < gb;
    if (ta.period != tb.period) return ta.period < tb.period;
    return a.value < b.value;
  });

  // Emission: a flat list of communications in execution order, where each
  // element remembers whether it may merge with its predecessor (same
  // batch). Batches alternate (writes-for-task, reads-of-task).
  std::set<Communication> emitted;
  std::vector<std::vector<Communication>> batches;
  auto emit_batch = [&](std::vector<Communication> batch) {
    std::vector<Communication> fresh;
    for (const Communication& c : batch) {
      if (emitted.insert(c).second) fresh.push_back(c);
    }
    if (!fresh.empty()) batches.push_back(std::move(fresh));
  };

  if (options_.strategy == GreedyStrategy::kUrgencyFirst) {
    for (const model::TaskId tid : order) {
      // Writes the task's reads depend on (Property 2), from any producer.
      std::vector<Communication> dep_writes;
      std::vector<Communication> reads;
      for (const Communication& c : s0) {
        if (c.dir == Direction::kRead && c.task == tid) {
          reads.push_back(c);
          dep_writes.push_back(
              {Direction::kWrite, app.label(c.label).writer, c.label});
        }
      }
      // The task's own writes (Property 1: before its reads).
      std::vector<Communication> own_writes;
      for (const Communication& c : s0) {
        if (c.dir == Direction::kWrite && c.task == tid) {
          own_writes.push_back(c);
        }
      }
      std::vector<Communication> writes = std::move(dep_writes);
      writes.insert(writes.end(), own_writes.begin(), own_writes.end());
      canonicalize(writes);
      emit_batch(std::move(writes));
      emit_batch(std::move(reads));
    }
  } else {
    // kWriteBatched / kReadBatched: one batch with every write (maximal
    // write merging; trivially satisfies Properties 1 and 2), then reads
    // per task in urgency order.
    std::vector<Communication> all_writes;
    for (const Communication& c : s0) {
      if (c.dir == Direction::kWrite) all_writes.push_back(c);
    }
    emit_batch(std::move(all_writes));
    for (const model::TaskId tid : order) {
      std::vector<Communication> reads;
      for (const Communication& c : s0) {
        if (c.dir == Direction::kRead && c.task == tid) reads.push_back(c);
      }
      emit_batch(std::move(reads));
    }
  }

  // Split each batch into mergeable groups: same local memory and
  // direction, with presence patterns forming a subset chain. Ordering a
  // chain most-specific-first makes the subset required at any instant a
  // *suffix* of the transfer, which is always contiguous — the schedule
  // analogue of Constraint 6 without demanding identical patterns.
  std::vector<std::vector<Communication>> groups;
  for (const std::vector<Communication>& batch : batches) {
    std::map<int, std::vector<Communication>> by_mem;
    for (const Communication& c : batch) {
      by_mem[local_memory_of(app, c).value].push_back(c);
    }
    for (auto& [mem, cs] : by_mem) {
      // Pattern per communication, sorted by ascending pattern size so a
      // chain's existing tail is always a candidate subset of the next.
      std::vector<std::pair<std::vector<Time>, Communication>> items;
      items.reserve(cs.size());
      for (const Communication& c : cs) {
        items.emplace_back(patterns.at(c), c);
      }
      std::sort(items.begin(), items.end(),
                [](const auto& a, const auto& b) {
                  if (a.first.size() != b.first.size()) {
                    return a.first.size() < b.first.size();
                  }
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
      struct Chain {
        std::vector<Communication> comms;
        std::vector<Time> tail_pattern;
        std::set<int> labels;
      };
      std::vector<Chain> chains;
      for (auto& [pattern, c] : items) {
        Chain* home = nullptr;
        for (Chain& chain : chains) {
          // The chain tail must be a subset of the new pattern, and a
          // label may appear only once per transfer (a single DMA copy
          // cannot duplicate a source).
          if (chain.labels.count(c.label.value) == 0 &&
              std::includes(pattern.begin(), pattern.end(),
                            chain.tail_pattern.begin(),
                            chain.tail_pattern.end())) {
            home = &chain;
            break;
          }
        }
        if (home == nullptr) {
          chains.push_back({});
          home = &chains.back();
        }
        home->comms.push_back(c);
        home->tail_pattern = std::move(pattern);
        home->labels.insert(c.label.value);
      }
      for (Chain& chain : chains) groups.push_back(std::move(chain.comms));
    }
  }

  ScheduleResult result = detail_build_from_groups(
      comms_, groups,
      /*reads_first_placement=*/options_.strategy ==
          GreedyStrategy::kReadBatched);
  span.arg("batches", static_cast<std::int64_t>(batches.size()));
  span.arg("transfers",
           static_cast<std::int64_t>(result.s0_transfers.size()));
  return result;
}

namespace {

double max_latency_ratio(const LetComms& comms, const ScheduleResult& r) {
  const model::Application& app = comms.app();
  const auto wc =
      worst_case_latencies(comms, r.schedule, ReadinessSemantics::kProposed);
  double worst = 0.0;
  for (const auto& [task, lam] : wc) {
    worst = std::max(worst,
                     static_cast<double>(lam) /
                         static_cast<double>(
                             app.task(model::TaskId{task}).period));
  }
  return worst;
}

template <typename Better>
ScheduleResult best_greedy(const LetComms& comms, Better better) {
  std::optional<ScheduleResult> best;
  for (const GreedyStrategy s :
       {GreedyStrategy::kUrgencyFirst, GreedyStrategy::kWriteBatched,
        GreedyStrategy::kReadBatched}) {
    ScheduleResult r = GreedyScheduler(comms, {s}).build();
    if (!best || better(r, *best)) best.emplace(std::move(r));
  }
  return std::move(*best);
}

}  // namespace

ScheduleResult GreedyScheduler::best_transfer_count(const LetComms& comms) {
  return best_greedy(comms, [&](const ScheduleResult& a,
                                const ScheduleResult& b) {
    if (a.s0_transfers.size() != b.s0_transfers.size()) {
      return a.s0_transfers.size() < b.s0_transfers.size();
    }
    return max_latency_ratio(comms, a) < max_latency_ratio(comms, b);
  });
}

ScheduleResult GreedyScheduler::best_latency_ratio(const LetComms& comms) {
  return best_greedy(comms,
                     [&](const ScheduleResult& a, const ScheduleResult& b) {
                       return max_latency_ratio(comms, a) <
                              max_latency_ratio(comms, b);
                     });
}

}  // namespace letdma::let
