#include "letdma/let/greedy.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "letdma/let/compiled.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {

ScheduleResult build_from_groups(
    const LetComms& comms,
    const std::vector<std::vector<Communication>>& groups) {
  const CompiledComms compiled(comms);
  return build_from_groups_compiled(compiled, groups,
                                    /*reads_first_placement=*/false);
}

GreedyScheduler::GreedyScheduler(const CompiledComms& compiled,
                                 GreedyOptions options)
    : comms_(compiled.let_comms()), compiled_(&compiled), options_(options) {}

ScheduleResult GreedyScheduler::build() const {
  static obs::Counter builds("let.greedy.builds");
  builds.add();
  obs::ScopedSpan span("let.greedy.build", "let");
  span.arg("strategy", static_cast<std::int64_t>(options_.strategy));

  // Compile once when the caller did not hand us an instance; the presence
  // patterns and instant classes drive both the chain grouping below and
  // the group decomposition in build_from_groups_compiled.
  std::optional<CompiledComms> local;
  const CompiledComms& cc =
      compiled_ != nullptr ? *compiled_ : local.emplace(comms_);

  const model::Application& app = comms_.app();
  const std::vector<Communication>& s0 = comms_.comms_at_s0();
  auto pattern_of = [&](const Communication& c) -> const std::vector<Time>& {
    return cc.pattern(cc.index_of(c));
  };

  // Urgency order: tightest acquisition deadline first, then shortest
  // period, then id (deterministic).
  std::vector<model::TaskId> order;
  for (int i = 0; i < app.num_tasks(); ++i) order.push_back(model::TaskId{i});
  std::sort(order.begin(), order.end(), [&](model::TaskId a, model::TaskId b) {
    const model::Task& ta = app.task(a);
    const model::Task& tb = app.task(b);
    const Time ga = ta.acquisition_deadline.value_or(ta.period);
    const Time gb = tb.acquisition_deadline.value_or(tb.period);
    if (ga != gb) return ga < gb;
    if (ta.period != tb.period) return ta.period < tb.period;
    return a.value < b.value;
  });

  // Emission: a flat list of communications in execution order, where each
  // element remembers whether it may merge with its predecessor (same
  // batch). Batches alternate (writes-for-task, reads-of-task).
  std::set<Communication> emitted;
  std::vector<std::vector<Communication>> batches;
  auto emit_batch = [&](std::vector<Communication> batch) {
    std::vector<Communication> fresh;
    for (const Communication& c : batch) {
      if (emitted.insert(c).second) fresh.push_back(c);
    }
    if (!fresh.empty()) batches.push_back(std::move(fresh));
  };

  if (options_.strategy == GreedyStrategy::kUrgencyFirst) {
    for (const model::TaskId tid : order) {
      // Writes the task's reads depend on (Property 2), from any producer.
      std::vector<Communication> dep_writes;
      std::vector<Communication> reads;
      for (const Communication& c : s0) {
        if (c.dir == Direction::kRead && c.task == tid) {
          reads.push_back(c);
          dep_writes.push_back(
              {Direction::kWrite, app.label(c.label).writer, c.label});
        }
      }
      // The task's own writes (Property 1: before its reads).
      std::vector<Communication> own_writes;
      for (const Communication& c : s0) {
        if (c.dir == Direction::kWrite && c.task == tid) {
          own_writes.push_back(c);
        }
      }
      std::vector<Communication> writes = std::move(dep_writes);
      writes.insert(writes.end(), own_writes.begin(), own_writes.end());
      canonicalize(writes);
      emit_batch(std::move(writes));
      emit_batch(std::move(reads));
    }
  } else {
    // kWriteBatched / kReadBatched: one batch with every write (maximal
    // write merging; trivially satisfies Properties 1 and 2), then reads
    // per task in urgency order.
    std::vector<Communication> all_writes;
    for (const Communication& c : s0) {
      if (c.dir == Direction::kWrite) all_writes.push_back(c);
    }
    emit_batch(std::move(all_writes));
    for (const model::TaskId tid : order) {
      std::vector<Communication> reads;
      for (const Communication& c : s0) {
        if (c.dir == Direction::kRead && c.task == tid) reads.push_back(c);
      }
      emit_batch(std::move(reads));
    }
  }

  // Split each batch into mergeable groups: same local memory and
  // direction, with presence patterns forming a subset chain. Ordering a
  // chain most-specific-first makes the subset required at any instant a
  // *suffix* of the transfer, which is always contiguous — the schedule
  // analogue of Constraint 6 without demanding identical patterns.
  std::vector<std::vector<Communication>> groups;
  for (const std::vector<Communication>& batch : batches) {
    std::map<int, std::vector<Communication>> by_mem;
    for (const Communication& c : batch) {
      by_mem[cc.local_mem_of(cc.index_of(c))].push_back(c);
    }
    for (auto& [mem, cs] : by_mem) {
      // Pattern per communication, sorted by ascending pattern size so a
      // chain's existing tail is always a candidate subset of the next.
      std::vector<std::pair<const std::vector<Time>*, Communication>> items;
      items.reserve(cs.size());
      for (const Communication& c : cs) {
        items.emplace_back(&pattern_of(c), c);
      }
      std::sort(items.begin(), items.end(),
                [](const auto& a, const auto& b) {
                  if (a.first->size() != b.first->size()) {
                    return a.first->size() < b.first->size();
                  }
                  if (*a.first != *b.first) return *a.first < *b.first;
                  return a.second < b.second;
                });
      struct Chain {
        std::vector<Communication> comms;
        const std::vector<Time>* tail_pattern = nullptr;
        std::set<int> labels;
      };
      std::vector<Chain> chains;
      for (auto& [pattern, c] : items) {
        Chain* home = nullptr;
        for (Chain& chain : chains) {
          // The chain tail must be a subset of the new pattern, and a
          // label may appear only once per transfer (a single DMA copy
          // cannot duplicate a source).
          if (chain.labels.count(c.label.value) == 0 &&
              std::includes(pattern->begin(), pattern->end(),
                            chain.tail_pattern->begin(),
                            chain.tail_pattern->end())) {
            home = &chain;
            break;
          }
        }
        if (home == nullptr) {
          chains.push_back({});
          home = &chains.back();
        }
        home->comms.push_back(c);
        home->tail_pattern = pattern;
        home->labels.insert(c.label.value);
      }
      for (Chain& chain : chains) groups.push_back(std::move(chain.comms));
    }
  }

  ScheduleResult result = build_from_groups_compiled(
      cc, groups,
      /*reads_first_placement=*/options_.strategy ==
          GreedyStrategy::kReadBatched);
  span.arg("batches", static_cast<std::int64_t>(batches.size()));
  span.arg("transfers",
           static_cast<std::int64_t>(result.s0_transfers.size()));
  return result;
}

namespace {

double max_latency_ratio(const LetComms& comms, const ScheduleResult& r) {
  const model::Application& app = comms.app();
  const std::vector<Time> wc =
      worst_case_latencies(comms, r.schedule, ReadinessSemantics::kProposed);
  double worst = 0.0;
  for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
    worst = std::max(
        worst, static_cast<double>(wc[static_cast<std::size_t>(task)]) /
                   static_cast<double>(app.task(model::TaskId{task}).period));
  }
  return worst;
}

template <typename Better>
ScheduleResult best_greedy(const LetComms& comms, Better better) {
  // One compiled instance serves all three strategy builds.
  const CompiledComms compiled(comms);
  std::optional<ScheduleResult> best;
  for (const GreedyStrategy s :
       {GreedyStrategy::kUrgencyFirst, GreedyStrategy::kWriteBatched,
        GreedyStrategy::kReadBatched}) {
    ScheduleResult r = GreedyScheduler(compiled, {s}).build();
    if (!best || better(r, *best)) best.emplace(std::move(r));
  }
  return std::move(*best);
}

}  // namespace

ScheduleResult GreedyScheduler::best_transfer_count(const LetComms& comms) {
  return best_greedy(comms, [&](const ScheduleResult& a,
                                const ScheduleResult& b) {
    if (a.s0_transfers.size() != b.s0_transfers.size()) {
      return a.s0_transfers.size() < b.s0_transfers.size();
    }
    return max_latency_ratio(comms, a) < max_latency_ratio(comms, b);
  });
}

ScheduleResult GreedyScheduler::best_latency_ratio(const LetComms& comms) {
  return best_greedy(comms,
                     [&](const ScheduleResult& a, const ScheduleResult& b) {
                       return max_latency_ratio(comms, a) <
                              max_latency_ratio(comms, b);
                     });
}

}  // namespace letdma::let
