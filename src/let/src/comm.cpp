#include "letdma/let/comm.hpp"

#include <algorithm>

namespace letdma::let {

model::MemoryId local_memory_of(const model::Application& app,
                                const Communication& c) {
  return app.platform().local_memory(app.task(c.task).core);
}

std::string to_string(const model::Application& app, const Communication& c) {
  const std::string& task = app.task(c.task).name;
  const std::string& label = app.label(c.label).name;
  if (c.dir == Direction::kWrite) return "W(" + task + ", " + label + ")";
  return "R(" + label + ", " + task + ")";
}

void canonicalize(std::vector<Communication>& comms) {
  std::sort(comms.begin(), comms.end());
  comms.erase(std::unique(comms.begin(), comms.end()), comms.end());
}

}  // namespace letdma::let
