#include "letdma/let/multichannel.hpp"

#include <algorithm>

#include "letdma/support/error.hpp"

namespace letdma::let {

MultiChannelReport schedule_on_channels(
    const model::Application& app, const std::vector<DmaTransfer>& transfers,
    int channels) {
  LETDMA_ENSURE(channels >= 1, "need at least one DMA channel");
  const LatencyModel lat(app.platform());

  MultiChannelReport report;
  report.slots.resize(transfers.size());
  report.readiness.assign(static_cast<std::size_t>(app.num_tasks()), 0);
  std::vector<Time> channel_free(static_cast<std::size_t>(channels), 0);

  // Dependency bookkeeping while walking the priority order: the finish
  // time of each label's write and of each task's latest write (0 when
  // none has been dispatched yet).
  std::vector<Time> label_write_finish(
      static_cast<std::size_t>(app.num_labels()), 0);
  std::vector<Time> task_write_finish(
      static_cast<std::size_t>(app.num_tasks()), 0);

  for (std::size_t g = 0; g < transfers.size(); ++g) {
    const DmaTransfer& t = transfers[g];
    // Earliest start permitted by causality.
    Time dep_ready = 0;
    if (t.dir == Direction::kRead) {
      for (const Communication& c : t.comms) {
        dep_ready = std::max(
            dep_ready, label_write_finish[static_cast<std::size_t>(
                           c.label.value)]);  // Property 2
        dep_ready = std::max(
            dep_ready, task_write_finish[static_cast<std::size_t>(
                           c.task.value)]);  // Property 1
      }
    }
    // Earliest-available channel (ties: lowest index, deterministic).
    std::size_t best = 0;
    for (std::size_t c = 1; c < channel_free.size(); ++c) {
      if (channel_free[c] < channel_free[best]) best = c;
    }
    const Time start = std::max(channel_free[best], dep_ready);
    const Time finish = start + lat.transfer_duration(t);
    channel_free[best] = finish;
    report.slots[g] = {static_cast<int>(g), static_cast<int>(best), start,
                       finish};
    report.makespan = std::max(report.makespan, finish);

    for (const Communication& c : t.comms) {
      const auto label = static_cast<std::size_t>(c.label.value);
      const auto task = static_cast<std::size_t>(c.task.value);
      if (t.dir == Direction::kWrite) {
        label_write_finish[label] = std::max(label_write_finish[label], finish);
        task_write_finish[task] = std::max(task_write_finish[task], finish);
      }
      // Rule R3: a task is ready when its last involved transfer ends.
      report.readiness[task] = std::max(report.readiness[task], finish);
    }
  }
  return report;
}

}  // namespace letdma::let
