#include "letdma/let/multichannel.hpp"

#include <algorithm>

#include "letdma/support/error.hpp"

namespace letdma::let {

MultiChannelReport schedule_on_channels(
    const model::Application& app, const std::vector<DmaTransfer>& transfers,
    int channels) {
  LETDMA_ENSURE(channels >= 1, "need at least one DMA channel");
  const LatencyModel lat(app.platform());

  MultiChannelReport report;
  report.slots.resize(transfers.size());
  std::vector<Time> channel_free(static_cast<std::size_t>(channels), 0);

  // Dependency bookkeeping while walking the priority order: the finish
  // time of each label's write and of each task's latest write.
  std::map<int, Time> label_write_finish;
  std::map<int, Time> task_write_finish;

  for (std::size_t g = 0; g < transfers.size(); ++g) {
    const DmaTransfer& t = transfers[g];
    // Earliest start permitted by causality.
    Time dep_ready = 0;
    if (t.dir == Direction::kRead) {
      for (const Communication& c : t.comms) {
        if (const auto it = label_write_finish.find(c.label.value);
            it != label_write_finish.end()) {
          dep_ready = std::max(dep_ready, it->second);  // Property 2
        }
        if (const auto it = task_write_finish.find(c.task.value);
            it != task_write_finish.end()) {
          dep_ready = std::max(dep_ready, it->second);  // Property 1
        }
      }
    }
    // Earliest-available channel (ties: lowest index, deterministic).
    std::size_t best = 0;
    for (std::size_t c = 1; c < channel_free.size(); ++c) {
      if (channel_free[c] < channel_free[best]) best = c;
    }
    const Time start = std::max(channel_free[best], dep_ready);
    const Time finish = start + lat.transfer_duration(t);
    channel_free[best] = finish;
    report.slots[g] = {static_cast<int>(g), static_cast<int>(best), start,
                       finish};
    report.makespan = std::max(report.makespan, finish);

    for (const Communication& c : t.comms) {
      if (t.dir == Direction::kWrite) {
        label_write_finish[c.label.value] =
            std::max(label_write_finish[c.label.value], finish);
        task_write_finish[c.task.value] =
            std::max(task_write_finish[c.task.value], finish);
      }
      // Rule R3: a task is ready when its last involved transfer ends.
      auto [it, fresh] = report.readiness.try_emplace(c.task.value, finish);
      if (!fresh) it->second = std::max(it->second, finish);
    }
  }
  return report;
}

}  // namespace letdma::let
