#include "letdma/let/let_comms.hpp"

#include <algorithm>

#include "letdma/let/eta.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/math.hpp"

namespace letdma::let {

LetComms::LetComms(const model::Application& app) : app_(app) {
  LETDMA_ENSURE(app.finalized(), "LetComms requires a finalized application");
  const Time h = app.hyperperiod();

  // Populate the calendar edge by edge (equivalent to running Algorithm 1
  // for every task and release instant, but organized around the
  // producer/consumer instant sets of Eqs. (1)-(2)).
  for (const model::InterCoreEdge& e : app.inter_core_edges()) {
    const Time tp = app.task(e.producer).period;
    const Time tc = app.task(e.consumer).period;
    for (const Time t : write_instants(tp, tc, h)) {
      calendar_[t].push_back({Direction::kWrite, e.producer, e.label});
    }
    for (const Time t : read_instants(tp, tc, h)) {
      calendar_[t].push_back({Direction::kRead, e.consumer, e.label});
    }
  }
  for (auto& [t, comms] : calendar_) {
    canonicalize(comms);
    instants_.push_back(t);
  }
  if (const auto it = calendar_.find(0); it != calendar_.end()) {
    at_s0_ = it->second;
  }
}

Time LetComms::h_star(model::TaskId task) const {
  Time h = app_.task(task).period;
  for (const model::InterCoreEdge& e : app_.inter_core_edges()) {
    if (e.producer == task) {
      h = support::lcm64(h, app_.task(e.consumer).period);
    }
    if (e.consumer == task) {
      h = support::lcm64(h, app_.task(e.producer).period);
    }
  }
  return h;
}

std::vector<Communication> LetComms::writes_at(Time t,
                                               model::TaskId task) const {
  std::vector<Communication> out;
  const auto it = calendar_.find(t);
  if (it == calendar_.end()) return out;
  for (const Communication& c : it->second) {
    if (c.dir == Direction::kWrite && c.task == task) out.push_back(c);
  }
  return out;
}

std::vector<Communication> LetComms::reads_at(Time t,
                                              model::TaskId task) const {
  std::vector<Communication> out;
  const auto it = calendar_.find(t);
  if (it == calendar_.end()) return out;
  for (const Communication& c : it->second) {
    if (c.dir == Direction::kRead && c.task == task) out.push_back(c);
  }
  return out;
}

std::vector<Communication> LetComms::comms_at(Time t) const {
  const auto it = calendar_.find(t);
  if (it == calendar_.end()) return {};
  return it->second;
}

int LetComms::index_at_s0(const Communication& c) const {
  const auto it = std::lower_bound(at_s0_.begin(), at_s0_.end(), c);
  LETDMA_ENSURE(it != at_s0_.end() && *it == c,
                "communication not present at s0: " + to_string(app_, c));
  return static_cast<int>(it - at_s0_.begin());
}

std::vector<model::TaskId> LetComms::communicating_tasks() const {
  std::vector<model::TaskId> out;
  for (const Communication& c : at_s0_) out.push_back(c.task);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace letdma::let
