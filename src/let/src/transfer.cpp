#include "letdma/let/transfer.hpp"

#include <algorithm>
#include <set>

#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

/// Checks that all communications share one direction and one local memory;
/// returns that (dir, mem) pair.
std::pair<Direction, model::MemoryId> common_group(
    const model::Application& app, const std::vector<Communication>& comms) {
  LETDMA_ENSURE(!comms.empty(), "a transfer needs at least one communication");
  const Direction dir = comms.front().dir;
  const model::MemoryId mem = local_memory_of(app, comms.front());
  for (const Communication& c : comms) {
    LETDMA_ENSURE(c.dir == dir,
                  "communications of one transfer must share a direction");
    LETDMA_ENSURE(local_memory_of(app, c) == mem,
                  "communications of one transfer must share a local memory");
  }
  return {dir, mem};
}

/// Sorts communications by their global-memory position.
void sort_by_global_position(const MemoryLayout& layout,
                             std::vector<Communication>& comms) {
  const model::MemoryId mg = layout.app().platform().global_memory();
  std::sort(comms.begin(), comms.end(),
            [&](const Communication& a, const Communication& b) {
              return layout.position(mg, global_slot_of(a)) <
                     layout.position(mg, global_slot_of(b));
            });
}

}  // namespace

DmaTransfer make_transfer(const MemoryLayout& layout,
                          std::vector<Communication> comms) {
  const model::Application& app = layout.app();
  const auto [dir, mem] = common_group(app, comms);
  const model::MemoryId mg = app.platform().global_memory();

  sort_by_global_position(layout, comms);
  // Contiguity and equal order in both memories.
  for (std::size_t i = 0; i + 1 < comms.size(); ++i) {
    LETDMA_ENSURE(
        layout.adjacent(mg, global_slot_of(comms[i]),
                        global_slot_of(comms[i + 1])),
        "transfer labels not contiguous in global memory: " +
            to_string(app, comms[i]) + " / " + to_string(app, comms[i + 1]));
    LETDMA_ENSURE(
        layout.adjacent(mem, local_slot_of(comms[i]),
                        local_slot_of(comms[i + 1])),
        "transfer labels not contiguous in local memory: " +
            to_string(app, comms[i]) + " / " + to_string(app, comms[i + 1]));
  }

  DmaTransfer t;
  t.dir = dir;
  t.local_mem = mem;
  t.local_addr = layout.address(mem, local_slot_of(comms.front()));
  t.global_addr = layout.address(mg, global_slot_of(comms.front()));
  for (const Communication& c : comms) {
    t.bytes += app.label(c.label).size_bytes;
  }
  t.comms = std::move(comms);
  return t;
}

std::vector<DmaTransfer> split_into_transfers(
    const MemoryLayout& layout, std::vector<Communication> comms) {
  if (comms.empty()) return {};
  const model::Application& app = layout.app();
  const auto [dir, mem] = common_group(app, comms);
  (void)dir;
  const model::MemoryId mg = app.platform().global_memory();
  sort_by_global_position(layout, comms);

  std::vector<DmaTransfer> out;
  std::vector<Communication> run;
  run.push_back(comms.front());
  for (std::size_t i = 1; i < comms.size(); ++i) {
    const Communication& prev = run.back();
    const Communication& next = comms[i];
    const bool contiguous =
        layout.adjacent(mg, global_slot_of(prev), global_slot_of(next)) &&
        layout.adjacent(mem, local_slot_of(prev), local_slot_of(next));
    if (!contiguous) {
      out.push_back(make_transfer(layout, std::move(run)));
      run.clear();
    }
    run.push_back(next);
  }
  out.push_back(make_transfer(layout, std::move(run)));
  return out;
}

void TransferSchedule::set_instant(Time t, PerInstant transfers) {
  by_instant_[t] = std::move(transfers);
}

const TransferSchedule::PerInstant& TransferSchedule::at(Time t) const {
  const auto it = by_instant_.find(t);
  LETDMA_ENSURE(it != by_instant_.end(),
                "no transfers scheduled at t=" + support::format_time(t));
  return it->second;
}

bool TransferSchedule::has_instant(Time t) const {
  return by_instant_.count(t) > 0;
}

TransferSchedule derive_schedule(const LetComms& comms,
                                 const MemoryLayout& layout,
                                 const std::vector<DmaTransfer>& s0_order) {
  TransferSchedule sched;
  for (const Time t : comms.required_instants()) {
    const std::vector<Communication> needed = comms.comms_at(t);
    const std::set<Communication> needed_set(needed.begin(), needed.end());
    TransferSchedule::PerInstant at_t;
    for (const DmaTransfer& d : s0_order) {
      std::vector<Communication> present;
      for (const Communication& c : d.comms) {
        if (needed_set.count(c) > 0) present.push_back(c);
      }
      if (present.empty()) continue;
      for (DmaTransfer& piece :
           split_into_transfers(layout, std::move(present))) {
        at_t.push_back(std::move(piece));
      }
    }
    sched.set_instant(t, std::move(at_t));
  }
  return sched;
}

}  // namespace letdma::let
