#include "letdma/let/footprint.hpp"

#include <cstdio>
#include <sstream>

#include "letdma/obs/obs.hpp"

namespace letdma::let {

std::vector<MemoryFootprint> footprint(const MemoryLayout& layout) {
  const model::Application& app = layout.app();
  std::vector<MemoryFootprint> out;
  std::int64_t total = 0;
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    const model::MemoryId mem{m};
    if (!layout.has_order(mem) || layout.order(mem).empty()) continue;
    MemoryFootprint fp;
    fp.memory = mem;
    fp.slots = static_cast<int>(layout.order(mem).size());
    fp.bytes = layout.total_bytes(mem);
    total += fp.bytes;
    out.push_back(fp);
  }
  obs::log_debug("let", "layout footprint: " + std::to_string(out.size()) +
                            " memories, " + std::to_string(total) +
                            " bytes total");
  return out;
}

std::string render_address_map(const MemoryLayout& layout) {
  const model::Application& app = layout.app();
  std::ostringstream os;
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    const model::MemoryId mem{m};
    if (!layout.has_order(mem) || layout.order(mem).empty()) continue;
    os << app.platform().memory_name(mem) << " ("
       << layout.total_bytes(mem) << " B):\n";
    for (const Slot& s : layout.order(mem)) {
      char addr[32];
      std::snprintf(addr, sizeof addr, "0x%06llx",
                    static_cast<unsigned long long>(layout.address(mem, s)));
      os << "  " << addr << "  " << app.label(s.label).name;
      if (s.owner.value >= 0) {
        os << " (copy of " << app.task(s.owner).name << ")";
      }
      os << "  " << app.label(s.label).size_bytes << " B\n";
    }
  }
  return os.str();
}

}  // namespace letdma::let
