#include "letdma/let/milp_scheduler.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "letdma/let/latency.hpp"
#include "letdma/let/local_search.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

using milp::LinExpr;
using milp::Sense;
using milp::Var;

constexpr double kUsPerNs = 1e-3;

}  // namespace

struct MilpScheduler::Impl {
  const LetComms& comms;
  const model::Application& app;
  MilpSchedulerOptions opt;
  milp::Model model;

  // --- problem data -------------------------------------------------------
  std::vector<Communication> cset;  // C(s0), indexed by z
  int num_comms = 0;
  int big_g = 0;           // number of transfer indices G
  double lambda_o_us = 0;  // per-transfer overhead in us
  std::vector<double> copy_us;  // per-communication copy cost in us

  struct GroupInfo {
    model::MemoryId mem;
    Direction dir = Direction::kWrite;
    std::vector<int> members;  // comm indices
  };
  std::vector<GroupInfo> groups;
  std::vector<int> group_of;  // per comm

  // Per memory: slot list; node indexing is 0..L-1 slots, L begin, L+1 end.
  std::vector<std::vector<Slot>> slots;

  // --- variables -----------------------------------------------------------
  std::map<std::tuple<int, int, int>, Var> ad;  // (mem, a_node, b_node)
  std::vector<std::vector<Var>> pl;             // [mem][slot]
  std::vector<std::vector<Var>> cg;             // [z][g]
  std::vector<Var> cgi;                         // [z]
  std::map<int, std::vector<Var>> rg;           // task -> [g]
  std::map<int, Var> rgi;                       // task
  std::map<int, Var> lambda;                    // task
  std::vector<std::vector<Var>> gm;             // [g][group]
  std::map<int, std::vector<int>> anchors;      // task -> anchor comm indices

  // Lazily created contiguity witnesses: (group, z_a, z_c, g) -> LG var.
  std::map<std::tuple<int, int, int, int>, Var> lg;
  // Deduplication of separated pair rows: (g, zi, zj, pattern fingerprint).
  std::set<std::tuple<int, int, int, std::size_t>> added_pair_rows;

  Impl(const LetComms& c, MilpSchedulerOptions o)
      : comms(c), app(c.app()), opt(o) {}

  // ==========================================================================
  // Model construction
  // ==========================================================================

  void build() {
    cset = comms.comms_at_s0();
    num_comms = static_cast<int>(cset.size());
    LETDMA_ENSURE(num_comms > 0,
                  "the application has no inter-core LET communications");
    big_g = opt.max_transfers > 0
                ? std::min(opt.max_transfers, num_comms)
                : num_comms;
    const model::DmaParams& dma = app.platform().dma();
    lambda_o_us =
        static_cast<double>(dma.per_transfer_overhead()) * kUsPerNs;
    copy_us.resize(static_cast<std::size_t>(num_comms));
    for (int z = 0; z < num_comms; ++z) {
      copy_us[static_cast<std::size_t>(z)] =
          static_cast<double>(
              dma.copy_time(app.label(cset[static_cast<std::size_t>(z)].label)
                                .size_bytes)) *
          kUsPerNs;
    }
    build_groups();
    build_slots();
    build_layout_vars();      // AD, PL + Constraints 4, 5
    build_assignment_vars();  // CG, CGI, GM + Constraints 1, single-group
    build_anchor_vars();      // RG, RGI + Constraints 2, 3
    build_order_rows();       // Constraints 7, 8
    build_latency_rows();     // Constraint 9 (+ deadline bounds)
    build_slotfit_rows();     // Constraint 10
    build_objective();
    if (opt.eager_contiguity) build_eager_contiguity();
  }

  void build_groups() {
    std::map<std::pair<int, int>, int> key_to_group;
    group_of.resize(static_cast<std::size_t>(num_comms));
    for (int z = 0; z < num_comms; ++z) {
      const Communication& c = cset[static_cast<std::size_t>(z)];
      const model::MemoryId mem = local_memory_of(app, c);
      const std::pair<int, int> key{mem.value,
                                    c.dir == Direction::kWrite ? 0 : 1};
      auto [it, inserted] =
          key_to_group.try_emplace(key, static_cast<int>(groups.size()));
      if (inserted) groups.push_back({mem, c.dir, {}});
      groups[static_cast<std::size_t>(it->second)].members.push_back(z);
      group_of[static_cast<std::size_t>(z)] = it->second;
    }
  }

  void build_slots() {
    slots.resize(static_cast<std::size_t>(app.platform().num_memories()));
    for (int m = 0; m < app.platform().num_memories(); ++m) {
      slots[static_cast<std::size_t>(m)] =
          MemoryLayout::required_slots(app, model::MemoryId{m});
    }
  }

  void build_layout_vars() {
    pl.resize(slots.size());
    for (int m = 0; m < static_cast<int>(slots.size()); ++m) {
      const auto& sl = slots[static_cast<std::size_t>(m)];
      const int l = static_cast<int>(sl.size());
      if (l == 0) continue;
      const int begin_node = l;
      const int end_node = l + 1;
      const double big_m = static_cast<double>(l) + 2.0;

      // PL: slot positions (relaxed continuous, Constraint 5 integralizes).
      auto& plm = pl[static_cast<std::size_t>(m)];
      for (int a = 0; a < l; ++a) {
        plm.push_back(model.add_continuous(
            1.0, static_cast<double>(l),
            "PL_m" + std::to_string(m) + "_" + std::to_string(a)));
      }
      // Position-sum identity (from the paper's PL definition); tightens
      // the LP relaxation.
      LinExpr plsum;
      for (int a = 0; a < l; ++a) {
        plsum += LinExpr(plm[static_cast<std::size_t>(a)]);
      }
      model.add_constraint(plsum, Sense::kEq,
                           static_cast<double>(l) * (l + 1) / 2.0,
                           "PLsum_m" + std::to_string(m));

      // AD variables: a in slots+begin, b in slots+end, a != b.
      auto ad_name = [&](int a, int b) {
        return "AD_m" + std::to_string(m) + "_" + std::to_string(a) + "_" +
               std::to_string(b);
      };
      for (int a = 0; a <= l; ++a) {          // slots + begin (a == l)
        for (int b = 0; b <= l + 1; ++b) {    // slots + end (b == l+1)
          if (b == l) continue;               // nothing precedes begin
          if (a == l + 1) continue;           // nothing follows end
          if (a == b) continue;
          if (a == l && b == l + 1) continue;  // begin->end only if empty
          ad[{m, a, b}] = model.add_binary(ad_name(a, b));
        }
      }

      // Constraint 4: unit out-degree and in-degree.
      for (int a = 0; a < l; ++a) {
        LinExpr out, in;
        for (int b = 0; b <= l + 1; ++b) {
          if (const auto it = ad.find({m, a, b}); it != ad.end()) {
            out += LinExpr(it->second);
          }
          if (const auto it = ad.find({m, b, a}); it != ad.end()) {
            in += LinExpr(it->second);
          }
        }
        model.add_constraint(out, Sense::kEq, 1.0,
                             "C4out_m" + std::to_string(m) + "_" +
                                 std::to_string(a));
        model.add_constraint(in, Sense::kEq, 1.0,
                             "C4in_m" + std::to_string(m) + "_" +
                                 std::to_string(a));
      }
      LinExpr begin_out, end_in;
      for (int b = 0; b < l; ++b) {
        begin_out += LinExpr(ad.at({m, begin_node, b}));
        end_in += LinExpr(ad.at({m, b, end_node}));
      }
      model.add_constraint(begin_out, Sense::kEq, 1.0,
                           "C4begin_m" + std::to_string(m));
      model.add_constraint(end_in, Sense::kEq, 1.0,
                           "C4end_m" + std::to_string(m));

      // Constraint 5: PL_b = PL_a + 1 whenever AD_{a,b} = 1 (big-M).
      auto pos_of = [&](int node) -> LinExpr {
        if (node == begin_node) return LinExpr(0.0);
        if (node == end_node) return LinExpr(static_cast<double>(l) + 1.0);
        return LinExpr(plm[static_cast<std::size_t>(node)]);
      };
      for (const auto& [key, var] : ad) {
        if (std::get<0>(key) != m) continue;
        const int a = std::get<1>(key);
        const int b = std::get<2>(key);
        const LinExpr pa = pos_of(a);
        const LinExpr pb = pos_of(b);
        // pb >= pa + 1 - (1 - AD) * M
        model.add_constraint(pb - pa - big_m * var, Sense::kGe,
                             1.0 - big_m,
                             "C5lo_m" + std::to_string(m) + "_" +
                                 std::to_string(a) + "_" + std::to_string(b));
        // pb <= pa + 1 + (1 - AD) * M
        model.add_constraint(pb - pa + big_m * var, Sense::kLe,
                             1.0 + big_m,
                             "C5hi_m" + std::to_string(m) + "_" +
                                 std::to_string(a) + "_" + std::to_string(b));
      }
    }
  }

  void build_assignment_vars() {
    cg.resize(static_cast<std::size_t>(num_comms));
    cgi.reserve(static_cast<std::size_t>(num_comms));
    for (int z = 0; z < num_comms; ++z) {
      auto& row = cg[static_cast<std::size_t>(z)];
      LinExpr one, weighted;
      for (int g = 0; g < big_g; ++g) {
        row.push_back(model.add_binary("CG_" + std::to_string(z) + "_" +
                                       std::to_string(g)));
        one += LinExpr(row.back());
        weighted += static_cast<double>(g + 1) * row.back();
      }
      // Constraint 1.
      model.add_constraint(one, Sense::kEq, 1.0, "C1_" + std::to_string(z));
      cgi.push_back(model.add_continuous(1.0, static_cast<double>(big_g),
                                         "CGI_" + std::to_string(z)));
      model.add_constraint(LinExpr(cgi.back()) - weighted, Sense::kEq, 0.0,
                           "CGIdef_" + std::to_string(z));
    }

    // One (memory, direction) group per transfer. GM may stay continuous:
    // the covering rows force it to 1 whenever a member is assigned.
    gm.resize(static_cast<std::size_t>(big_g));
    for (int g = 0; g < big_g; ++g) {
      LinExpr sum;
      for (int q = 0; q < static_cast<int>(groups.size()); ++q) {
        gm[static_cast<std::size_t>(g)].push_back(model.add_continuous(
            0.0, 1.0, "GM_" + std::to_string(g) + "_" + std::to_string(q)));
        sum += LinExpr(gm[static_cast<std::size_t>(g)].back());
      }
      model.add_constraint(sum, Sense::kLe, 1.0,
                           "GMone_" + std::to_string(g));
    }
    for (int z = 0; z < num_comms; ++z) {
      for (int g = 0; g < big_g; ++g) {
        model.add_constraint(
            LinExpr(cg[static_cast<std::size_t>(z)][static_cast<std::size_t>(
                g)]) -
                LinExpr(gm[static_cast<std::size_t>(g)][static_cast<std::size_t>(
                    group_of[static_cast<std::size_t>(z)])]),
            Sense::kLe, 0.0,
            "GMcover_" + std::to_string(z) + "_" + std::to_string(g));
      }
    }

    // Two communications moving the same label in the same direction can
    // never share a transfer (a single copy cannot fan out).
    for (int z1 = 0; z1 < num_comms; ++z1) {
      for (int z2 = z1 + 1; z2 < num_comms; ++z2) {
        const Communication& a = cset[static_cast<std::size_t>(z1)];
        const Communication& b = cset[static_cast<std::size_t>(z2)];
        if (a.label == b.label && a.dir == b.dir) {
          for (int g = 0; g < big_g; ++g) {
            model.add_constraint(
                LinExpr(cg[static_cast<std::size_t>(z1)]
                          [static_cast<std::size_t>(g)]) +
                    LinExpr(cg[static_cast<std::size_t>(z2)]
                              [static_cast<std::size_t>(g)]),
                Sense::kLe, 1.0,
                "NoDup_" + std::to_string(z1) + "_" + std::to_string(z2) +
                    "_" + std::to_string(g));
          }
        }
      }
    }
  }

  void build_anchor_vars() {
    // Anchor communications per task: its reads at s0, or (for write-only
    // tasks) its writes — rule R1 readiness.
    for (int z = 0; z < num_comms; ++z) {
      const Communication& c = cset[static_cast<std::size_t>(z)];
      if (c.dir == Direction::kRead) anchors[c.task.value].push_back(z);
    }
    for (int z = 0; z < num_comms; ++z) {
      const Communication& c = cset[static_cast<std::size_t>(z)];
      if (c.dir == Direction::kWrite &&
          anchors.find(c.task.value) == anchors.end()) {
        anchors[c.task.value];  // create entry, filled below
      }
    }
    for (auto& [task, list] : anchors) {
      if (!list.empty()) continue;
      for (int z = 0; z < num_comms; ++z) {
        const Communication& c = cset[static_cast<std::size_t>(z)];
        if (c.dir == Direction::kWrite && c.task.value == task) {
          list.push_back(z);
        }
      }
    }

    for (const auto& [task, list] : anchors) {
      auto& row = rg[task];
      LinExpr one, weighted;
      for (int g = 0; g < big_g; ++g) {
        row.push_back(model.add_binary("RG_" + std::to_string(task) + "_" +
                                       std::to_string(g)));
        one += LinExpr(row.back());
        weighted += static_cast<double>(g + 1) * row.back();
      }
      // Constraint 2.
      model.add_constraint(one, Sense::kEq, 1.0,
                           "C2_" + std::to_string(task));
      const Var r = model.add_continuous(1.0, static_cast<double>(big_g),
                                         "RGI_" + std::to_string(task));
      rgi.emplace(task, r);
      model.add_constraint(LinExpr(r) - weighted, Sense::kEq, 0.0,
                           "RGIdef_" + std::to_string(task));
      // Constraint 3 (relaxed to >= by default; see header note).
      for (const int z : list) {
        model.add_constraint(
            LinExpr(r) - LinExpr(cgi[static_cast<std::size_t>(z)]),
            Sense::kGe, 0.0,
            "C3_" + std::to_string(task) + "_" + std::to_string(z));
      }
      if (opt.exact_last_read) {
        // Exact max: selector binaries y_z, exactly one active, and
        // RGI <= CGI_z + M (1 - y_z) so RGI equals the selected (and by
        // the >= rows, maximal) anchor index.
        const double big_m = static_cast<double>(big_g) + 1.0;
        LinExpr selector_sum;
        for (const int z : list) {
          const Var y = model.add_binary("C3sel_" + std::to_string(task) +
                                         "_" + std::to_string(z));
          selector_sum += LinExpr(y);
          model.add_constraint(
              LinExpr(r) - LinExpr(cgi[static_cast<std::size_t>(z)]) +
                  big_m * y,
              Sense::kLe, big_m,
              "C3ub_" + std::to_string(task) + "_" + std::to_string(z));
          c3_selectors[task].emplace_back(z, y);
        }
        model.add_constraint(selector_sum, Sense::kEq, 1.0,
                             "C3one_" + std::to_string(task));
      }
    }
  }

  void build_order_rows() {
    // Constraint 7 (Property 1): per task, every write index < read index.
    for (const auto tid : comms.communicating_tasks()) {
      std::vector<int> writes, reads;
      for (int z = 0; z < num_comms; ++z) {
        const Communication& c = cset[static_cast<std::size_t>(z)];
        if (!(c.task == tid)) continue;
        (c.dir == Direction::kWrite ? writes : reads).push_back(z);
      }
      for (const int w : writes) {
        for (const int r : reads) {
          model.add_constraint(
              LinExpr(cgi[static_cast<std::size_t>(r)]) -
                  LinExpr(cgi[static_cast<std::size_t>(w)]),
              Sense::kGe, 1.0,
              "C7_" + std::to_string(w) + "_" + std::to_string(r));
        }
      }
    }
    // Constraint 8 (Property 2): per label, write index < each read index.
    for (int w = 0; w < num_comms; ++w) {
      if (cset[static_cast<std::size_t>(w)].dir != Direction::kWrite) continue;
      for (int r = 0; r < num_comms; ++r) {
        if (cset[static_cast<std::size_t>(r)].dir != Direction::kRead) continue;
        if (!(cset[static_cast<std::size_t>(w)].label ==
              cset[static_cast<std::size_t>(r)].label)) {
          continue;
        }
        model.add_constraint(
            LinExpr(cgi[static_cast<std::size_t>(r)]) -
                LinExpr(cgi[static_cast<std::size_t>(w)]),
            Sense::kGe, 1.0,
            "C8_" + std::to_string(w) + "_" + std::to_string(r));
      }
    }
  }

  double deadline_us(int task) const {
    const model::Task& t = app.task(model::TaskId{task});
    const Time g = t.acquisition_deadline.value_or(t.period);
    return static_cast<double>(std::min(g, t.period)) * kUsPerNs;
  }

  void build_latency_rows() {
    double total_copy_us = 0;
    for (const double c : copy_us) total_copy_us += c;
    const double m9 =
        static_cast<double>(big_g) * lambda_o_us + total_copy_us + 1.0;

    for (const auto& [task, list] : anchors) {
      (void)list;
      // The variable's upper bound doubles as the gamma_i deadline row.
      const Var l = model.add_continuous(0.0, deadline_us(task),
                                         "lambda_" + std::to_string(task));
      lambda.emplace(task, l);
      // Constraint 9, one row per candidate last-transfer index.
      for (int gbar = 0; gbar < big_g; ++gbar) {
        LinExpr rhs = lambda_o_us * LinExpr(rgi.at(task));
        for (int g = 0; g <= gbar; ++g) {
          for (int z = 0; z < num_comms; ++z) {
            rhs += copy_us[static_cast<std::size_t>(z)] *
                   cg[static_cast<std::size_t>(z)][static_cast<std::size_t>(g)];
          }
        }
        rhs -= m9 * (1.0 - LinExpr(rg.at(task)[static_cast<std::size_t>(gbar)]));
        // lambda >= rhs  <=>  lambda - rhs >= 0.
        model.add_constraint(LinExpr(l) - rhs, Sense::kGe, 0.0,
                             "C9_" + std::to_string(task) + "_" +
                                 std::to_string(gbar));
      }
    }
  }

  /// Fingerprint of a communication subset (for pattern deduplication).
  static std::size_t fingerprint(const std::vector<int>& zs) {
    std::size_t h = 1469598103934665603ULL;
    for (const int z : zs) {
      h ^= static_cast<std::size_t>(z) + 0x9e3779b97f4a7c15ULL;
      h *= 1099511628211ULL;
    }
    return h;
  }

  std::vector<int> comm_indices_at(Time t) const {
    std::vector<int> out;
    for (const Communication& c : comms.comms_at(t)) {
      out.push_back(comms.index_at_s0(c));
    }
    return out;
  }

  void build_slotfit_rows() {
    // Constraint 10: the communications of each instant must complete
    // within the gap to the next instant. One GMAX variable per distinct
    // pattern; per pattern only the smallest gap binds.
    const std::vector<Time>& inst = comms.required_instants();
    if (inst.size() < 1) return;
    const Time h = app.hyperperiod();
    std::map<std::size_t, std::pair<std::vector<int>, Time>> patterns;
    for (std::size_t i = 0; i < inst.size(); ++i) {
      const Time t1 = inst[i];
      const Time t2 = (i + 1 < inst.size()) ? inst[i + 1] : h + inst[0];
      std::vector<int> zs = comm_indices_at(t1);
      const std::size_t fp = fingerprint(zs);
      auto [it, inserted] = patterns.try_emplace(fp, std::move(zs), t2 - t1);
      if (!inserted) it->second.second = std::min(it->second.second, t2 - t1);
    }
    int pidx = 0;
    for (const auto& [fp, entry] : patterns) {
      (void)fp;
      const auto& [zs, gap] = entry;
      const Var gmax =
          model.add_continuous(1.0, static_cast<double>(big_g),
                               "GMAX_" + std::to_string(pidx));
      gmax_vars.emplace(fp, std::make_pair(gmax, zs));
      double bytes_us = 0;
      for (const int z : zs) {
        bytes_us += copy_us[static_cast<std::size_t>(z)];
        model.add_constraint(
            LinExpr(gmax) - LinExpr(cgi[static_cast<std::size_t>(z)]),
            Sense::kGe, 0.0,
            "C10max_" + std::to_string(pidx) + "_" + std::to_string(z));
      }
      model.add_constraint(lambda_o_us * LinExpr(gmax), Sense::kLe,
                           static_cast<double>(gap) * kUsPerNs - bytes_us,
                           "C10_" + std::to_string(pidx));
      ++pidx;
    }
  }

  void build_objective() {
    switch (opt.objective) {
      case MilpObjective::kNone:
        break;
      case MilpObjective::kMinTransfers: {
        const Var zv = model.add_continuous(1.0, static_cast<double>(big_g),
                                            "Zdmat");
        objective_var = zv;
        for (const auto& [task, r] : rgi) {
          model.add_constraint(LinExpr(zv) - LinExpr(r), Sense::kGe, 0.0,
                               "Obj4_" + std::to_string(task));
        }
        model.set_objective(LinExpr(zv), milp::ObjSense::kMinimize);
        break;
      }
      case MilpObjective::kMinLatencyRatio: {
        const Var zv = model.add_continuous(0.0, 1.0, "Zdel");
        objective_var = zv;
        for (const auto& [task, l] : lambda) {
          const double period_us =
              static_cast<double>(app.task(model::TaskId{task}).period) *
              kUsPerNs;
          model.add_constraint(period_us * LinExpr(zv) - LinExpr(l),
                               Sense::kGe, 0.0,
                               "Obj5_" + std::to_string(task));
        }
        model.set_objective(LinExpr(zv), milp::ObjSense::kMinimize);
        break;
      }
    }
  }

  // ==========================================================================
  // Contiguity (Constraint 6): shared pieces
  // ==========================================================================

  /// The LG witness variable for "comm zc's label sits immediately after
  /// comm za's label in both memories, and zc is in transfer g". Created on
  /// first use together with its three covering rows.
  Var lg_var(int grp, int za, int zc, int g) {
    const auto key = std::make_tuple(grp, za, zc, g);
    if (const auto it = lg.find(key); it != lg.end()) return it->second;
    const GroupInfo& gi = groups[static_cast<std::size_t>(grp)];
    const Communication& a = cset[static_cast<std::size_t>(za)];
    const Communication& c = cset[static_cast<std::size_t>(zc)];
    const Var v = model.add_continuous(
        0.0, 1.0,
        "LG_" + std::to_string(grp) + "_" + std::to_string(za) + "_" +
            std::to_string(zc) + "_" + std::to_string(g));
    lg.emplace(key, v);
    // Covering rows: v <= AD_G(a->c), v <= AD_x(slot a -> slot c),
    // v <= CG[zc][g]. Only upper bounds are needed: v appears positively on
    // the witness side of Constraint 6, so the LP may not fake a witness.
    const int mg = app.platform().global_memory().value;
    model.add_constraint(
        LinExpr(v) - LinExpr(ad.at({mg, global_node(a), global_node(c)})),
        Sense::kLe, 0.0, "LGg");
    model.add_constraint(
        LinExpr(v) -
            LinExpr(ad.at({gi.mem.value, local_node(gi, a), local_node(gi, c)})),
        Sense::kLe, 0.0, "LGx");
    model.add_constraint(
        LinExpr(v) - LinExpr(cg[static_cast<std::size_t>(zc)]
                               [static_cast<std::size_t>(g)]),
        Sense::kLe, 0.0, "LGc");
    return v;
  }

  int global_node(const Communication& c) const {
    const auto& sl = slots[static_cast<std::size_t>(
        app.platform().global_memory().value)];
    const Slot target = global_slot_of(c);
    for (int i = 0; i < static_cast<int>(sl.size()); ++i) {
      if (sl[static_cast<std::size_t>(i)] == target) return i;
    }
    throw support::PreconditionError("global slot not found");
  }

  int local_node(const GroupInfo& gi, const Communication& c) const {
    const auto& sl = slots[static_cast<std::size_t>(gi.mem.value)];
    const Slot target = local_slot_of(c);
    for (int i = 0; i < static_cast<int>(sl.size()); ++i) {
      if (sl[static_cast<std::size_t>(i)] == target) return i;
    }
    throw support::PreconditionError("local slot not found");
  }

  /// Builds the Constraint-6 row for pair (zi, zj) over witness set
  /// `present` (the group's communications required at the instant).
  milp::LazyRow make_pair_row(int grp, int g, int zi, int zj,
                              const std::vector<int>& present) {
    LinExpr expr =
        LinExpr(cg[static_cast<std::size_t>(zi)][static_cast<std::size_t>(g)]) +
        LinExpr(cg[static_cast<std::size_t>(zj)][static_cast<std::size_t>(g)]);
    // A witness must involve a *different* label: two communications of the
    // same label have identical global slots, for which adjacency (and thus
    // an LG variable) is undefined.
    auto distinct_label = [&](int z1, int z2) {
      return !(cset[static_cast<std::size_t>(z1)].label ==
               cset[static_cast<std::size_t>(z2)].label);
    };
    for (const int zc : present) {
      if (zc != zi && distinct_label(zi, zc)) {
        expr -= LinExpr(lg_var(grp, zi, zc, g));
      }
      if (zc != zj && distinct_label(zj, zc)) {
        expr -= LinExpr(lg_var(grp, zj, zc, g));
      }
    }
    return {std::move(expr), Sense::kLe, 1.0,
            "C6_" + std::to_string(g) + "_" + std::to_string(zi) + "_" +
                std::to_string(zj)};
  }

  void build_eager_contiguity() {
    // All pair rows for every distinct per-instant restriction of every
    // group. Exponential in nothing, but cubic in group size — intended for
    // small instances and tests.
    std::set<std::tuple<int, std::size_t>> seen;  // (group, fingerprint)
    for (const Time t : comms.required_instants()) {
      const std::vector<int> zs = comm_indices_at(t);
      for (int grp = 0; grp < static_cast<int>(groups.size()); ++grp) {
        std::vector<int> present;
        for (const int z : zs) {
          if (group_of[static_cast<std::size_t>(z)] == grp) {
            present.push_back(z);
          }
        }
        if (present.size() < 2) continue;
        if (!seen.insert({grp, fingerprint(present)}).second) continue;
        for (std::size_t i = 0; i < present.size(); ++i) {
          for (std::size_t j = i + 1; j < present.size(); ++j) {
            for (int g = 0; g < big_g; ++g) {
              milp::LazyRow r =
                  make_pair_row(grp, g, present[i], present[j], present);
              model.add_constraint(std::move(r.expr), r.sense, r.rhs, r.name);
            }
          }
        }
      }
    }
  }

  // ==========================================================================
  // Decoding and separation
  // ==========================================================================

  /// Reads a variable's value out of a (possibly shorter) assignment.
  static double value_of(const std::vector<double>& x, Var v) {
    LETDMA_ENSURE(v.index >= 0, "unset variable");
    if (v.index >= static_cast<int>(x.size())) return 0.0;
    return x[static_cast<std::size_t>(v.index)];
  }

  MemoryLayout decode_layout(const std::vector<double>& x) const {
    MemoryLayout layout(app);
    for (int m = 0; m < static_cast<int>(slots.size()); ++m) {
      const auto& sl = slots[static_cast<std::size_t>(m)];
      if (sl.empty()) continue;
      std::vector<int> order(sl.size());
      for (std::size_t i = 0; i < sl.size(); ++i) {
        order[i] = static_cast<int>(i);
      }
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return value_of(x, pl[static_cast<std::size_t>(m)]
                              [static_cast<std::size_t>(a)]) <
               value_of(x, pl[static_cast<std::size_t>(m)]
                              [static_cast<std::size_t>(b)]);
      });
      std::vector<Slot> ordered;
      ordered.reserve(sl.size());
      for (const int i : order) {
        ordered.push_back(sl[static_cast<std::size_t>(i)]);
      }
      layout.set_order(model::MemoryId{m}, std::move(ordered));
    }
    return layout;
  }

  std::vector<int> decode_assignment(const std::vector<double>& x) const {
    std::vector<int> g_of(static_cast<std::size_t>(num_comms), -1);
    for (int z = 0; z < num_comms; ++z) {
      for (int g = 0; g < big_g; ++g) {
        if (value_of(x, cg[static_cast<std::size_t>(z)]
                           [static_cast<std::size_t>(g)]) > 0.5) {
          g_of[static_cast<std::size_t>(z)] = g;
          break;
        }
      }
      LETDMA_ENSURE(g_of[static_cast<std::size_t>(z)] >= 0,
                    "communication without a transfer in the solution");
    }
    return g_of;
  }

  /// Lazy separation: semantic contiguity check of the candidate at every
  /// instant; returns violated Constraint-6 pair rows.
  std::vector<milp::LazyRow> separate(const std::vector<double>& x) {
    const MemoryLayout layout = decode_layout(x);
    const std::vector<int> g_of = decode_assignment(x);
    const int mg = app.platform().global_memory().value;

    std::vector<milp::LazyRow> rows;
    for (const Time t : comms.required_instants()) {
      const std::vector<int> zs = comm_indices_at(t);
      // Partition by (transfer, group).
      std::map<std::pair<int, int>, std::vector<int>> cells;
      for (const int z : zs) {
        cells[{g_of[static_cast<std::size_t>(z)],
               group_of[static_cast<std::size_t>(z)]}]
            .push_back(z);
      }
      for (const auto& [key, present] : cells) {
        const auto [g, grp] = key;
        if (present.size() < 2) continue;
        const std::size_t fp = fingerprint(present);
        const GroupInfo& gi = groups[static_cast<std::size_t>(grp)];
        // A pair is fine when some present communication's label sits
        // immediately after one of the pair's labels in BOTH memories.
        auto joint_after = [&](int za, int zc) {
          const Communication& a = cset[static_cast<std::size_t>(za)];
          const Communication& c = cset[static_cast<std::size_t>(zc)];
          return layout.adjacent(model::MemoryId{mg}, global_slot_of(a),
                                 global_slot_of(c)) &&
                 layout.adjacent(gi.mem, local_slot_of(a), local_slot_of(c));
        };
        for (std::size_t i = 0; i < present.size(); ++i) {
          for (std::size_t j = i + 1; j < present.size(); ++j) {
            const int zi = present[i];
            const int zj = present[j];
            bool witnessed = false;
            for (const int zc : present) {
              if ((zc != zi && joint_after(zi, zc)) ||
                  (zc != zj && joint_after(zj, zc))) {
                witnessed = true;
                break;
              }
            }
            if (witnessed) continue;
            if (!added_pair_rows.insert({g, zi, zj, fp}).second) continue;
            rows.push_back(make_pair_row(grp, g, zi, zj, present));
          }
        }
      }
    }
    return rows;
  }

  // ==========================================================================
  // Warm start and extraction
  // ==========================================================================

  std::optional<std::vector<double>> warm_start_vector(
      const ScheduleResult& greedy) {
    if (static_cast<int>(greedy.s0_transfers.size()) > big_g) return {};
    std::vector<double> x(static_cast<std::size_t>(model.num_vars()), 0.0);
    auto set = [&](Var v, double val) {
      LETDMA_ENSURE(v.index >= 0 && v.index < static_cast<int>(x.size()),
                    "warm start variable out of range");
      x[static_cast<std::size_t>(v.index)] = val;
    };

    // Layout: PL and AD.
    for (int m = 0; m < static_cast<int>(slots.size()); ++m) {
      const auto& sl = slots[static_cast<std::size_t>(m)];
      if (sl.empty()) continue;
      const int l = static_cast<int>(sl.size());
      const auto& order = greedy.layout.order(model::MemoryId{m});
      std::vector<int> node_at(static_cast<std::size_t>(l), -1);
      for (int pos = 0; pos < l; ++pos) {
        // Node index of the slot at this position.
        const Slot& s = order[static_cast<std::size_t>(pos)];
        int node = -1;
        for (int i = 0; i < l; ++i) {
          if (sl[static_cast<std::size_t>(i)] == s) {
            node = i;
            break;
          }
        }
        LETDMA_ENSURE(node >= 0, "greedy layout slot missing from model");
        node_at[static_cast<std::size_t>(pos)] = node;
        set(pl[static_cast<std::size_t>(m)][static_cast<std::size_t>(node)],
            static_cast<double>(pos + 1));
      }
      set(ad.at({m, l, node_at[0]}), 1.0);  // begin -> first
      for (int pos = 0; pos + 1 < l; ++pos) {
        set(ad.at({m, node_at[static_cast<std::size_t>(pos)],
                   node_at[static_cast<std::size_t>(pos + 1)]}),
            1.0);
      }
      set(ad.at({m, node_at[static_cast<std::size_t>(l - 1)], l + 1}), 1.0);
    }

    // Assignment: CG/CGI/GM, then RG/RGI/lambda.
    std::vector<int> g_of(static_cast<std::size_t>(num_comms), -1);
    for (int g = 0; g < static_cast<int>(greedy.s0_transfers.size()); ++g) {
      for (const Communication& c : greedy.s0_transfers
               [static_cast<std::size_t>(g)].comms) {
        const int z = comms.index_at_s0(c);
        g_of[static_cast<std::size_t>(z)] = g;
        set(cg[static_cast<std::size_t>(z)][static_cast<std::size_t>(g)], 1.0);
        set(cgi[static_cast<std::size_t>(z)], static_cast<double>(g + 1));
        set(gm[static_cast<std::size_t>(g)][static_cast<std::size_t>(
                group_of[static_cast<std::size_t>(z)])],
            1.0);
      }
    }
    for (int z = 0; z < num_comms; ++z) {
      if (g_of[static_cast<std::size_t>(z)] < 0) return {};  // uncovered
    }

    // Cumulative copy cost by transfer for Constraint 9 arithmetic.
    std::vector<double> cum(static_cast<std::size_t>(big_g) + 1, 0.0);
    for (int z = 0; z < num_comms; ++z) {
      cum[static_cast<std::size_t>(g_of[static_cast<std::size_t>(z)]) + 1] +=
          copy_us[static_cast<std::size_t>(z)];
    }
    for (std::size_t i = 1; i < cum.size(); ++i) cum[i] += cum[i - 1];

    double obj_dmat = 1.0;
    double obj_del = 0.0;
    for (const auto& [task, list] : anchors) {
      int last = 0;
      for (const int z : list) {
        last = std::max(last, g_of[static_cast<std::size_t>(z)]);
      }
      set(rg.at(task)[static_cast<std::size_t>(last)], 1.0);
      set(rgi.at(task), static_cast<double>(last + 1));
      if (const auto sel = c3_selectors.find(task);
          sel != c3_selectors.end()) {
        // Activate the selector of one anchor achieving the maximum.
        for (const auto& [z, y] : sel->second) {
          if (g_of[static_cast<std::size_t>(z)] == last) {
            set(y, 1.0);
            break;
          }
        }
      }
      const double lam = static_cast<double>(last + 1) * lambda_o_us +
                         cum[static_cast<std::size_t>(last) + 1];
      if (lam > deadline_us(task) + 1e-9) return {};  // misses gamma_i
      set(lambda.at(task), lam);
      obj_dmat = std::max(obj_dmat, static_cast<double>(last + 1));
      obj_del = std::max(
          obj_del, lam / (static_cast<double>(
                              app.task(model::TaskId{task}).period) *
                          kUsPerNs));
    }

    // GMAX per pattern and the objective variable: locate them by scanning
    // model rows would be brittle; instead recompute from names is avoided
    // by storing the vars. (GMAX vars are stored in gmax_vars below.)
    for (const auto& [fp, entry] : gmax_vars) {
      (void)fp;
      const auto& [var, zs] = entry;
      double worst = 1.0;
      for (const int z : zs) {
        worst = std::max(worst, static_cast<double>(
                                    g_of[static_cast<std::size_t>(z)] + 1));
      }
      set(var, worst);
    }
    if (objective_var) {
      set(*objective_var, opt.objective == MilpObjective::kMinTransfers
                              ? obj_dmat
                              : obj_del);
    }

    // Eagerly created LG witnesses take their true AND value.
    const int mgid = app.platform().global_memory().value;
    for (const auto& [key, var] : lg) {
      const auto [grp, za, zc, g] = key;
      const GroupInfo& gi = groups[static_cast<std::size_t>(grp)];
      const Communication& a = cset[static_cast<std::size_t>(za)];
      const Communication& c = cset[static_cast<std::size_t>(zc)];
      const bool after =
          greedy.layout.adjacent(model::MemoryId{mgid}, global_slot_of(a),
                                 global_slot_of(c)) &&
          greedy.layout.adjacent(gi.mem, local_slot_of(a), local_slot_of(c));
      if (after && g_of[static_cast<std::size_t>(zc)] == g) set(var, 1.0);
    }
    return x;
  }

  ScheduleResult extract(const std::vector<double>& x) const {
    MemoryLayout layout = decode_layout(x);
    const std::vector<int> g_of = decode_assignment(x);
    std::vector<std::vector<Communication>> buckets(
        static_cast<std::size_t>(big_g));
    for (int z = 0; z < num_comms; ++z) {
      buckets[static_cast<std::size_t>(g_of[static_cast<std::size_t>(z)])]
          .push_back(cset[static_cast<std::size_t>(z)]);
    }
    std::vector<DmaTransfer> s0;
    for (auto& bucket : buckets) {
      if (bucket.empty()) continue;
      s0.push_back(make_transfer(layout, std::move(bucket)));
    }
    TransferSchedule sched = derive_schedule(comms, layout, s0);
    return {std::move(layout), std::move(s0), std::move(sched)};
  }

  // Populated by build_slotfit_rows / build_objective for warm starts.
  std::map<std::size_t, std::pair<Var, std::vector<int>>> gmax_vars;
  std::optional<Var> objective_var;
  // Exact-max selector binaries (exact_last_read mode): task -> (z, y_z).
  std::map<int, std::vector<std::pair<int, Var>>> c3_selectors;
};

MilpScheduler::MilpScheduler(const LetComms& comms,
                             MilpSchedulerOptions options)
    : impl_(std::make_shared<Impl>(comms, options)) {
  obs::ScopedSpan span("let.milp.build", "let");
  impl_->build();
  span.arg("comms", static_cast<std::int64_t>(impl_->num_comms));
  span.arg("vars", static_cast<std::int64_t>(impl_->model.num_vars()));
  span.arg("rows", static_cast<std::int64_t>(impl_->model.num_constraints()));
}

int MilpScheduler::model_vars() const { return impl_->model.num_vars(); }
int MilpScheduler::model_rows() const {
  return impl_->model.num_constraints();
}

MilpScheduleResult MilpScheduler::solve() {
  Impl& im = *impl_;
  auto impl = impl_;
  milp::MilpOptions solver_opt = im.opt.solver;
  if (im.opt.on_incumbent) {
    solver_opt.on_incumbent = [impl, cb = im.opt.on_incumbent](
                                  const std::vector<double>& x,
                                  double objective) {
      cb(impl->extract(x), objective);
    };
  }
  milp::MilpSolver solver(im.model, solver_opt);
  if (!im.opt.eager_contiguity) {
    solver.set_lazy_callback(
        [impl](const std::vector<double>& x) { return impl->separate(x); });
  }

  if (im.opt.greedy_warm_start || im.opt.warm_start_hint != nullptr) {
    obs::ScopedSpan ws_span("let.milp.warm_start", "let");
    // External hint first, then the preferred greedy variant (matched to
    // the objective and polished by a short local search), then the raw
    // strategies as fallbacks in case the preferred one misses a deadline.
    std::vector<ScheduleResult> candidates;
    if (im.opt.warm_start_hint != nullptr) {
      candidates.push_back(*im.opt.warm_start_hint);
    }
    if (im.opt.greedy_warm_start) {
      const std::size_t greedy_at = candidates.size();
      candidates.push_back(im.opt.objective == MilpObjective::kMinTransfers
                               ? GreedyScheduler::best_transfer_count(im.comms)
                               : GreedyScheduler::best_latency_ratio(im.comms));
      try {
        LocalSearchOptions ls;
        ls.goal = im.opt.objective == MilpObjective::kMinTransfers
                      ? LocalSearchGoal::kMinTransfers
                      : LocalSearchGoal::kMinMaxLatencyRatio;
        ls.max_evaluations = 800;
        LocalSearchResult polished = improve_schedule(
            im.comms, candidates[greedy_at], ls);
        candidates.insert(
            candidates.begin() + static_cast<std::ptrdiff_t>(greedy_at),
            std::move(polished.schedule));
      } catch (const support::Error&) {
        // The raw candidate violates a deadline; fall through to the others.
      }
      for (const GreedyStrategy s :
           {GreedyStrategy::kUrgencyFirst, GreedyStrategy::kWriteBatched,
            GreedyStrategy::kReadBatched}) {
        candidates.push_back(GreedyScheduler(im.comms, {s}).build());
      }
    }
    bool seeded = false;
    for (const ScheduleResult& greedy : candidates) {
      if (const auto x = im.warm_start_vector(greedy)) {
        if (solver.set_warm_start(*x)) {
          seeded = true;
          break;
        }
      }
    }
    ws_span.arg("candidates", static_cast<std::int64_t>(candidates.size()));
    ws_span.arg("seeded", seeded);
  }

  const milp::MilpResult r = [&] {
    obs::ScopedSpan solve_span("let.milp.solve", "let");
    return solver.solve();
  }();
  MilpScheduleResult out;
  out.status = r.status;
  out.stats = r.stats;
  out.objective = r.objective;
  if (r.has_solution()) {
    obs::ScopedSpan extract_span("let.milp.extract", "let");
    out.schedule.emplace(im.extract(r.x));
    out.dma_transfers_at_s0 =
        static_cast<int>(out.schedule->s0_transfers.size());
    extract_span.arg("transfers",
                     static_cast<std::int64_t>(out.dma_transfers_at_s0));
  }
  return out;
}

}  // namespace letdma::let
