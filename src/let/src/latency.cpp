#include "letdma/let/latency.hpp"

#include <algorithm>

#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

bool same_comm(const Communication& a, const Communication& b) {
  return a.dir == b.dir && a.task == b.task && a.label == b.label;
}

/// Two instants with fieldwise-equal transfer lists have identical
/// per-task latencies (the release sets may differ, the arithmetic not).
bool same_transfer_list(const std::vector<DmaTransfer>& a,
                        const std::vector<DmaTransfer>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const DmaTransfer& x = a[i];
    const DmaTransfer& y = b[i];
    if (x.dir != y.dir || x.local_mem.value != y.local_mem.value ||
        x.bytes != y.bytes || x.local_addr != y.local_addr ||
        x.global_addr != y.global_addr || x.comms.size() != y.comms.size()) {
      return false;
    }
    for (std::size_t c = 0; c < x.comms.size(); ++c) {
      if (!same_comm(x.comms[c], y.comms[c])) return false;
    }
  }
  return true;
}

}  // namespace

Time LatencyModel::transfer_duration(const DmaTransfer& t) const {
  return platform_.dma().per_transfer_overhead() +
         platform_.dma().copy_time(t.bytes);
}

std::vector<Time> LatencyModel::completion_times(
    const std::vector<DmaTransfer>& transfers) const {
  std::vector<Time> out;
  out.reserve(transfers.size());
  Time acc = 0;
  for (const DmaTransfer& t : transfers) {
    acc += transfer_duration(t);
    out.push_back(acc);
  }
  return out;
}

Time LatencyModel::total_duration(
    const std::vector<DmaTransfer>& transfers) const {
  Time acc = 0;
  for (const DmaTransfer& t : transfers) acc += transfer_duration(t);
  return acc;
}

Time LatencyModel::task_latency(const std::vector<DmaTransfer>& transfers,
                                model::TaskId task,
                                ReadinessSemantics sem) const {
  if (transfers.empty()) return 0;
  if (sem == ReadinessSemantics::kGiotto) return total_duration(transfers);
  Time acc = 0;
  Time ready_at = 0;
  for (const DmaTransfer& t : transfers) {
    acc += transfer_duration(t);
    const bool involves_task =
        std::any_of(t.comms.begin(), t.comms.end(),
                    [&](const Communication& c) { return c.task == task; });
    if (involves_task) ready_at = acc;
  }
  return ready_at;
}

Time LatencyModel::cpu_copy_duration(
    const model::Application& app,
    const std::vector<Communication>& comms) const {
  Time acc = 0;
  for (const Communication& c : comms) {
    acc += platform_.cpu_copy().copy_time(app.label(c.label).size_bytes);
  }
  return acc;
}

std::vector<Time> worst_case_latencies(const LetComms& comms,
                                       const TransferSchedule& schedule,
                                       ReadinessSemantics sem) {
  const model::Application& app = comms.app();
  const LatencyModel lat(app.platform());
  const int num_tasks = app.num_tasks();
  std::vector<Time> out(static_cast<std::size_t>(num_tasks), 0);

  // Per-task latencies of the current instant's transfer list, recomputed
  // only when the list differs from the previous instant's (hyperperiod
  // schedules repeat long runs of identical slots). A single pass over the
  // transfers fills every task at once: under kProposed a task's latency is
  // the completion time of the last transfer carrying one of its
  // communications; under kGiotto every task waits for the whole instant.
  std::vector<Time> per_task(static_cast<std::size_t>(num_tasks), 0);
  const std::vector<DmaTransfer>* prev = nullptr;
  for (const auto& [t, transfers] : schedule.all()) {
    if (prev == nullptr || !same_transfer_list(*prev, transfers)) {
      std::fill(per_task.begin(), per_task.end(), Time{0});
      if (sem == ReadinessSemantics::kGiotto) {
        if (!transfers.empty()) {
          std::fill(per_task.begin(), per_task.end(),
                    lat.total_duration(transfers));
        }
      } else {
        Time acc = 0;
        for (const DmaTransfer& tr : transfers) {
          acc += lat.transfer_duration(tr);
          for (const Communication& c : tr.comms) {
            per_task[static_cast<std::size_t>(c.task.value)] = acc;
          }
        }
      }
      prev = &transfers;
    }
    for (int i = 0; i < num_tasks; ++i) {
      // Only release instants of the task matter: the task can only be
      // waiting for data at its own releases.
      if (t % app.task(model::TaskId{i}).period != 0) continue;
      out[static_cast<std::size_t>(i)] =
          std::max(out[static_cast<std::size_t>(i)], per_task[static_cast<std::size_t>(i)]);
    }
  }
  return out;
}

}  // namespace letdma::let
