#include "letdma/let/latency.hpp"

#include <algorithm>

#include "letdma/support/error.hpp"

namespace letdma::let {

Time LatencyModel::transfer_duration(const DmaTransfer& t) const {
  return platform_.dma().per_transfer_overhead() +
         platform_.dma().copy_time(t.bytes);
}

std::vector<Time> LatencyModel::completion_times(
    const std::vector<DmaTransfer>& transfers) const {
  std::vector<Time> out;
  out.reserve(transfers.size());
  Time acc = 0;
  for (const DmaTransfer& t : transfers) {
    acc += transfer_duration(t);
    out.push_back(acc);
  }
  return out;
}

Time LatencyModel::total_duration(
    const std::vector<DmaTransfer>& transfers) const {
  Time acc = 0;
  for (const DmaTransfer& t : transfers) acc += transfer_duration(t);
  return acc;
}

Time LatencyModel::task_latency(const model::Application& app,
                                const std::vector<DmaTransfer>& transfers,
                                model::TaskId task,
                                ReadinessSemantics sem) const {
  (void)app;
  if (transfers.empty()) return 0;
  if (sem == ReadinessSemantics::kGiotto) return total_duration(transfers);
  Time acc = 0;
  Time ready_at = 0;
  for (const DmaTransfer& t : transfers) {
    acc += transfer_duration(t);
    const bool involves_task =
        std::any_of(t.comms.begin(), t.comms.end(),
                    [&](const Communication& c) { return c.task == task; });
    if (involves_task) ready_at = acc;
  }
  return ready_at;
}

Time LatencyModel::cpu_copy_duration(
    const model::Application& app,
    const std::vector<Communication>& comms) const {
  Time acc = 0;
  for (const Communication& c : comms) {
    acc += platform_.cpu_copy().copy_time(app.label(c.label).size_bytes);
  }
  return acc;
}

std::map<int, Time> worst_case_latencies(const LetComms& comms,
                                         const TransferSchedule& schedule,
                                         ReadinessSemantics sem) {
  const model::Application& app = comms.app();
  const LatencyModel lat(app.platform());
  std::map<int, Time> out;
  for (int i = 0; i < app.num_tasks(); ++i) out[i] = 0;

  for (const auto& [t, transfers] : schedule.all()) {
    for (int i = 0; i < app.num_tasks(); ++i) {
      const model::Task& task = app.task(model::TaskId{i});
      // Only release instants of the task matter: the task can only be
      // waiting for data at its own releases.
      if (t % task.period != 0) continue;
      const Time l =
          lat.task_latency(app, transfers, model::TaskId{i}, sem);
      out[i] = std::max(out[i], l);
    }
  }
  return out;
}

}  // namespace letdma::let
