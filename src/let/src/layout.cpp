#include "letdma/let/layout.hpp"

#include <algorithm>

#include "letdma/support/error.hpp"

namespace letdma::let {

Slot local_slot_of(const Communication& c) { return Slot{c.label, c.task}; }

Slot global_slot_of(const Communication& c) {
  return Slot{c.label, model::TaskId{-1}};
}

MemoryLayout::MemoryLayout(const model::Application& app) : app_(&app) {
  LETDMA_ENSURE(app.finalized(),
                "MemoryLayout requires a finalized application");
  order_.resize(static_cast<std::size_t>(app.platform().num_memories()));
  offsets_.resize(order_.size());
}

std::vector<Slot> MemoryLayout::required_slots(const model::Application& app,
                                               model::MemoryId mem) {
  std::vector<Slot> slots;
  const model::Platform& plat = app.platform();
  if (plat.is_global(mem)) {
    for (int l = 0; l < app.num_labels(); ++l) {
      if (app.is_inter_core(model::LabelId{l})) {
        slots.push_back(Slot{model::LabelId{l}, model::TaskId{-1}});
      }
    }
  } else {
    const model::CoreId core = plat.core_of(mem);
    for (const model::InterCoreEdge& e : app.inter_core_edges()) {
      if (app.task(e.producer).core == core) {
        slots.push_back(Slot{e.label, e.producer});
      }
      if (app.task(e.consumer).core == core) {
        slots.push_back(Slot{e.label, e.consumer});
      }
    }
  }
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

void MemoryLayout::set_order(model::MemoryId mem, std::vector<Slot> slots) {
  LETDMA_ENSURE(mem.value >= 0 &&
                    mem.value < app_->platform().num_memories(),
                "unknown memory id");
  std::vector<Slot> sorted = slots;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<Slot> required = required_slots(*app_, mem);
  LETDMA_ENSURE(sorted == required,
                "slot order for " + app_->platform().memory_name(mem) +
                    " is not a permutation of the required slots");
  std::vector<std::int64_t> offs(slots.size());
  std::int64_t addr = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    offs[i] = addr;
    addr += app_->label(slots[i].label).size_bytes;
  }
  order_[static_cast<std::size_t>(mem.value)] = std::move(slots);
  offsets_[static_cast<std::size_t>(mem.value)] = std::move(offs);
}

bool MemoryLayout::has_order(model::MemoryId mem) const {
  LETDMA_ENSURE(mem.value >= 0 &&
                    mem.value < app_->platform().num_memories(),
                "unknown memory id");
  // Memories with no required slots are trivially ordered.
  return !order_[static_cast<std::size_t>(mem.value)].empty() ||
         required_slots(*app_, mem).empty();
}

const std::vector<Slot>& MemoryLayout::order(model::MemoryId mem) const {
  LETDMA_ENSURE(mem.value >= 0 &&
                    mem.value < app_->platform().num_memories(),
                "unknown memory id");
  return order_[static_cast<std::size_t>(mem.value)];
}

int MemoryLayout::position(model::MemoryId mem, const Slot& slot) const {
  const std::vector<Slot>& ord = order(mem);
  for (std::size_t i = 0; i < ord.size(); ++i) {
    if (ord[i] == slot) return static_cast<int>(i);
  }
  throw support::PreconditionError(
      "slot not placed in " + app_->platform().memory_name(mem) + ": label " +
      app_->label(slot.label).name);
}

std::int64_t MemoryLayout::address(model::MemoryId mem,
                                   const Slot& slot) const {
  const int pos = position(mem, slot);
  return offsets_[static_cast<std::size_t>(mem.value)]
                 [static_cast<std::size_t>(pos)];
}

bool MemoryLayout::adjacent(model::MemoryId mem, const Slot& a,
                            const Slot& b) const {
  return position(mem, b) == position(mem, a) + 1;
}

std::int64_t MemoryLayout::total_bytes(model::MemoryId mem) const {
  std::int64_t sum = 0;
  for (const Slot& s : order(mem)) sum += app_->label(s.label).size_bytes;
  return sum;
}

}  // namespace letdma::let
