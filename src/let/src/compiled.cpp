#include "letdma/let/compiled.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

int words_for(int bits) { return (bits + 63) / 64; }

void set_bit(std::vector<std::uint64_t>& words, int bit) {
  words[static_cast<std::size_t>(bit >> 6)] |= std::uint64_t{1} << (bit & 63);
}

}  // namespace

CompiledComms::CompiledComms(const LetComms& comms) : comms_(&comms) {
  const model::Application& app = comms.app();
  const std::vector<Communication>& s0 = comms.comms_at_s0();
  num_comms_ = static_cast<int>(s0.size());
  num_tasks_ = app.num_tasks();
  num_labels_ = app.num_labels();
  comm_words_ = words_for(std::max(num_comms_, 1));
  task_words_ = words_for(std::max(num_tasks_, 1));

  overhead_ = app.platform().dma().per_transfer_overhead();
  copy_cost_ns_per_byte_ = app.platform().dma().copy_cost_ns_per_byte;

  is_write_.reserve(s0.size());
  task_.reserve(s0.size());
  label_.reserve(s0.size());
  mem_.reserve(s0.size());
  size_.reserve(s0.size());
  solo_copy_.reserve(s0.size());
  for (const Communication& c : s0) {
    is_write_.push_back(c.dir == Direction::kWrite ? 1 : 0);
    task_.push_back(c.task.value);
    label_.push_back(c.label.value);
    mem_.push_back(local_memory_of(app, c).value);
    const std::int64_t bytes = app.label(c.label).size_bytes;
    size_.push_back(bytes);
    solo_copy_.push_back(copy_time(bytes));
  }

  periods_.resize(static_cast<std::size_t>(num_tasks_));
  deadlines_.resize(static_cast<std::size_t>(num_tasks_));
  for (int i = 0; i < num_tasks_; ++i) {
    const model::Task& t = app.task(model::TaskId{i});
    periods_[static_cast<std::size_t>(i)] = t.period;
    deadlines_[static_cast<std::size_t>(i)] =
        t.acquisition_deadline ? *t.acquisition_deadline : Time{-1};
    any_deadline_ = any_deadline_ || t.acquisition_deadline.has_value();
  }

  // Instant classes: walking T* in ascending order, instants with an
  // identical active set share one class; the class order is the order of
  // first occurrence, so a class scan visits holes in the same order an
  // instant scan would.
  patterns_.resize(s0.size());
  std::map<std::vector<std::uint64_t>, int> class_of;
  for (const Time t : comms.required_instants()) {
    std::vector<std::uint64_t> bits(
        static_cast<std::size_t>(comm_words_), 0);
    for (const Communication& c : comms.comms_at(t)) {
      set_bit(bits, comms.index_at_s0(c));
    }
    auto [it, fresh] = class_of.try_emplace(bits, num_classes());
    if (fresh) {
      active_.insert(active_.end(), bits.begin(), bits.end());
      class_tasks_.emplace_back();
    }
    const int cls = it->second;
    for (int i = 0; i < num_tasks_; ++i) {
      if (t % periods_[static_cast<std::size_t>(i)] == 0) {
        class_tasks_[static_cast<std::size_t>(cls)].push_back(i);
      }
    }
    for (int c = 0; c < num_comms_; ++c) {
      if ((bits[static_cast<std::size_t>(c >> 6)] >> (c & 63)) & 1u) {
        patterns_[static_cast<std::size_t>(c)].push_back(t);
      }
    }
  }
  for (std::vector<int>& tasks : class_tasks_) {
    std::sort(tasks.begin(), tasks.end());
    tasks.erase(std::unique(tasks.begin(), tasks.end()), tasks.end());
  }
}

Time CompiledComms::copy_time(std::int64_t bytes) const {
  return static_cast<Time>(copy_cost_ns_per_byte_ *
                           static_cast<double>(bytes));
}

CompiledTransfer CompiledComms::make_compiled_transfer(
    const std::vector<int>& run, int lo, int hi) const {
  CompiledTransfer t;
  t.comms.assign(run.begin() + lo, run.begin() + hi);
  t.comm_mask.assign(static_cast<std::size_t>(comm_words_), 0);
  t.task_mask.assign(static_cast<std::size_t>(task_words_), 0);
  for (const int c : t.comms) {
    t.bytes += size_bytes(c);
    set_bit(t.comm_mask, c);
    set_bit(t.task_mask, task_of(c));
  }
  t.duration = overhead_ + copy_time(t.bytes);
  return t;
}

void CompiledComms::pattern_split(const std::vector<int>& run, int lo, int hi,
                                  std::vector<CompiledTransfer>* out) const {
  // Mirrors greedy.cpp's former instant_restrictions_contiguous +
  // make_safe_transfers recursion: cut before the first absent index
  // inside the first class whose restriction has a hole, then retry both
  // halves from the first class again.
  for (int cls = 0; cls < num_classes(); ++cls) {
    int first = -1, last = -1;
    for (int i = lo; i < hi; ++i) {
      if (active(run[static_cast<std::size_t>(i)], cls)) {
        if (first < 0) first = i;
        last = i;
      }
    }
    if (first < 0) continue;
    for (int i = first; i <= last; ++i) {
      if (!active(run[static_cast<std::size_t>(i)], cls)) {
        pattern_split(run, lo, i, out);
        pattern_split(run, i, hi, out);
        return;
      }
    }
  }
  out->push_back(make_compiled_transfer(run, lo, hi));
}

void CompiledComms::decompose_group(const std::vector<int>& group,
                                    const std::vector<int>& label_global_pos,
                                    std::vector<CompiledTransfer>* out) const {
  if (group.empty()) return;
  const int m = static_cast<int>(group.size());
  // Sort by global position with the same comparator (and hence the same
  // tie permutation) as transfer.cpp's sort_by_global_position.
  std::vector<int> ord(static_cast<std::size_t>(m));
  std::iota(ord.begin(), ord.end(), 0);
  auto pos_of = [&](int k) {
    return label_global_pos[static_cast<std::size_t>(
        label_of(group[static_cast<std::size_t>(k)]))];
  };
  std::sort(ord.begin(), ord.end(),
            [&](int a, int b) { return pos_of(a) < pos_of(b); });

  // Memory-contiguous runs. Global adjacency is position+1; local
  // adjacency within one group is adjacency in emission order, because a
  // group's local slots are placed consecutively in emission order and
  // every communication owns a distinct local slot (inter-core edges only:
  // a task never both writes and reads one label over the DMA).
  std::vector<int> run;
  auto flush = [&]() {
    if (run.empty()) return;
    pattern_split(run, 0, static_cast<int>(run.size()), out);
    run.clear();
  };
  int prev = -1;
  for (const int k : ord) {
    const bool contiguous = prev >= 0 && pos_of(k) == pos_of(prev) + 1 &&
                            k == prev + 1;
    if (prev >= 0 && !contiguous) flush();
    run.push_back(group[static_cast<std::size_t>(k)]);
    prev = k;
  }
  flush();
}

std::vector<Time> CompiledComms::sweep_worst_case(
    const std::vector<DmaTransfer>& s0_order) const {
  // Compile the transfer list once: comm ids in the transfers' own order
  // (make_transfer keeps them sorted by global position, so list-adjacent
  // comms are memory-adjacent and per-class pieces are maximal runs of
  // present list-consecutive comms — exactly what derive_schedule +
  // split_into_transfers produce).
  std::vector<std::vector<int>> ids(s0_order.size());
  for (std::size_t g = 0; g < s0_order.size(); ++g) {
    for (const Communication& c : s0_order[g].comms) {
      ids[g].push_back(index_of(c));
    }
  }

  std::vector<Time> out(static_cast<std::size_t>(num_tasks_), 0);
  std::vector<Time> ready(static_cast<std::size_t>(num_tasks_), 0);
  std::vector<std::uint32_t> stamp(static_cast<std::size_t>(num_tasks_), 0);
  std::uint32_t epoch = 0;
  for (int cls = 0; cls < num_classes(); ++cls) {
    ++epoch;
    Time acc = 0;
    for (const std::vector<int>& transfer : ids) {
      std::size_t i = 0;
      while (i < transfer.size()) {
        if (!active(transfer[i], cls)) {
          ++i;
          continue;
        }
        std::size_t j = i;
        std::int64_t bytes = 0;
        while (j < transfer.size() && active(transfer[j], cls)) {
          bytes += size_bytes(transfer[j]);
          ++j;
        }
        acc += overhead_ + copy_time(bytes);
        for (std::size_t k = i; k < j; ++k) {
          const int task = task_of(transfer[k]);
          ready[static_cast<std::size_t>(task)] = acc;
          stamp[static_cast<std::size_t>(task)] = epoch;
        }
        i = j;
      }
    }
    for (const int task : released_tasks(cls)) {
      const Time lam = stamp[static_cast<std::size_t>(task)] == epoch
                           ? ready[static_cast<std::size_t>(task)]
                           : 0;
      out[static_cast<std::size_t>(task)] =
          std::max(out[static_cast<std::size_t>(task)], lam);
    }
  }
  return out;
}

ScheduleResult build_from_groups_compiled(
    const CompiledComms& compiled,
    const std::vector<std::vector<Communication>>& groups,
    bool reads_first_placement) {
  const LetComms& comms = compiled.let_comms();
  const model::Application& app = comms.app();
  const model::Platform& plat = app.platform();

  ScheduleResult result{MemoryLayout(app), {}, {}};
  std::vector<std::vector<Slot>> mem_order(
      static_cast<std::size_t>(plat.num_memories()));
  std::vector<int> label_global_pos(
      static_cast<std::size_t>(compiled.num_labels()), -1);
  std::set<std::pair<int, Slot>> placed;
  auto place = [&](model::MemoryId mem, const Slot& slot) {
    if (placed.insert({mem.value, slot}).second) {
      if (plat.is_global(mem)) {
        label_global_pos[static_cast<std::size_t>(slot.label.value)] =
            static_cast<int>(
                mem_order[static_cast<std::size_t>(mem.value)].size());
      }
      mem_order[static_cast<std::size_t>(mem.value)].push_back(slot);
    }
  };
  std::vector<const std::vector<Communication>*> placement_order;
  for (const auto& g : groups) placement_order.push_back(&g);
  if (reads_first_placement) {
    std::stable_partition(placement_order.begin(), placement_order.end(),
                          [](const std::vector<Communication>* g) {
                            return !g->empty() &&
                                   g->front().dir == Direction::kRead;
                          });
  }
  for (const std::vector<Communication>* g : placement_order) {
    for (const Communication& c : *g) {
      place(plat.global_memory(), global_slot_of(c));
      place(local_memory_of(app, c), local_slot_of(c));
    }
  }
  for (int m = 0; m < plat.num_memories(); ++m) {
    const model::MemoryId mem{m};
    if (!MemoryLayout::required_slots(app, mem).empty()) {
      result.layout.set_order(mem, mem_order[static_cast<std::size_t>(m)]);
    }
  }

  std::vector<int> ids;
  std::vector<CompiledTransfer> pieces;
  for (const std::vector<Communication>& g : groups) {
    if (g.empty()) continue;
    ids.clear();
    for (const Communication& c : g) ids.push_back(compiled.index_of(c));
    pieces.clear();
    compiled.decompose_group(ids, label_global_pos, &pieces);
    for (const CompiledTransfer& piece : pieces) {
      std::vector<Communication> pc;
      pc.reserve(piece.comms.size());
      for (const int c : piece.comms) pc.push_back(compiled.comm(c));
      result.s0_transfers.push_back(
          make_transfer(result.layout, std::move(pc)));
    }
  }
  result.schedule = derive_schedule(comms, result.layout, result.s0_transfers);
  return result;
}

}  // namespace letdma::let
