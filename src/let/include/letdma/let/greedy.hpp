// Greedy constructive scheduler.
//
// Produces a feasible (layout, transfer order) pair quickly, without the
// MILP: tasks are visited in urgency order (smallest acquisition deadline,
// then smallest period first); for each task the writes its reads depend on
// are emitted, then the task's own writes (Property 1), then its reads.
// The memory layouts follow the emission order, so consecutive emissions
// of one (memory, direction) group become single DMA transfers.
//
// Communications are merged into one transfer only when they share the
// same *presence pattern* over T* (the set of instants at which they are
// required): subsets of a transfer required at any instant are then
// all-or-nothing, which keeps every derived per-instant schedule contiguous
// (the schedule analogue of Constraint 6).
//
// The result is used standalone (as an ablation baseline) and as the MILP
// warm start.
#pragma once

#include "letdma/let/transfer.hpp"

namespace letdma::let {

class CompiledComms;

/// A complete protocol configuration: where every label lives, and the
/// ordered DMA transfers at s0 plus every other instant of T*.
struct ScheduleResult {
  MemoryLayout layout;
  std::vector<DmaTransfer> s0_transfers;
  TransferSchedule schedule;
};

/// Emission strategy — the knob the E5 ablation sweeps.
enum class GreedyStrategy {
  /// Interleave per-task (writes, reads) batches in urgency order:
  /// minimizes the readiness index of latency-sensitive tasks.
  kUrgencyFirst,
  /// All writes first (grouped per producer core), then per-task reads in
  /// urgency order: maximizes write merging, Giotto-compatible ordering.
  kWriteBatched,
  /// Like kWriteBatched, but the global-memory layout is placed to serve
  /// the *read* groups (reads merge maximally; writes may fragment).
  kReadBatched,
};

struct GreedyOptions {
  GreedyStrategy strategy = GreedyStrategy::kUrgencyFirst;
};

/// Builds a complete configuration from an ordered partition of C(s0):
/// memory layouts follow the group order (a slot is placed at its first
/// appearance), and each group becomes one transfer where contiguity (in
/// both memories and across every instant restriction) allows — otherwise
/// it is split minimally. The partition must cover C(s0) exactly; LET
/// ordering (Properties 1-2) is NOT checked here — run validate_schedule.
/// Shared by GreedyScheduler and LocalSearch.
ScheduleResult build_from_groups(
    const LetComms& comms,
    const std::vector<std::vector<Communication>>& groups);

class GreedyScheduler {
 public:
  explicit GreedyScheduler(const LetComms& comms, GreedyOptions options = {})
      : comms_(comms), options_(options) {}

  /// Same, on a prebuilt compiled instance: reuses its presence patterns
  /// and instant classes instead of recompiling them per build. The
  /// instance must outlive the scheduler.
  explicit GreedyScheduler(const CompiledComms& compiled,
                           GreedyOptions options = {});

  /// Builds the configuration. Always succeeds structurally; whether the
  /// result meets acquisition deadlines is up to validate_schedule().
  ScheduleResult build() const;

  /// Runs every strategy and returns the result with the fewest s0
  /// transfers (ties: smallest worst-case latency ratio).
  static ScheduleResult best_transfer_count(const LetComms& comms);

  /// Runs every strategy and returns the result with the smallest maximum
  /// latency/period ratio.
  static ScheduleResult best_latency_ratio(const LetComms& comms);

 private:
  const LetComms& comms_;
  const CompiledComms* compiled_ = nullptr;  // optional, not owned
  GreedyOptions options_;
};

}  // namespace letdma::let
