// Plain-text serialization of protocol configurations.
//
// A configuration (memory layout + ordered s0 transfers) is what gets
// deployed to a target: the layout fixes link-time addresses, the transfer
// list parameterizes the LET tasks. Format (one directive per line,
// '#' comments):
//
//   layout mem=M_G slots=lA,lB,lC
//   layout mem=M_1 slots=lA@tau1,lD@tau1
//   transfer dir=W comms=W:tau1:lA,W:tau3:lB
//
// Slots are `label` for the global instance or `label@task` for a local
// copy; communications are `W:task:label` / `R:label:task` mirrors of the
// to_string() rendering. read_schedule() rebuilds and re-derives the full
// per-instant schedule, so a loaded configuration is immediately
// validatable.
#pragma once

#include <string>

#include "letdma/let/greedy.hpp"

namespace letdma::let {

/// Serializes layout + s0 transfer order.
std::string write_schedule(const model::Application& app,
                           const ScheduleResult& schedule);

/// Parses the format above against `comms`'s application and re-derives
/// the per-instant schedule. Throws support::PreconditionError (with a
/// line number) on malformed input or references to unknown entities.
ScheduleResult read_schedule(const LetComms& comms, const std::string& text);

}  // namespace letdma::let
