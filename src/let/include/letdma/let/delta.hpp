// Incremental (delta) evaluation of local-search moves.
//
// The local search explores an ordered partition of C(s0) under three move
// kinds — relocate, merge, split. The seed evaluator rebuilt a full
// ScheduleResult per candidate; DeltaEvaluator scores a move against the
// compiled instance without rebuilding anything:
//
//   * order feasibility (Properties 1-2 on the partition) falls out of
//     maintained per-task write-max/read-min and per-label write/read-min
//     group positions, checked in O(|moved group|) per candidate — a pure
//     index shift of untouched groups can never create a violation;
//   * the objective comes from cached per-group transfer decompositions
//     plus the class sweep. A candidate invalidates a cached decomposition
//     only when it changes the group's content or the global-memory
//     position of one of its labels (the global layout is the sequence of
//     first label appearances in group order, so most read-group moves
//     leave every cached decomposition valid);
//   * the full ScheduleResult is only materialized through
//     build_from_groups_compiled once a move is *accepted*, which keeps
//     guard::certify's from-scratch cross-check independent of this
//     evaluator.
//
// Verdicts and objectives are bit-identical to the seed rebuild path;
// tests/let/delta_equivalence_test.cpp holds that equivalence over WATERS
// and randomized instances.
#pragma once

#include <cstdint>
#include <vector>

#include "letdma/let/compiled.hpp"
#include "letdma/let/local_search.hpp"

namespace letdma::let {

/// One candidate move on the ordered partition.
struct ScheduleDelta {
  enum class Kind {
    kRelocate,  // erase group `from`, reinsert at index `to`
    kMerge,     // append group `to`'s comms to group `from`, erase `to`
    kSplit,     // split group `from` in half (head keeps size/2 comms)
  };
  Kind kind = Kind::kRelocate;
  int from = -1;
  int to = -1;
};

struct DeltaEval {
  bool feasible = false;
  double objective = 0.0;
};

class DeltaEvaluator {
 public:
  /// `groups` is the partition as comm ids (CompiledComms indexing) in
  /// emission order. The compiled instance must outlive the evaluator.
  DeltaEvaluator(const CompiledComms& compiled,
                 std::vector<std::vector<int>> groups, LocalSearchGoal goal);

  int num_groups() const { return static_cast<int>(groups_.size()); }
  const std::vector<int>& group(int g) const {
    return groups_[static_cast<std::size_t>(g)];
  }
  bool group_is_write(int g) const {
    return compiled_->is_write(group(g).front());
  }
  int group_mem(int g) const {
    return compiled_->local_mem_of(group(g).front());
  }

  /// Scores the current partition from scratch (full feasibility check +
  /// sweep); the seed evaluation of improve_schedule.
  DeltaEval evaluate_current();

  /// Scores one candidate move without mutating the current partition.
  DeltaEval evaluate(const ScheduleDelta& move);

  /// Commits a move: updates the partition and rebuilds the maintained
  /// state (positions, feasibility counters, decomposition caches).
  void apply(const ScheduleDelta& move);

  /// The current partition as Communication lists (build_from_groups
  /// input order).
  std::vector<std::vector<Communication>> groups_as_comms() const;

  /// Full rebuild of the current partition — identical to
  /// build_from_groups on the same groups.
  ScheduleResult materialize() const;

 private:
  const CompiledComms* compiled_;
  LocalSearchGoal goal_;
  std::vector<std::vector<int>> groups_;

  // Maintained state for the current partition.
  std::vector<std::vector<CompiledTransfer>> decomp_;  // per group
  std::vector<int> label_pos_;        // label id -> global position
  std::vector<int> label_write_;      // label id -> write group (-1 none)
  std::vector<int> label_read_min_;   // label id -> min read group
  std::vector<int> task_write_max_;   // task id -> max write group (-1)
  std::vector<int> task_read_min_;    // task id -> min read group

  // Scratch (reused across evaluate calls).
  std::vector<int> cand_label_pos_;
  std::vector<std::uint32_t> label_epoch_;
  std::uint32_t label_gen_ = 0;
  std::vector<int> merged_scratch_;
  std::vector<int> head_scratch_;
  std::vector<int> tail_scratch_;
  std::vector<const std::vector<int>*> order_;  // candidate group contents
  std::vector<int> src_;  // original group index per entry; -1 = scratch
  std::vector<std::vector<CompiledTransfer>> scratch_decomp_;
  std::vector<const std::vector<CompiledTransfer>*> view_;
  std::vector<Time> ready_;
  std::vector<std::uint32_t> ready_stamp_;
  std::uint32_t sweep_gen_ = 0;
  // Per-instance call counter driving sampled eval timing (a member, not
  // a static: evaluators on different threads must not share it).
  std::uint32_t eval_calls_ = 0;

  void reset_state();
  bool move_order_feasible(const ScheduleDelta& move) const;
  /// Assigns candidate global positions (into cand_label_pos_) for the
  /// candidate group order in order_; returns true when any label moved
  /// relative to label_pos_.
  bool assign_candidate_positions();
  /// Scores the candidate decompositions currently in view_.
  DeltaEval sweep();
};

}  // namespace letdma::let
