// Data-acquisition latency arithmetic (rules R1-R3 and Constraint 9).
//
// Each DMA transfer costs lambda_O = o_DP + o_ISR of fixed overhead plus
// w_c per byte of payload. Transfers at one instant execute back-to-back in
// their scheduled order; a task becomes ready when the last transfer that
// carries one of its communications completes (proposed protocol), or when
// *all* transfers of the instant complete (Giotto ordering).
#pragma once

#include <vector>

#include "letdma/let/transfer.hpp"

namespace letdma::let {

/// Readiness semantics for latency aggregation.
enum class ReadinessSemantics {
  kProposed,  // rule R3: ready at the completing transfer of the task's data
  kGiotto,    // ready only after every communication of the instant
};

class LatencyModel {
 public:
  explicit LatencyModel(const model::Platform& platform)
      : platform_(platform) {}

  /// lambda_O + w_c * bytes for one transfer.
  Time transfer_duration(const DmaTransfer& t) const;

  /// Cumulative completion time of each transfer in an ordered list.
  std::vector<Time> completion_times(
      const std::vector<DmaTransfer>& transfers) const;

  /// Completion time of the whole instant (0 for an empty list).
  Time total_duration(const std::vector<DmaTransfer>& transfers) const;

  /// Readiness latency of `task` for one instant's ordered transfers.
  /// Under kProposed: completion of the last transfer carrying one of the
  /// task's communications (0 when it has none). Under kGiotto: the total
  /// duration whenever the instant is non-empty.
  Time task_latency(const std::vector<DmaTransfer>& transfers,
                    model::TaskId task, ReadinessSemantics sem) const;

  /// Time for the CPU (not the DMA) to perform the given copies
  /// sequentially — the Giotto-CPU baseline cost of one instant.
  Time cpu_copy_duration(const model::Application& app,
                         const std::vector<Communication>& comms) const;

 private:
  const model::Platform& platform_;
};

/// Worst-case data-acquisition latency per task over a full schedule:
/// max over the task's release instants of its per-instant latency.
/// Indexed by TaskId::value; every task has an entry (0 when it never
/// waits on a transfer). Hyperperiod instants that repeat the previous
/// instant's transfer list reuse its per-task latencies instead of
/// re-walking the transfers.
std::vector<Time> worst_case_latencies(const LetComms& comms,
                                       const TransferSchedule& schedule,
                                       ReadinessSemantics sem);

}  // namespace letdma::let
