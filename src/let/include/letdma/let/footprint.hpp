// Memory footprint reporting for a placed layout.
//
// Summarizes, per memory, the bytes occupied by LET label slots and the
// full address map — the artifact an integrator needs to reserve linker
// sections for the scratchpad copies and the global mirror.
#pragma once

#include <string>
#include <vector>

#include "letdma/let/layout.hpp"

namespace letdma::let {

struct MemoryFootprint {
  model::MemoryId memory;
  std::int64_t bytes = 0;
  int slots = 0;
};

/// Footprint per memory (only memories that hold slots).
std::vector<MemoryFootprint> footprint(const MemoryLayout& layout);

/// Human-readable address map:
///   M_1  0x0000  lA  (copy of tau1)  2000 B
std::string render_address_map(const MemoryLayout& layout);

}  // namespace letdma::let
