// Independent checker for LET-DMA configurations.
//
// validate_schedule() verifies a (layout, schedule) pair against the LET
// semantics for EVERY instant of T*, regardless of how the pair was
// produced (MILP, greedy heuristic, baseline, or hand-written):
//   * every required communication is carried exactly once per instant;
//   * every transfer is well-formed (one direction, one local memory,
//     labels contiguous and equally ordered in both memories);
//   * Property 1: a task's writes complete before its reads;
//   * Property 2: a label's write completes before its reads;
//   * Property 3: all transfers of an instant finish before the next
//     instant of T*;
//   * data-acquisition deadlines gamma_i are met where set;
//   * Theorem 1: no instant is worse than s0.
//
// Each finding is reported twice: as a structured Violation (which rule,
// which instant, which task/label/transfer, how much slack remains) for
// programmatic consumers — letdma::guard builds its certification reports
// from these — and as a rendered string in `issues` for humans and legacy
// callers.
#pragma once

#include <string>
#include <vector>

#include "letdma/let/latency.hpp"

namespace letdma::let {

/// The rule a Violation breaks. Values mirror the checker list above.
enum class Rule {
  kLayoutMissing,      // a memory has no slot order
  kCoverage,           // carried communications differ from C(t)
  kDuplicateComm,      // a communication is carried twice in one instant
  kMalformedTransfer,  // non-contiguous / metadata-inconsistent transfer
  kProperty1,          // a task's write ordered at/after one of its reads
  kProperty2,          // a label's write ordered at/after one of its reads
  kProperty3,          // an instant's transfers overrun its slot
  kDeadline,           // gamma_i exceeded
  kTheorem1,           // an instant's latency exceeds the s0 latency
};

const char* rule_name(Rule rule);

/// One structured finding. Entity fields are -1 when not applicable;
/// `slack` is the signed margin in the rule's natural unit (negative =
/// violated by that amount): nanoseconds for kProperty3/kDeadline/
/// kTheorem1, transfer-index distance for kProperty1/kProperty2.
struct Violation {
  Rule rule = Rule::kCoverage;
  Time instant = -1;
  int task = -1;      // TaskId::value
  int label = -1;     // LabelId::value
  int transfer = -1;  // index into the instant's transfer list
  double slack = 0.0;
  std::string message;
};

struct ValidationOptions {
  bool check_deadlines = true;
  bool check_slot_capacity = true;   // Property 3
  bool check_theorem1 = true;
  /// Readiness semantics used for the deadline check (baselines validate
  /// with kGiotto).
  ReadinessSemantics semantics = ReadinessSemantics::kProposed;
};

struct ValidationReport {
  std::vector<Violation> violations;
  /// Rendered mirror of `violations` (one string each, same order).
  std::vector<std::string> issues;
  bool ok() const { return violations.empty(); }
  std::string summary() const;
  /// True when some violation breaks `rule`.
  bool violates(Rule rule) const;
};

ValidationReport validate_schedule(const LetComms& comms,
                                   const MemoryLayout& layout,
                                   const TransferSchedule& schedule,
                                   ValidationOptions options = {});

}  // namespace letdma::let
