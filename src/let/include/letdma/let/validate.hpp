// Independent checker for LET-DMA configurations.
//
// validate_schedule() verifies a (layout, schedule) pair against the LET
// semantics for EVERY instant of T*, regardless of how the pair was
// produced (MILP, greedy heuristic, baseline, or hand-written):
//   * every required communication is carried exactly once per instant;
//   * every transfer is well-formed (one direction, one local memory,
//     labels contiguous and equally ordered in both memories);
//   * Property 1: a task's writes complete before its reads;
//   * Property 2: a label's write completes before its reads;
//   * Property 3: all transfers of an instant finish before the next
//     instant of T*;
//   * data-acquisition deadlines gamma_i are met where set;
//   * Theorem 1: no instant is worse than s0.
#pragma once

#include <string>
#include <vector>

#include "letdma/let/latency.hpp"

namespace letdma::let {

struct ValidationOptions {
  bool check_deadlines = true;
  bool check_slot_capacity = true;   // Property 3
  bool check_theorem1 = true;
  /// Readiness semantics used for the deadline check (baselines validate
  /// with kGiotto).
  ReadinessSemantics semantics = ReadinessSemantics::kProposed;
};

struct ValidationReport {
  std::vector<std::string> issues;
  bool ok() const { return issues.empty(); }
  std::string summary() const;
};

ValidationReport validate_schedule(const LetComms& comms,
                                   const MemoryLayout& layout,
                                   const TransferSchedule& schedule,
                                   ValidationOptions options = {});

}  // namespace letdma::let
