// MILP formulation of the joint memory-allocation / transfer-scheduling
// problem (Section VI of the paper).
//
// Decision variables (Section VI-A):
//   AD_{k,a,b}  adjacency of slots in each memory          (binary)
//   CG_{z,g}    communication z carried by transfer g      (binary)
//   RG_{i,g}    last anchor communication of task i in g   (binary)
//   PL_{k,a}    slot position (relaxed continuous)
//   CGI_z/RGI_i 1-based transfer indices (relaxed continuous)
//   lambda_i    data-acquisition latency of task i
//
// Constraints 1-5 and 7-10 are generated eagerly; the contiguity family
// (Constraint 6), whose witness variables LG are cubic in the instance
// size, is separated lazily at integral branch-and-bound nodes: the
// candidate configuration is decoded and checked semantically for every
// instant of T*, and violated pair rows (plus the LG columns they
// reference) are added on demand. An eager mode exists for small
// instances and tests.
//
// Differences from the paper, all sound (documented in DESIGN.md):
//   * Constraint 3's max-equality is relaxed to RGI_i >= CGI_z per anchor
//     (the objective/deadline pressure recovers the max);
//   * tasks without LET reads anchor on their last write (rule R1);
//   * a transfer is explicitly restricted to one (memory, direction) group
//     (implicit in the paper's transfer definition);
//   * two communications moving the same label in the same direction are
//     never grouped (a single DMA copy cannot duplicate a source);
//   * Constraint 10 uses one max-index variable per distinct communication
//     pattern of T* (a sound over-approximation of the paper's RGIT).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "letdma/let/greedy.hpp"
#include "letdma/let/transfer.hpp"
#include "letdma/milp/solver.hpp"

namespace letdma::let {

enum class MilpObjective {
  kNone,             // NO-OBJ: pure feasibility
  kMinTransfers,     // OBJ-DMAT: minimize max_i RGI_i          (Eq. 4)
  kMinLatencyRatio,  // OBJ-DEL:  minimize max_i lambda_i / T_i (Eq. 5)
};

struct MilpSchedulerOptions {
  MilpObjective objective = MilpObjective::kNone;
  milp::MilpOptions solver;
  /// Number of transfer indices G available at s0; -1 means |C(s0)|
  /// (always sufficient: one transfer per communication).
  int max_transfers = -1;
  /// Seed the solver with the greedy schedule when it is feasible.
  bool greedy_warm_start = true;
  /// External configuration tried as the *first* warm-start candidate,
  /// before any greedy candidate (letdma::engine passes the portfolio's
  /// shared incumbent here). Not owned; must outlive solve().
  const ScheduleResult* warm_start_hint = nullptr;
  /// Called on the solving thread with the decoded configuration every
  /// time the branch and bound improves its incumbent; `objective` is in
  /// the model sense of the selected MilpObjective. Decoding costs one
  /// extraction per improvement — cheap next to the node solves.
  std::function<void(const ScheduleResult&, double objective)> on_incumbent;
  /// Generate the full Constraint-6 family up front instead of lazily.
  bool eager_contiguity = false;
  /// Encode Constraint 3 as the paper's exact equality
  /// RGI_i = max_z CGI_z (via selector binaries and big-M upper bounds)
  /// instead of the default sound relaxation RGI_i >= CGI_z. The relaxation
  /// is cheaper and equivalent under both objectives; the exact form exists
  /// for fidelity checks and pure-feasibility runs with tight deadlines.
  bool exact_last_read = false;
};

struct MilpScheduleResult {
  milp::MilpStatus status = milp::MilpStatus::kLimit;
  /// Present when status is kOptimal or kFeasible.
  std::optional<ScheduleResult> schedule;
  double objective = 0.0;
  milp::MilpStats stats;
  int dma_transfers_at_s0 = 0;  // non-empty transfers in the solution

  bool feasible() const { return schedule.has_value(); }
};

class MilpScheduler {
 public:
  MilpScheduler(const LetComms& comms, MilpSchedulerOptions options = {});

  MilpScheduleResult solve();

  /// Number of variables / eager rows of the built model (for reporting).
  int model_vars() const;
  int model_rows() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace letdma::let
