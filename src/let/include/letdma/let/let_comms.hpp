// Grouping of LET communications (Section V-A, Algorithm 1).
//
// LetComms precomputes, for a finalized application, the full communication
// calendar over one hyperperiod: which writes and reads each task requires
// at each of its release instants, the set T* of instants requiring at
// least one communication, and the complete set C(t) per instant.
#pragma once

#include <map>
#include <vector>

#include "letdma/let/comm.hpp"
#include "letdma/model/application.hpp"

namespace letdma::let {

class LetComms {
 public:
  explicit LetComms(const model::Application& app);

  const model::Application& app() const { return app_; }

  /// H*_i (Eq. 3): the repetition period of tau_i's LET communications.
  Time h_star(model::TaskId task) const;

  /// T*: instants in [0, H) requiring at least one communication (sorted).
  const std::vector<Time>& required_instants() const { return instants_; }

  /// G^W(t, tau_i): writes required by tau_i at instant t (Algorithm 1).
  std::vector<Communication> writes_at(Time t, model::TaskId task) const;

  /// G^R(t, tau_i): reads required by tau_i at instant t (Algorithm 1).
  std::vector<Communication> reads_at(Time t, model::TaskId task) const;

  /// C(t): all communications required at instant t (canonical order).
  std::vector<Communication> comms_at(Time t) const;

  /// C(s_0): the synchronous-release superset of every C(t).
  const std::vector<Communication>& comms_at_s0() const { return at_s0_; }

  /// Index of a communication within comms_at_s0(); throws if absent.
  int index_at_s0(const Communication& c) const;

  /// Tasks that own at least one communication at s0.
  std::vector<model::TaskId> communicating_tasks() const;

 private:
  const model::Application& app_;
  // Calendar: instant -> canonical list of communications.
  std::map<Time, std::vector<Communication>> calendar_;
  std::vector<Time> instants_;
  std::vector<Communication> at_s0_;
};

}  // namespace letdma::let
