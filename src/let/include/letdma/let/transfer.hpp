// DMA transfers and transfer schedules (Section V).
//
// A DMA transfer moves an ordered run of labels that are contiguous (and in
// the same order) in both the involved local memory and the global memory.
// A TransferSchedule fixes, for every instant of T*, the totally ordered
// transfer list executed by the protocol at that instant; the g-th position
// in the list is the paper's transfer index.
#pragma once

#include <map>
#include <vector>

#include "letdma/let/layout.hpp"
#include "letdma/let/let_comms.hpp"

namespace letdma::let {

struct DmaTransfer {
  Direction dir = Direction::kWrite;
  model::MemoryId local_mem;          // the non-global side
  std::vector<Communication> comms;   // ordered by ascending address
  std::int64_t bytes = 0;             // total payload
  std::int64_t local_addr = 0;        // start address in local memory
  std::int64_t global_addr = 0;       // start address in global memory
};

/// Builds a transfer from a set of communications sharing one direction and
/// one local memory. Orders the communications by address, verifies
/// contiguity (and equal order) in both memories against `layout`, and
/// fills sizes and start addresses. Throws PreconditionError on violation.
DmaTransfer make_transfer(const MemoryLayout& layout,
                          std::vector<Communication> comms);

/// Splits `comms` (single direction + local memory) into the minimal list
/// of transfers whose label runs are contiguous in both memories. Used by
/// the greedy scheduler and by per-instant derivation.
std::vector<DmaTransfer> split_into_transfers(const MemoryLayout& layout,
                                              std::vector<Communication> comms);

class TransferSchedule {
 public:
  /// An ordered transfer list per instant; instants must belong to T*.
  using PerInstant = std::vector<DmaTransfer>;

  TransferSchedule() = default;

  void set_instant(Time t, PerInstant transfers);
  const PerInstant& at(Time t) const;
  bool has_instant(Time t) const;
  const std::map<Time, PerInstant>& all() const { return by_instant_; }

 private:
  std::map<Time, PerInstant> by_instant_;
};

/// Derives the full schedule over T* from the s0 transfer order: at each
/// instant t, each s0 transfer is restricted to C(t) and split into its
/// maximal contiguous runs (for layouts produced by the MILP or the greedy
/// scheduler the restriction stays contiguous, so no extra transfers
/// appear; the split keeps the derivation total for arbitrary layouts).
TransferSchedule derive_schedule(const LetComms& comms,
                                 const MemoryLayout& layout,
                                 const std::vector<DmaTransfer>& s0_order);

}  // namespace letdma::let
