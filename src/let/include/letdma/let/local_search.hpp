// Local-search improvement of a protocol configuration.
//
// Operates on the ordered partition of C(s0) into groups (each group = one
// intended transfer) with three move kinds:
//   * relocate a group to another position (re-ordering),
//   * merge two groups of the same (memory, direction),
//   * split a group in two.
// Candidates are enumerated lazily (generate-evaluate-discard) and scored
// by the incremental delta evaluator on the compiled instance
// (letdma/let/delta.hpp): feasibility from maintained order counters, the
// objective from cached group decompositions and the instant-class sweep.
// A full ScheduleResult is only rebuilt when a move is accepted. The
// verdicts match the seed rebuild-per-candidate path exactly (kept as
// LocalSearchEngine::kReference for A/B benchmarking and the equivalence
// test); hill climbing with first-improvement, deterministic.
//
// This is an extension beyond the paper: a cheap anytime optimizer that
// closes much of the gap to the MILP on large instances and provides its
// warm starts.
#pragma once

#include <atomic>
#include <functional>

#include "letdma/let/greedy.hpp"

namespace letdma::let {

class CompiledComms;

enum class LocalSearchGoal {
  kMinMaxLatencyRatio,  // the OBJ-DEL metric (Eq. 5)
  kMinTransfers,        // the OBJ-DMAT metric (Eq. 4 proxy: s0 transfers)
};

/// Which evaluator scores candidates. Both produce identical accepted-move
/// sequences, objectives and schedules (delta_equivalence_test pins this).
enum class LocalSearchEngine {
  kCompiled,   // delta evaluation on the compiled instance (default)
  kReference,  // rebuild every candidate via build_from_groups (seed path)
};

struct LocalSearchOptions {
  LocalSearchGoal goal = LocalSearchGoal::kMinMaxLatencyRatio;
  LocalSearchEngine engine = LocalSearchEngine::kCompiled;
  /// Stop after this many accepted improvements.
  int max_improvements = 100;
  /// Stop after this many candidate evaluations.
  int max_evaluations = 4000;
  /// Wall-clock limit for the whole improvement run; <= 0 disables.
  double time_limit_sec = 0.0;
  /// Cooperative cancellation, polled before every candidate evaluation.
  /// The best-so-far result is returned on cancel. Not owned; may be null.
  const std::atomic<bool>* stop = nullptr;
  /// Invoked after every accepted move with the rebuilt schedule and its
  /// goal value — the engine adapter publishes these as incumbents so the
  /// MILP warm start sees mid-search improvements. May be empty.
  std::function<void(const ScheduleResult&, double)> on_improvement;
};

struct LocalSearchResult {
  ScheduleResult schedule;
  double objective = 0.0;  // goal value of `schedule`
  int improvements = 0;
  int evaluations = 0;
};

/// Improves `start` under the goal; the result is never worse than the
/// best of `start` and its partition rebuild, and always passes
/// validate_schedule (structurally and on deadlines).
LocalSearchResult improve_schedule(const LetComms& comms,
                                   const ScheduleResult& start,
                                   LocalSearchOptions options = {});

/// Same, on a prebuilt compiled instance (avoids recompiling when the
/// caller already holds one — the engine adapters do).
LocalSearchResult improve_schedule(const CompiledComms& compiled,
                                   const ScheduleResult& start,
                                   LocalSearchOptions options = {});

}  // namespace letdma::let
