// Local-search improvement of a protocol configuration.
//
// Operates on the ordered partition of C(s0) into groups (each group = one
// intended transfer) with three move kinds:
//   * relocate a group to another position (re-ordering),
//   * merge two groups of the same (memory, direction),
//   * split a group in two.
// Every candidate is rebuilt via build_from_groups() (layouts follow the
// partition) and kept only when it satisfies Properties 1-2, meets every
// acquisition deadline, and improves the goal. Hill climbing with
// first-improvement; deterministic.
//
// This is an extension beyond the paper: a cheap anytime optimizer that
// closes much of the gap to the MILP on large instances and provides its
// warm starts.
#pragma once

#include <atomic>

#include "letdma/let/greedy.hpp"

namespace letdma::let {

enum class LocalSearchGoal {
  kMinMaxLatencyRatio,  // the OBJ-DEL metric (Eq. 5)
  kMinTransfers,        // the OBJ-DMAT metric (Eq. 4 proxy: s0 transfers)
};

struct LocalSearchOptions {
  LocalSearchGoal goal = LocalSearchGoal::kMinMaxLatencyRatio;
  /// Stop after this many accepted improvements.
  int max_improvements = 100;
  /// Stop after this many candidate evaluations.
  int max_evaluations = 4000;
  /// Wall-clock limit for the whole improvement run; <= 0 disables.
  double time_limit_sec = 0.0;
  /// Cooperative cancellation, polled before every candidate evaluation.
  /// The best-so-far result is returned on cancel. Not owned; may be null.
  const std::atomic<bool>* stop = nullptr;
};

struct LocalSearchResult {
  ScheduleResult schedule;
  double objective = 0.0;  // goal value of `schedule`
  int improvements = 0;
  int evaluations = 0;
};

/// Improves `start` under the goal; the result is never worse than the
/// best of `start` and its partition rebuild, and always passes
/// validate_schedule (structurally and on deadlines).
LocalSearchResult improve_schedule(const LetComms& comms,
                                   const ScheduleResult& start,
                                   LocalSearchOptions options = {});

}  // namespace letdma::let
