// LET communications (Section III-B / IV).
//
// A communication is one directed label copy carried out by the DMA:
//   W(task, label): local copy in the producer's memory -> global label
//   R(label, task): global label -> local copy in the consumer's memory
// The pair (direction, task, label) identifies a communication uniquely;
// a write appears once per label (single writer), a read once per
// (label, consumer) pair.
#pragma once

#include <string>
#include <vector>

#include "letdma/model/application.hpp"

namespace letdma::let {

using support::Time;

enum class Direction { kWrite, kRead };

struct Communication {
  Direction dir = Direction::kWrite;
  model::TaskId task;    // producer for kWrite, consumer for kRead
  model::LabelId label;

  friend bool operator==(const Communication& a, const Communication& b) {
    return a.dir == b.dir && a.task == b.task && a.label == b.label;
  }
  friend auto operator<=>(const Communication& a, const Communication& b) {
    if (a.dir != b.dir) return a.dir <=> b.dir;
    if (!(a.task == b.task)) return a.task <=> b.task;
    return a.label <=> b.label;
  }
};

/// Local memory this communication touches (the other side is global).
model::MemoryId local_memory_of(const model::Application& app,
                                const Communication& c);

/// Human-readable rendering, e.g. "W(EKF, x_ekf)" / "R(x_ekf, PLAN)".
std::string to_string(const model::Application& app, const Communication& c);

/// Sorts and deduplicates a communication list in canonical order.
void canonicalize(std::vector<Communication>& comms);

}  // namespace letdma::let
