// Compiled scheduling instance: the flat IR every hot evaluator runs on.
//
// LetComms answers calendar queries through std::map lookups and per-call
// vector copies; that is fine for construction-time code but far too slow
// for the local search, which scores thousands of candidate transfer
// orders per run. CompiledComms flattens one LetComms into dense arrays,
// built once and read many times:
//
//   * per-communication state indexed by the comm's position in
//     comms_at_s0(): direction, owning task id, label id, local memory id,
//     payload bytes, and the precomputed solo copy duration;
//   * instant classes: the instants of T* grouped by identical active
//     communication sets. Each class carries one active-comm bitset and the
//     union of tasks released at its instants, so any per-instant
//     computation runs once per class instead of once per instant;
//   * per-communication presence patterns over T* (sorted instants), the
//     data the greedy subset-chain grouping consumes;
//   * per-task periods and acquisition deadlines as dense arrays.
//
// On top of the arrays it implements the exact group-decomposition rule of
// build_from_groups (memory-contiguous runs recursively cut at presence
// holes) and the exact worst-case latency sweep, both bit-identical to the
// rebuild path in greedy.cpp/latency.cpp: the delta evaluator
// (letdma/let/delta.hpp) and guard::certify's cross-check both rely on
// that equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "letdma/let/greedy.hpp"

namespace letdma::let {

/// One intended transfer of a decomposed group: communication ids sorted
/// by global-memory position, with the derived payload and duration and
/// the involvement masks the latency sweep consumes.
struct CompiledTransfer {
  std::vector<int> comms;  // comm ids, global-position order
  std::int64_t bytes = 0;
  Time duration = 0;  // per_transfer_overhead + copy_time(bytes)
  std::vector<std::uint64_t> comm_mask;  // bit per comm id
  std::vector<std::uint64_t> task_mask;  // bit per task id
};

class CompiledComms {
 public:
  explicit CompiledComms(const LetComms& comms);

  const LetComms& let_comms() const { return *comms_; }
  const model::Application& app() const { return comms_->app(); }

  int num_comms() const { return num_comms_; }
  int num_tasks() const { return num_tasks_; }
  int num_labels() const { return num_labels_; }
  int num_classes() const { return static_cast<int>(class_tasks_.size()); }

  /// Words per comm-indexed bitset / per task-indexed bitset.
  int comm_words() const { return comm_words_; }
  int task_words() const { return task_words_; }

  const Communication& comm(int c) const {
    return comms_->comms_at_s0()[static_cast<std::size_t>(c)];
  }
  int index_of(const Communication& c) const {
    return comms_->index_at_s0(c);
  }
  bool is_write(int c) const {
    return is_write_[static_cast<std::size_t>(c)] != 0;
  }
  int task_of(int c) const { return task_[static_cast<std::size_t>(c)]; }
  int label_of(int c) const { return label_[static_cast<std::size_t>(c)]; }
  int local_mem_of(int c) const { return mem_[static_cast<std::size_t>(c)]; }
  std::int64_t size_bytes(int c) const {
    return size_[static_cast<std::size_t>(c)];
  }
  /// copy_time(size_bytes(c)) — the comm's solo transfer-duration
  /// contribution. Copy times are not additive across comms (the per-byte
  /// cost is applied to the summed payload), so multi-comm durations must
  /// be derived from summed bytes; this is the single-comm fast path.
  Time solo_copy_time(int c) const {
    return solo_copy_[static_cast<std::size_t>(c)];
  }

  /// Active-comm bitset of an instant class (comm_words() words).
  const std::uint64_t* active_row(int cls) const {
    return active_.data() +
           static_cast<std::size_t>(cls) * static_cast<std::size_t>(comm_words_);
  }
  bool active(int c, int cls) const {
    return (active_row(cls)[static_cast<std::size_t>(c >> 6)] >>
            (c & 63)) & 1u;
  }
  /// Tasks released at any instant of the class (sorted, unique).
  const std::vector<int>& released_tasks(int cls) const {
    return class_tasks_[static_cast<std::size_t>(cls)];
  }
  /// Presence pattern of a communication: the sorted instants of T* at
  /// which it is required (same content as greedy.cpp's former
  /// presence_pattern).
  const std::vector<Time>& pattern(int c) const {
    return patterns_[static_cast<std::size_t>(c)];
  }

  Time period(int task) const { return periods_[static_cast<std::size_t>(task)]; }
  /// Acquisition deadline, or -1 when the task has none.
  Time deadline(int task) const {
    return deadlines_[static_cast<std::size_t>(task)];
  }
  bool any_deadline() const { return any_deadline_; }

  Time per_transfer_overhead() const { return overhead_; }
  Time copy_time(std::int64_t bytes) const;

  /// Decomposes one partition group (comm ids in emission order) into the
  /// exact transfer list build_from_groups would emit for it, given the
  /// global-memory position of every label (label id -> position).
  /// Transfers are appended to `out` in schedule order.
  void decompose_group(const std::vector<int>& group,
                       const std::vector<int>& label_global_pos,
                       std::vector<CompiledTransfer>* out) const;

  /// Worst-case per-task latency (kProposed semantics) of an s0 transfer
  /// order, computed by the class sweep — bit-identical to
  /// worst_case_latencies(derive_schedule(...)) for transfers whose comm
  /// lists are sorted by global position (make_transfer's invariant).
  /// Result is indexed by TaskId::value. Throws if a communication is not
  /// part of C(s0).
  std::vector<Time> sweep_worst_case(
      const std::vector<DmaTransfer>& s0_order) const;

 private:
  const LetComms* comms_;
  int num_comms_ = 0;
  int num_tasks_ = 0;
  int num_labels_ = 0;
  int comm_words_ = 0;
  int task_words_ = 0;

  std::vector<std::uint8_t> is_write_;
  std::vector<int> task_;
  std::vector<int> label_;
  std::vector<int> mem_;
  std::vector<std::int64_t> size_;
  std::vector<Time> solo_copy_;

  std::vector<std::uint64_t> active_;  // num_classes x comm_words_
  std::vector<std::vector<int>> class_tasks_;
  std::vector<std::vector<Time>> patterns_;

  std::vector<Time> periods_;
  std::vector<Time> deadlines_;
  bool any_deadline_ = false;
  Time overhead_ = 0;
  double copy_cost_ns_per_byte_ = 0.0;

  void pattern_split(const std::vector<int>& run, int lo, int hi,
                     std::vector<CompiledTransfer>* out) const;
  CompiledTransfer make_compiled_transfer(const std::vector<int>& run, int lo,
                                          int hi) const;
};

/// build_from_groups on the compiled instance: identical output to
/// build_from_groups(comms, groups) (greedy.hpp), shared by the greedy
/// scheduler and the local search's accepted-move materialization.
/// `reads_first_placement` mirrors the kReadBatched layout policy.
ScheduleResult build_from_groups_compiled(
    const CompiledComms& compiled,
    const std::vector<std::vector<Communication>>& groups,
    bool reads_first_placement = false);

}  // namespace letdma::let
