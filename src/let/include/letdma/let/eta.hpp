// The eta functions of Eqs. (1)-(2) and the derived sets of communication
// instants.
//
// For a producer p and consumer c of one label:
//  * a LET write is required at the producer releases
//      floor(v * T_c / T_p) * T_p          (v = 0, 1, 2, ...)
//    — when the producer is oversampled (T_p < T_c) intermediate writes are
//    skipped because their data would be overwritten before consumption;
//  * a LET read is required at the consumer releases
//      ceil(v * T_p / T_c) * T_c           (v = 0, 1, 2, ...)
//    — when the consumer is oversampled (T_c < T_p) intermediate reads are
//    skipped because no new data has been produced.
//
// Note on the paper text: Eq. (2) prints the guard of the closed form as
// "T_c > T_i"; the set semantics used here apply the closed form
// unconditionally, which coincides with both branches of Eqs. (1)-(2) when
// interpreted as *sets* of instants (the branch is only an evaluation
// shortcut) and matches the skip rules of Biondi & Di Natale (RTAS 2018).
#pragma once

#include <vector>

#include "letdma/support/time.hpp"

namespace letdma::let {

using support::Time;

/// eta^W(v): index of the producer job whose release instant must carry a
/// write, for consumer job v.
std::int64_t eta_write(std::int64_t v, Time producer_period,
                       Time consumer_period);

/// eta^R(v): index of the consumer job whose release instant must carry a
/// read, for producer job v.
std::int64_t eta_read(std::int64_t v, Time producer_period,
                      Time consumer_period);

/// All instants in [0, horizon) at which a LET write from the producer is
/// required for this consumer (sorted, unique). `horizon` must be a common
/// multiple of both periods.
std::vector<Time> write_instants(Time producer_period, Time consumer_period,
                                 Time horizon);

/// All instants in [0, horizon) at which a LET read by the consumer is
/// required for this producer (sorted, unique).
std::vector<Time> read_instants(Time producer_period, Time consumer_period,
                                Time horizon);

}  // namespace letdma::let
