// Warm-started schedule repair for incremental re-scheduling.
//
// When an instance changes by a small diff (a label resized, a task added,
// a mapping moved), the previous schedule's group structure is mostly
// still right: only the LET groups the diff touches need rethinking.
// warm_start() translates a previous ScheduleResult onto a new compiled
// instance through a model::ApplicationDiff — carrying every surviving
// communication in its old group, dropping communications whose endpoints
// disappeared, appending communications the diff introduced as singleton
// groups — and then *legalizes* the group order (Properties 1-2: per task
// and per label, writes strictly before reads) with a stable topological
// pass. Legalization always succeeds: every ordering constraint points
// from a write group to a read group, and transfer groups are
// single-direction, so the constraint graph is bipartite and acyclic.
//
// repair() runs the local search from that seed instead of a greedy cold
// start. It never throws on a bad seed: a seed the search cannot rebuild
// feasibly (e.g. the diff made the old placement deadline-infeasible in a
// way local moves cannot fix) reports repaired=false so the caller can
// fall through to a cold solve.
#pragma once

#include "letdma/let/local_search.hpp"
#include "letdma/model/diff.hpp"

namespace letdma::let {

class CompiledComms;

/// What the warm-start translation did, for observability and tests.
struct WarmStartStats {
  int prev_groups = 0;     // transfer groups in the previous schedule
  int groups_kept = 0;     // groups with at least one surviving comm
  int comms_carried = 0;   // comms translated into the new instance
  int comms_dropped = 0;   // comms whose endpoints the diff removed
  int comms_added = 0;     // new comms appended as singleton groups
  bool order_legalized = false;  // topological pass had to reorder groups
};

/// Translates `prev` (a schedule of the diff's *before* instance) onto the
/// instance `compiled` was built from (the diff's *after* instance) and
/// materializes it via build_from_groups_compiled. `diff` may be null,
/// meaning the identity diff (same instance — used when re-solving an
/// unchanged instance from its cached schedule). The result is always
/// structurally valid and Properties-1/2 ordered; acquisition deadlines
/// are NOT guaranteed — run the local search or certify.
ScheduleResult warm_start(const CompiledComms& compiled,
                          const ScheduleResult& prev,
                          const model::ApplicationDiff* diff = nullptr,
                          WarmStartStats* stats = nullptr);

struct RepairResult {
  /// True when the warm seed rebuilt feasibly and the search ran; false
  /// means the caller should fall through to a cold solve.
  bool repaired = false;
  WarmStartStats stats;
  LocalSearchResult result;  // valid only when repaired
};

/// warm_start + improve_schedule from the translated seed. Exceptions from
/// an infeasible seed are absorbed into repaired=false.
RepairResult repair(const CompiledComms& compiled, const ScheduleResult& prev,
                    const model::ApplicationDiff* diff = nullptr,
                    LocalSearchOptions options = {});

}  // namespace letdma::let
