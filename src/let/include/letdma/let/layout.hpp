// Memory layout of labels and their local copies.
//
// Every inter-core shared label occupies one slot in the global memory and
// one slot per communicating task copy in the corresponding local memory
// (Section III-B). A MemoryLayout fixes the linear order of slots in each
// memory; addresses follow from the cumulative label sizes. Contiguity of
// DMA transfers is defined over these orders.
#pragma once

#include <vector>

#include "letdma/let/comm.hpp"
#include "letdma/model/application.hpp"

namespace letdma::let {

/// A slot is one label instance in one memory: the global instance
/// (owner == invalid) or a task-local copy (owner == the task).
struct Slot {
  model::LabelId label;
  model::TaskId owner;  // invalid ({-1}) for the global instance

  friend bool operator==(const Slot& a, const Slot& b) {
    return a.label == b.label && a.owner == b.owner;
  }
  friend auto operator<=>(const Slot& a, const Slot& b) {
    if (!(a.label == b.label)) return a.label <=> b.label;
    return a.owner <=> b.owner;
  }
};

/// Slot a communication occupies in its local memory.
Slot local_slot_of(const Communication& c);
/// Slot a communication occupies in the global memory.
Slot global_slot_of(const Communication& c);

class MemoryLayout {
 public:
  /// Creates an empty layout; per-memory orders must be provided via
  /// set_order() before use.
  explicit MemoryLayout(const model::Application& app);

  /// The canonical slot set a memory must hold: the global memory holds all
  /// inter-core labels; a local memory holds one copy per (task on that
  /// core, inter-core label it writes or reads).
  static std::vector<Slot> required_slots(const model::Application& app,
                                          model::MemoryId mem);

  /// Fixes the linear order of slots in `mem`. The list must be a
  /// permutation of required_slots(app, mem).
  void set_order(model::MemoryId mem, std::vector<Slot> slots);

  bool has_order(model::MemoryId mem) const;
  const std::vector<Slot>& order(model::MemoryId mem) const;

  /// 0-based position of a slot in its memory; throws if absent.
  int position(model::MemoryId mem, const Slot& slot) const;

  /// Byte offset of a slot from the start of the memory's layout region.
  std::int64_t address(model::MemoryId mem, const Slot& slot) const;

  /// True when `b` is placed immediately after `a`.
  bool adjacent(model::MemoryId mem, const Slot& a, const Slot& b) const;

  /// Total bytes occupied in `mem`.
  std::int64_t total_bytes(model::MemoryId mem) const;

  const model::Application& app() const { return *app_; }

 private:
  // Pointer (not reference) so layouts are assignable value types; the
  // referenced application must outlive the layout.
  const model::Application* app_;
  // Indexed by memory id: slot order and per-slot byte offsets.
  std::vector<std::vector<Slot>> order_;
  std::vector<std::vector<std::int64_t>> offsets_;
};

}  // namespace letdma::let
