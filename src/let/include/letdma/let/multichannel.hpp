// Multi-channel DMA extension (beyond the paper).
//
// The paper serializes every transfer on one DMA engine; many automotive
// SoCs expose several independent channels. This module evaluates a given
// s0 transfer order under C channels with list scheduling:
//
//   * transfers are dispatched in their priority order g;
//   * each occupies the earliest-available channel for
//     o_DP + copy + o_ISR;
//   * a transfer may not START before every earlier transfer it depends
//     on has COMPLETED — dependencies are the LET causality edges
//     (a label's write before its reads: Property 2; a task's writes
//     before its reads: Property 1). Independent transfers overlap.
//
// With C = 1 the timing degenerates exactly to the paper's sequential
// LatencyModel, which the tests pin down.
#pragma once

#include <vector>

#include "letdma/let/latency.hpp"

namespace letdma::let {

struct ChannelSlot {
  int transfer = -1;  // index into the input order
  int channel = -1;
  Time start = 0;
  Time finish = 0;
};

struct MultiChannelReport {
  std::vector<ChannelSlot> slots;   // one per transfer, input order
  /// Readiness per task (indexed by TaskId::value, rule R3); 0 for tasks
  /// with no involved transfer.
  std::vector<Time> readiness;
  Time makespan = 0;
};

/// Evaluates `transfers` (the s0 order) on `channels` parallel DMA
/// channels. Requires channels >= 1.
MultiChannelReport schedule_on_channels(
    const model::Application& app, const std::vector<DmaTransfer>& transfers,
    int channels);

}  // namespace letdma::let
