// BatchRunner — many-instance evaluation on a fixed thread pool with
// deterministic result ordering.
//
// The generator sweeps evaluate hundreds of independent instances; before
// the engine each bench hand-rolled its own loop. BatchRunner runs any
// index-addressed job set on a fixed pool and returns results **in index
// order** regardless of completion order, so sweep tables and metrics
// files are reproducible across thread counts.
#pragma once

#include <functional>
#include <vector>

#include "letdma/engine/engine.hpp"

namespace letdma::engine {

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency (at least 1).
  int threads = 0;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  int threads() const { return threads_; }

  /// Runs f(i) for i in [0, n) on the pool; out[i] = f(i). The first
  /// exception thrown by a job is rethrown after all workers drain.
  template <class R, class F>
  std::vector<R> map(std::size_t n, F&& f) const {
    std::vector<R> out(n);
    run_indexed(n, [&](std::size_t i) { out[i] = f(i); });
    return out;
  }

  /// Schedules every instance through `scheduler` (whose solve must be
  /// reentrant — all engine schedulers are) under a per-instance budget.
  /// outcome[i] corresponds to instances[i].
  std::vector<ScheduleOutcome> run(
      Scheduler& scheduler,
      const std::vector<const let::LetComms*>& instances,
      const Budget& per_instance) const;

 private:
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& job) const;

  int threads_ = 1;
};

}  // namespace letdma::engine
