// letdma::engine — one composable scheduling layer over the competing
// schedulers grown around the paper's MILP.
//
// The repo has four ways to produce a (layout, transfer order)
// configuration — greedy construction, local-search improvement, the
// branch-and-bound MILP, and loading a saved schedule — and before this
// layer every bench/example/test hand-wired its own call sequence. The
// engine normalizes them behind one interface:
//
//   Scheduler::solve(const LetComms&, const Budget&, IncumbentSink&)
//       -> ScheduleOutcome
//
// with uniform status semantics (proved optimal / feasible / proved
// infeasible / timeout-with-no-incumbent), a shared wall-clock budget with
// cooperative cancellation (an atomic stop token polled inside the
// local-search evaluation loop and the MILP node loop), and an
// IncumbentSink through which strategies publish every improving schedule
// as they find it. The sink is what makes strategies composable: the
// portfolio races several strategies against one SharedIncumbent, and the
// MILP warm-starts from whatever the cheap strategies have already
// published instead of recomputing its own greedy seed.
//
// Concrete schedulers live in adapters.hpp (greedy / local search / MILP),
// portfolio.hpp (the parallel anytime racer) and batch.hpp (many-instance
// evaluation on a thread pool).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "letdma/let/greedy.hpp"
#include "letdma/model/diff.hpp"

namespace letdma::engine {

enum class Status {
  kOptimal,     // proved optimal (schedule present)
  kFeasible,    // best-effort schedule present (heuristic or incumbent)
  kInfeasible,  // proved that no configuration exists
  kTimeout,     // budget exhausted with no incumbent (and no proof)
};

const char* status_name(Status status);

/// Engine-level goal. Objectives are always *engine-sense*: computed from
/// the decoded configuration by objective_of(), so values are comparable
/// across strategies (the MILP's model-sense objective is not exposed).
enum class Objective {
  kMinMaxLatencyRatio,  // OBJ-DEL  (Eq. 5): max_i lambda_i / T_i
  kMinTransfers,        // OBJ-DMAT (Eq. 4 proxy): number of s0 transfers
  kFeasibility,         // NO-OBJ: any configuration meeting every gamma_i
};

const char* objective_name(Objective objective);

/// Engine objective value of a configuration (lower is better; 0 under
/// kFeasibility so any feasible schedule ties any other).
double objective_of(const let::LetComms& comms,
                    const let::ScheduleResult& schedule, Objective objective);

/// True when the configuration passes validate_schedule (all LET
/// properties at every instant, acquisition deadlines included).
bool schedule_valid(const let::LetComms& comms,
                    const let::ScheduleResult& schedule);

/// A shared wall-clock budget with cooperative cancellation. The clock
/// starts when a Scheduler::solve call begins (each solve measures its own
/// elapsed time); `stop` is an optional externally owned token that any
/// strategy must honour promptly — the portfolio raises it to cancel
/// losing workers.
///
/// `deadline` is an optional *absolute* cutoff on top of the relative
/// wall_sec: a serve-layer request deadline survives being re-based by the
/// supervised chain (each level restarts its own relative clock, which
/// would otherwise let a degrading chain overrun the caller's patience).
/// The epoch sentinel (default-constructed time_point) means "no
/// deadline".
struct Budget {
  double wall_sec = 60.0;
  const std::atomic<bool>* stop = nullptr;
  std::chrono::steady_clock::time_point deadline{};

  bool cancel_requested() const {
    return stop != nullptr && stop->load(std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  /// Seconds left: the tighter of (wall_sec - elapsed_sec) and the time
  /// to `deadline`. May be negative once spent — callers treat <= 0 as
  /// exhausted.
  double remaining_sec(double elapsed_sec = 0.0) const {
    double rem = wall_sec - elapsed_sec;
    if (has_deadline()) {
      const double to_deadline =
          std::chrono::duration<double>(deadline -
                                        std::chrono::steady_clock::now())
              .count();
      rem = std::min(rem, to_deadline);
    }
    return rem;
  }
};

/// An improving schedule published by a strategy, with its engine
/// objective and the strategy that produced it.
struct Incumbent {
  let::ScheduleResult schedule;
  double objective = 0.0;
  std::string strategy;
};

/// Where strategies publish improving schedules. offer() must be safe to
/// call from any worker thread of a portfolio.
class IncumbentSink {
 public:
  virtual ~IncumbentSink() = default;
  /// Offers a schedule with its engine objective. Returns true when it
  /// strictly improved the best known objective and was kept.
  virtual bool offer(const let::ScheduleResult& schedule, double objective,
                     const std::string& strategy) = 0;
  /// Snapshot of the best incumbent so far (copies under the hood).
  virtual std::optional<Incumbent> best() const = 0;
};

/// Mutex-protected IncumbentSink — the portfolio's shared incumbent, also
/// fine for single-threaded use. Every accepted offer emits an
/// "engine.incumbent" obs instant and bumps the "engine.incumbents"
/// counter, so incumbent-publication instants land in traces.
class SharedIncumbent : public IncumbentSink {
 public:
  bool offer(const let::ScheduleResult& schedule, double objective,
             const std::string& strategy) override;
  std::optional<Incumbent> best() const override;
  /// Number of accepted (strictly improving) offers.
  int improvements() const;

 private:
  mutable std::mutex mu_;
  std::optional<Incumbent> best_;
  int improvements_ = 0;
};

/// The uniform result of any engine solve.
struct ScheduleOutcome {
  Status status = Status::kTimeout;
  /// Present when status is kOptimal or kFeasible.
  std::optional<let::ScheduleResult> schedule;
  double objective = 0.0;  // engine objective of `schedule`
  /// Strategy that produced `schedule` ("greedy", "ls", "milp", or the
  /// winning strategy of a portfolio).
  std::string strategy;
  double wall_sec = 0.0;
  /// The solve exited early because the budget's stop token was raised.
  bool cancelled = false;

  bool feasible() const { return schedule.has_value(); }
};

/// An optional prior state handed to a solve: the schedule of a previous
/// (or structurally close) instance plus the model diff mapping that
/// instance onto the one being solved. `diff == nullptr` with a schedule
/// means "same instance" (identity diff). Both pointers are borrowed and
/// must outlive the solve call.
///
/// Every adapter accepts the hint with uniform semantics: the hint is
/// translated onto the target instance, validated, and — when it holds —
/// published into the sink as strategy "warm" before anything else runs.
/// Greedy then ignores it, the local search repairs from it instead of a
/// greedy cold start, and the MILP takes it as its incumbent bound
/// immediately (no grace wait for a cheap strategy). Because the warm
/// incumbent lands in the sink first, a zero-budget solve returns the
/// previous schedule through expired_outcome instead of nothing.
struct WarmStart {
  const let::ScheduleResult* schedule = nullptr;
  const model::ApplicationDiff* diff = nullptr;

  bool has_schedule() const { return schedule != nullptr; }
};

/// A warm-start hint translated onto a concrete instance.
struct ResolvedWarmStart {
  /// Present when translation+legalization succeeded structurally.
  std::optional<let::ScheduleResult> seed;
  /// True when `seed` additionally passes validate_schedule (deadlines
  /// included) — only then is it offered to the sink / usable as served
  /// output without a repair pass.
  bool valid = false;
  double objective = 0.0;  // engine objective of `seed` when valid
};

/// Translates `warm` onto `comms` (via let::warm_start) and, when the
/// translated schedule fully validates, offers it into `sink` under the
/// strategy name "warm". Returns the resolution either way; a hint without
/// a schedule resolves to an empty ResolvedWarmStart. Never throws on a
/// bad hint — translation failures simply leave `seed` empty.
ResolvedWarmStart resolve_warm_start(const let::LetComms& comms,
                                     const WarmStart& warm,
                                     Objective objective, IncumbentSink* sink);

/// A strategy behind the uniform interface. Implementations keep no
/// per-solve state in the object, so one Scheduler instance may run
/// concurrent solve() calls (BatchRunner relies on this).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const char* name() const = 0;
  /// Solves with an optional warm-start hint (WarmStart{} = cold solve).
  virtual ScheduleOutcome solve(const let::LetComms& comms,
                                const Budget& budget, IncumbentSink& sink,
                                const WarmStart& warm) = 0;
  /// Cold-solve convenience; forwards to the four-argument overload.
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink) {
    return solve(comms, budget, sink, WarmStart{});
  }
};

/// Well-defined outcome for a budget that is already exhausted on entry
/// (wall_sec <= 0, or the stop token raised): the sink's best incumbent as
/// kFeasible when one exists, else kTimeout. Every scheduler returns this
/// promptly instead of hanging or racing when handed a spent budget.
ScheduleOutcome expired_outcome(const IncumbentSink& sink,
                                const std::string& strategy,
                                const Budget& budget);

/// Cross-cutting solver knobs the factory threads into every scheduler it
/// builds (directly, or through portfolio/supervised children). Today this
/// carries the MILP branch-and-bound parallelism knobs exposed by
/// `letdma_tool --threads` and the benches.
struct EngineTuning {
  /// Worker threads for the MILP branch-and-bound. 0 = solver default
  /// (one per hardware thread); 1 = the sequential seed node loop.
  int milp_threads = 0;
  /// Reproducible epoch-synchronized parallel MILP search (see
  /// milp::MilpOptions::deterministic).
  bool milp_deterministic = false;
};

/// Factory for the engine names exposed by tools and benches:
/// "greedy" | "ls" | "milp" | "portfolio" | "giotto" | "supervised" |
/// "incremental". Throws PreconditionError on an unknown name.
std::unique_ptr<Scheduler> make_scheduler(
    const std::string& name,
    Objective objective = Objective::kMinMaxLatencyRatio,
    const EngineTuning& tuning = {});

/// Convenience: one standalone solve with a private SharedIncumbent.
ScheduleOutcome solve_with(const std::string& scheduler_name,
                           const let::LetComms& comms, Objective objective,
                           double budget_sec);

}  // namespace letdma::engine
