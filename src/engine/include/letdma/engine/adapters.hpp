// Adapters wrapping the concrete schedulers behind engine::Scheduler.
//
//   * GreedyEngine      — the constructive heuristics; near-instant, always
//                         publishes the best valid strategy result.
//   * LocalSearchEngine — greedy seed + hill climbing; anytime, honours the
//                         stop token between candidate evaluations.
//   * MilpEngine        — the branch-and-bound MILP; warm-starts from the
//                         sink's incumbent when one is published in time
//                         (replacing the hard-coded greedy_warm_start
//                         plumbing under the engine), publishes every
//                         solver incumbent, and honours the stop token in
//                         the node loop.
//
// All adapters validate what they publish: a schedule reaches the sink or
// the outcome only when validate_schedule passes.
#pragma once

#include "letdma/engine/engine.hpp"
#include "letdma/let/local_search.hpp"
#include "letdma/let/milp_scheduler.hpp"

namespace letdma::engine {

struct GreedyEngineOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Restrict to one emission strategy; unset runs all and keeps the best.
  std::optional<let::GreedyStrategy> strategy;
};

class GreedyEngine : public Scheduler {
 public:
  explicit GreedyEngine(GreedyEngineOptions options = {})
      : options_(options) {}
  const char* name() const override { return "greedy"; }
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink) override;

 private:
  GreedyEngineOptions options_;
};

struct LocalSearchEngineOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Evaluation/improvement caps forwarded to improve_schedule; the goal,
  /// time limit and stop token are overridden from the engine inputs.
  let::LocalSearchOptions search;
};

class LocalSearchEngine : public Scheduler {
 public:
  explicit LocalSearchEngine(LocalSearchEngineOptions options = {})
      : options_(options) {}
  const char* name() const override { return "ls"; }
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink) override;

 private:
  LocalSearchEngineOptions options_;
};

struct MilpEngineOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Solver knobs; objective, time limit, stop token, warm start and
  /// incumbent callback are overridden from the engine inputs.
  let::MilpSchedulerOptions milp;
  /// Wait up to this long (capped at 10% of the budget) for a cheap
  /// strategy to publish an incumbent into the sink before solving, and
  /// warm-start from it. With no incumbent the internal greedy warm start
  /// is used instead.
  double warm_start_grace_sec = 0.25;
};

class MilpEngine : public Scheduler {
 public:
  explicit MilpEngine(MilpEngineOptions options = {}) : options_(options) {}
  const char* name() const override { return "milp"; }
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink) override;

 private:
  MilpEngineOptions options_;
};

}  // namespace letdma::engine
