// Adapters wrapping the concrete schedulers behind engine::Scheduler.
//
//   * GreedyEngine      — the constructive heuristics; near-instant, always
//                         publishes the best valid strategy result.
//   * LocalSearchEngine — hill climbing from a greedy seed, or from a
//                         translated WarmStart hint when one is supplied
//                         (schedule repair); anytime, honours the stop
//                         token between candidate evaluations.
//   * MilpEngine        — the branch-and-bound MILP; takes a supplied
//                         WarmStart as its incumbent bound immediately,
//                         else warm-starts from the sink's incumbent when
//                         one is published in time, publishes every solver
//                         incumbent, and honours the stop token in the
//                         node loop.
//
// All adapters resolve a WarmStart hint first (resolve_warm_start seeds
// the sink with the translated previous schedule as strategy "warm"), so
// even a zero-budget solve with a warm start returns the previous
// schedule via expired_outcome.
//
// All adapters validate what they publish: a schedule reaches the sink or
// the outcome only when validate_schedule passes.
#pragma once

#include "letdma/engine/engine.hpp"
#include "letdma/let/local_search.hpp"
#include "letdma/let/milp_scheduler.hpp"

namespace letdma::engine {

struct GreedyEngineOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Restrict to one emission strategy; unset runs all and keeps the best.
  std::optional<let::GreedyStrategy> strategy;
};

class GreedyEngine : public Scheduler {
 public:
  explicit GreedyEngine(GreedyEngineOptions options = {})
      : options_(options) {}
  const char* name() const override { return "greedy"; }
  using Scheduler::solve;
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink, const WarmStart& warm) override;

 private:
  GreedyEngineOptions options_;
};

struct LocalSearchEngineOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Evaluation/improvement caps forwarded to improve_schedule; the goal,
  /// time limit and stop token are overridden from the engine inputs.
  let::LocalSearchOptions search;
};

class LocalSearchEngine : public Scheduler {
 public:
  explicit LocalSearchEngine(LocalSearchEngineOptions options = {})
      : options_(options) {}
  const char* name() const override { return "ls"; }
  using Scheduler::solve;
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink, const WarmStart& warm) override;

 private:
  LocalSearchEngineOptions options_;
};

struct MilpEngineOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Solver knobs; objective, time limit, stop token, warm start and
  /// incumbent callback are overridden from the engine inputs.
  let::MilpSchedulerOptions milp;
  /// With no WarmStart hint: wait up to this long (capped at 10% of the
  /// budget) for a cheap strategy to publish an incumbent into the sink
  /// before solving, and warm-start from it. A supplied WarmStart skips
  /// the wait. With neither, the internal greedy warm start is used.
  double warm_start_grace_sec = 0.25;
};

class MilpEngine : public Scheduler {
 public:
  explicit MilpEngine(MilpEngineOptions options = {}) : options_(options) {}
  const char* name() const override { return "milp"; }
  using Scheduler::solve;
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink, const WarmStart& warm) override;

 private:
  MilpEngineOptions options_;
};

}  // namespace letdma::engine
