// Supervised engine mode — graceful degradation with independent
// certification.
//
// SupervisedScheduler walks a degradation chain (default
// milp -> ls -> greedy -> giotto): each level is run under the remaining
// budget and its outcome is certified by letdma::guard before being
// served. A level that throws, times out without an incumbent, or fails
// certification is retried once (with a short backoff) and then demoted —
// the next, simpler level takes over. The terminal level is the Giotto
// baseline, which constructs a schedule directly from the paper's
// single-buffered protocol and succeeds whenever the instance is feasible
// at all, so a supervised solve never crashes, never hangs past its
// budget, and never returns an uncertified schedule.
//
// An infeasibility claim is not trusted blindly: when an upper level
// reports kInfeasible (the MILP can — a fault-injected node drop makes it
// lie), the supervisor cross-checks by running the rest of the chain; a
// certified feasible schedule from any later level refutes the claim, and
// the refutation is counted and recorded.
//
// Everything the supervisor does is observable: retries, demotions,
// certification failures and refuted infeasibility claims bump
// "engine.guard.*" counters and emit span instants, and the final
// SupervisionRecord names the level that produced the served schedule.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "letdma/engine/engine.hpp"
#include "letdma/guard/certify.hpp"

namespace letdma::engine {

/// Certifies a full engine outcome: composes guard::certify on the
/// schedule with engine-level shape checks (status/schedule consistency)
/// and an objective recomputation (catches a corrupted/NaN objective).
/// Outcomes without a schedule (kInfeasible / kTimeout) only get the
/// shape checks.
guard::Certificate certify_outcome(const let::LetComms& comms,
                                   const ScheduleOutcome& outcome,
                                   Objective objective);

/// One attempt at one chain level, as recorded by the supervisor.
struct LevelAttempt {
  std::string strategy;
  int attempt = 0;  // 0 = first try, 1 = retry
  Status status = Status::kTimeout;
  bool certified = false;
  std::string note;  // exception text / certification summary, if any
};

/// What the supervisor did during one solve.
struct SupervisionRecord {
  std::vector<LevelAttempt> attempts;
  /// Chain index of the level whose schedule was served (-1 = none).
  int fallback_level = -1;
  std::string served_by;
  int retries = 0;
  int demotions = 0;
  int certification_failures = 0;
  /// An upper level claimed kInfeasible but a later level produced a
  /// certified schedule.
  bool infeasible_refuted = false;
  /// Path the flight-recorder dump for this solve was written to (empty
  /// when nothing noteworthy happened or dumping is disabled).
  std::string flight_dump_path;
};

struct GuardOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Degradation chain, tried in order; empty = milp, ls, greedy, giotto.
  std::vector<std::string> chain;
  /// Retries per level before demotion (on throw / timeout-with-nothing /
  /// certification failure).
  int max_retries = 1;
  /// Sleep before a retry (capped by the remaining budget).
  double retry_backoff_sec = 0.05;
  /// Certify every outcome before serving it (the point of the exercise;
  /// OFF only makes sense for measuring certification overhead).
  bool certify = true;
  /// Run the remaining chain after a kInfeasible claim to try to refute
  /// it instead of trusting the claimant.
  bool cross_check_infeasible = true;
  /// Where to write the flight-recorder JSONL dump when a solve saw a
  /// retry, demotion, certification failure, or refuted infeasibility
  /// claim. Empty = use the LETDMA_FLIGHT_DUMP environment variable;
  /// both empty = no dump. The file is appended to, one JSONL line per
  /// ring event, so consecutive solves accumulate.
  std::string flight_dump_path;
  /// Observer invoked with the completed record after every solve.
  std::function<void(const SupervisionRecord&)> on_complete;
  /// Threaded into every chain level the factory builds (MILP parallelism
  /// knobs).
  EngineTuning tuning;
};

/// The paper's Giotto single-buffered baseline behind the Scheduler
/// interface — the terminal "always works" level of the degradation
/// chain. Publishes its schedule only when validate_schedule passes.
class GiottoEngine : public Scheduler {
 public:
  explicit GiottoEngine(Objective objective = Objective::kMinMaxLatencyRatio)
      : objective_(objective) {}
  const char* name() const override { return "giotto"; }
  using Scheduler::solve;
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink, const WarmStart& warm) override;

 private:
  Objective objective_;
};

class SupervisedScheduler : public Scheduler {
 public:
  explicit SupervisedScheduler(GuardOptions options = {});
  const char* name() const override { return "supervised"; }
  using Scheduler::solve;
  /// The warm-start hint is resolved once (seeding the sink) and handed
  /// through to every chain level; a zero-budget call with a valid warm
  /// start therefore serves the (certified) previous schedule.
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink, const WarmStart& warm) override;

 private:
  GuardOptions options_;
  std::vector<std::string> chain_;
};

/// Convenience: one supervised solve with a private sink, returning the
/// outcome together with the supervision record.
std::pair<ScheduleOutcome, SupervisionRecord> solve_supervised(
    const let::LetComms& comms, const GuardOptions& options,
    double budget_sec);

}  // namespace letdma::engine
