// IncrementalScheduler — repair-first re-scheduling with a supervised
// safety net.
//
// The incremental engine is what a dynamic system calls when an instance
// *changed* rather than appeared: it takes the previous schedule plus the
// model::ApplicationDiff as a WarmStart hint, translates the schedule onto
// the new instance (let::warm_start), runs the local-search repair from
// that seed (let::repair), and serves the repaired schedule — but only
// after guard::certify accepts it, exactly the gate fresh solves pass.
// When the repair fails (untranslatable seed, certification reject, or no
// warm start supplied at all) it falls through to the full
// SupervisedScheduler degradation chain under the remaining budget, still
// carrying the warm hint so even the fallback levels start from the
// previous schedule instead of cold.
//
// The acceptance target (ROADMAP): a certified re-schedule in well under
// one hyperperiod on WATERS-scale diffs of a few labels — the repair path
// skips the greedy candidate sweep and the MILP entirely, so its cost is
// one warm-start translation plus a short hill climb.
#pragma once

#include "letdma/engine/supervised.hpp"
#include "letdma/let/local_search.hpp"

namespace letdma::engine {

struct IncrementalOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Caps for the repair search (goal/stop/time limit are overridden from
  /// the engine inputs per solve).
  let::LocalSearchOptions search;
  /// Fraction of the remaining budget the repair attempt may consume
  /// before the supervised chain takes over on failure.
  double repair_budget_frac = 0.5;
  /// The fall-through chain (objective/tuning are kept in sync by the
  /// factory; certify should stay on).
  GuardOptions guard;
};

/// What the last solve on this scheduler did (repair vs fallback), exposed
/// for tools/benches; guarded per-solve, not thread-safe across concurrent
/// solves on one instance.
struct IncrementalRecord {
  bool warm_supplied = false;
  bool repair_attempted = false;
  bool repair_served = false;   // the repaired schedule was certified+served
  bool fell_through = false;    // the supervised chain produced the result
  int repair_improvements = 0;
  int repair_evaluations = 0;
};

class IncrementalScheduler : public Scheduler {
 public:
  explicit IncrementalScheduler(IncrementalOptions options = {});
  const char* name() const override { return "incremental"; }
  using Scheduler::solve;
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink, const WarmStart& warm) override;

  /// Record of the most recent solve (for single-threaded callers).
  const IncrementalRecord& last_record() const { return record_; }

 private:
  IncrementalOptions options_;
  SupervisedScheduler supervised_;
  IncrementalRecord record_;
};

}  // namespace letdma::engine
