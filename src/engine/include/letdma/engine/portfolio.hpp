// PortfolioScheduler — an anytime portfolio racing N strategies on
// std::thread workers under one shared wall-clock budget.
//
// Every worker publishes improving schedules into one mutex-protected
// SharedIncumbent; the MILP worker warm-starts from whatever the cheap
// workers published first. A shared atomic stop token implements
// cooperative cancellation: it is raised when the budget expires, when the
// caller's own stop token fires, or when one worker *proves* optimality or
// infeasibility (nothing left for the others to find) — losers observe it
// in their evaluation/node loops and return promptly.
//
// Observability: the solve emits one span per worker on a per-strategy
// track, "engine.incumbent" instants on every publication (from
// SharedIncumbent), and bumps the counters
//   engine.portfolio.launched   workers started
//   engine.portfolio.cancelled  workers that exited via the stop token
//   engine.portfolio.win.<s>    portfolio solves won by strategy <s>
#pragma once

#include <vector>

#include "letdma/engine/engine.hpp"

namespace letdma::engine {

struct PortfolioOptions {
  Objective objective = Objective::kMinMaxLatencyRatio;
  /// Strategy names to race (factory names); empty = {greedy, ls, milp}.
  std::vector<std::string> strategies;
  /// Workers running at once; 0 = one thread per strategy. Lower values
  /// run strategies in launch order, each seeing the remaining budget.
  int max_concurrency = 0;
  /// Raise the stop token once a worker returns a proof
  /// (kOptimal/kInfeasible) so losing workers stop early.
  bool early_stop = true;
  /// Threaded into every factory-built strategy (MILP parallelism knobs).
  EngineTuning tuning;
};

class PortfolioScheduler : public Scheduler {
 public:
  explicit PortfolioScheduler(PortfolioOptions options = {});
  /// Race caller-supplied strategies instead of factory names.
  PortfolioScheduler(std::vector<std::unique_ptr<Scheduler>> strategies,
                     PortfolioOptions options = {});

  const char* name() const override { return "portfolio"; }
  using Scheduler::solve;
  /// Returns the best published incumbent; kOptimal when some worker
  /// proved it, kInfeasible when some worker proved that, kTimeout when
  /// nothing was found. The caller's sink receives the winner too. A
  /// warm-start hint is resolved once into the shared incumbent and
  /// handed to every worker.
  ScheduleOutcome solve(const let::LetComms& comms, const Budget& budget,
                        IncumbentSink& sink, const WarmStart& warm) override;

 private:
  PortfolioOptions options_;
  std::vector<std::unique_ptr<Scheduler>> strategies_;
};

}  // namespace letdma::engine
