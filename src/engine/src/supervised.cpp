#include "letdma/engine/supervised.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <utility>

#include "letdma/baseline/giotto.hpp"
#include "letdma/let/compiled.hpp"
#include "letdma/obs/flight.hpp"
#include "letdma/obs/histogram.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::engine {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Floor budget for a degradation level reached after the wall clock ran
/// out: the constructive safety-net levels (greedy, giotto) still get a
/// sliver of time to run, so a solve whose upper levels consumed the whole
/// budget can overrun it by at most chain-length floors instead of
/// returning empty-handed.
constexpr double kLevelFloorSec = 0.05;

/// Resolved dump destination: the per-solve option wins, then the
/// LETDMA_FLIGHT_DUMP environment variable; empty disables dumping.
std::string resolve_flight_dump_path(const GuardOptions& options) {
  if (!options.flight_dump_path.empty()) return options.flight_dump_path;
  if (const char* env = std::getenv("LETDMA_FLIGHT_DUMP")) {
    return std::string(env);
  }
  return {};
}

}  // namespace

guard::Certificate certify_outcome(const let::LetComms& comms,
                                   const ScheduleOutcome& outcome,
                                   Objective objective) {
  guard::Certificate cert;
  const bool has_schedule = outcome.schedule.has_value();
  const bool should_have = outcome.status == Status::kOptimal ||
                           outcome.status == Status::kFeasible;
  if (has_schedule != should_have) {
    guard::Diagnostic d;
    d.check = guard::Check::kOutcomeShape;
    d.message = std::string("status `") + status_name(outcome.status) +
                (has_schedule ? "` carries a schedule"
                              : "` without a schedule");
    cert.diagnostics.push_back(std::move(d));
  }
  if (!has_schedule) return cert;  // nothing further to check

  if (!std::isfinite(outcome.objective)) {
    guard::Diagnostic d;
    d.check = guard::Check::kObjective;
    d.message = "reported objective is not finite";
    cert.diagnostics.push_back(std::move(d));
  } else {
    const double recomputed =
        objective_of(comms, *outcome.schedule, objective);
    const double tol = 1e-6 * std::max(1.0, std::abs(recomputed));
    if (std::abs(recomputed - outcome.objective) > tol) {
      guard::Diagnostic d;
      d.check = guard::Check::kObjective;
      d.message = "reported objective " + std::to_string(outcome.objective) +
                  " != recomputed " + std::to_string(recomputed);
      cert.diagnostics.push_back(std::move(d));
    }
  }

  // Hand the certifier a compiled view so it cross-checks the incremental
  // evaluator's sweep against the from-scratch latency path as part of the
  // certificate.
  const let::CompiledComms compiled(comms);
  guard::CertifyOptions copt;
  copt.compiled = &compiled;
  guard::Certificate inner = guard::certify(comms, *outcome.schedule, copt);
  for (guard::Diagnostic& d : inner.diagnostics) {
    cert.diagnostics.push_back(std::move(d));
  }
  return cert;
}

ScheduleOutcome GiottoEngine::solve(const let::LetComms& comms,
                                    const Budget& budget, IncumbentSink& sink,
                                    const WarmStart& warm) {
  const auto t0 = Clock::now();
  obs::ScopedSpan span("engine.giotto.solve", "engine");
  static obs::Histogram solve_ms("engine.solve_ms.giotto");
  obs::ScopedLatency solve_timer(solve_ms, 1e-3);
  if (warm.has_schedule()) {
    resolve_warm_start(comms, warm, objective_, &sink);
  }
  ScheduleOutcome out;
  out.strategy = name();
  if (budget.remaining_sec() <= 0.0 || budget.cancel_requested()) {
    out = expired_outcome(sink, name(), budget);
    out.wall_sec = seconds_since(t0);
    span.arg("status", status_name(out.status));
    return out;
  }
  try {
    let::ScheduleResult sched = baseline::giotto_dma_a(comms);
    if (schedule_valid(comms, sched)) {
      out.objective = objective_of(comms, sched, objective_);
      sink.offer(sched, out.objective, name());
      out.status = Status::kFeasible;
      out.schedule = std::move(sched);
    }
  } catch (const support::Error& e) {
    obs::log_warn("engine",
                  std::string("giotto baseline failed: ") + e.what());
  }
  out.cancelled = budget.cancel_requested();
  out.wall_sec = seconds_since(t0);
  span.arg("status", status_name(out.status));
  return out;
}

SupervisedScheduler::SupervisedScheduler(GuardOptions options)
    : options_(std::move(options)) {
  chain_ = options_.chain.empty()
               ? std::vector<std::string>{"milp", "ls", "greedy", "giotto"}
               : options_.chain;
  for (const std::string& n : chain_) {
    LETDMA_ENSURE(n != "supervised",
                  "a supervised chain cannot nest itself");
  }
}

ScheduleOutcome SupervisedScheduler::solve(const let::LetComms& comms,
                                           const Budget& budget,
                                           IncumbentSink& sink,
                                           const WarmStart& warm) {
  const auto t0 = Clock::now();
  obs::ScopedSpan span("engine.supervised.solve", "engine");
  static obs::Histogram solve_ms("engine.solve_ms.supervised");
  obs::ScopedLatency solve_timer(solve_ms, 1e-3);
  static obs::Counter retries_counter("engine.guard.retries");
  static obs::Counter demotions_counter("engine.guard.demotions");
  static obs::Counter certfail_counter("engine.guard.certify_failures");
  static obs::Counter refuted_counter("engine.guard.infeasible_refuted");

  // Everything recorded into the flight ring from here on belongs to this
  // solve; a triggered dump replays exactly this window.
  const std::uint64_t flight_mark = obs::flight().watermark();
  obs::flight_event("engine.guard.solve_begin", "engine",
                    {{"chain_head", chain_.front()},
                     {"budget_sec", budget.wall_sec}});

  SupervisionRecord record;
  ScheduleOutcome served;
  served.strategy = name();
  bool have_served = false;
  bool saw_infeasible = false;

  const auto finalize = [&](ScheduleOutcome out) {
    if (out.feasible() && saw_infeasible) {
      record.infeasible_refuted = true;
      refuted_counter.add();
      obs::flight_event("engine.guard.infeasible_refuted", "engine",
                        {{"strategy", out.strategy}}, obs::Level::kWarn);
    }
    out.cancelled = budget.cancel_requested();
    out.wall_sec = seconds_since(t0);
    if (out.feasible()) {
      obs::Registry::instance().counter_add(
          "engine.guard.served." + out.strategy, 1);
    }
    obs::flight_event("engine.guard.solve_end", "engine",
                      {{"status", std::string(status_name(out.status))},
                       {"served_by", record.served_by},
                       {"wall_sec", out.wall_sec}});
    // Anything that exercised the safety net is worth a post-mortem: dump
    // this solve's window of the flight ring as JSONL.
    const bool noteworthy = record.demotions > 0 ||
                            record.certification_failures > 0 ||
                            record.infeasible_refuted || record.retries > 0;
    if (noteworthy) {
      const std::string path = resolve_flight_dump_path(options_);
      if (!path.empty()) {
        std::ofstream dump(path, std::ios::app);
        if (dump) {
          obs::flight().dump_jsonl(dump, flight_mark);
          record.flight_dump_path = path;
          obs::log_info("engine",
                        "supervised flight dump appended to " + path);
        } else {
          obs::log_warn("engine",
                        "cannot open flight dump path " + path);
        }
      }
    }
    span.arg("status", status_name(out.status));
    span.arg("fallback_level", static_cast<std::int64_t>(
                                   record.fallback_level));
    span.arg("retries", static_cast<std::int64_t>(record.retries));
    span.arg("demotions", static_cast<std::int64_t>(record.demotions));
    span.arg("certify_failures",
             static_cast<std::int64_t>(record.certification_failures));
    if (options_.on_complete) options_.on_complete(record);
    return out;
  };

  // Resolve the warm-start hint once up front: the translated previous
  // schedule lands in the sink as strategy "warm", so both the expired
  // path below and every chain level see it.
  if (warm.has_schedule()) {
    resolve_warm_start(comms, warm, options_.objective, &sink);
  }

  if (budget.remaining_sec() <= 0.0 || budget.cancel_requested()) {
    ScheduleOutcome out = expired_outcome(sink, name(), budget);
    // The supervised contract holds even for a spent budget: anything
    // served (e.g. a warm-started previous schedule) must certify.
    if (out.feasible() && options_.certify) {
      const guard::Certificate cert =
          certify_outcome(comms, out, options_.objective);
      if (cert.certified()) {
        record.served_by = out.strategy;
        record.fallback_level = 0;
      } else {
        ++record.certification_failures;
        certfail_counter.add();
        out.schedule.reset();
        out.status = Status::kTimeout;
        out.objective = 0.0;
      }
    } else if (out.feasible()) {
      record.served_by = out.strategy;
    }
    return finalize(std::move(out));
  }

  const auto remaining = [&] {
    return budget.remaining_sec(seconds_since(t0));
  };

  for (int level = 0;
       level < static_cast<int>(chain_.size()) && !have_served; ++level) {
    const std::string& strat =
        chain_[static_cast<std::size_t>(level)];
    bool level_gave_up = false;
    for (int attempt = 0;
         attempt <= options_.max_retries && !have_served && !level_gave_up;
         ++attempt) {
      if (budget.cancel_requested()) {
        level = static_cast<int>(chain_.size());
        break;
      }
      LevelAttempt la;
      la.strategy = strat;
      la.attempt = attempt;
      ScheduleOutcome out;
      bool threw = false;
      try {
        const auto scheduler =
            make_scheduler(strat, options_.objective, options_.tuning);
        Budget level_budget;
        level_budget.wall_sec = std::max(remaining(), kLevelFloorSec);
        level_budget.stop = budget.stop;
        // The absolute deadline rides along so the level floor cannot
        // stretch a chain past the caller's cutoff — but only while it
        // leaves room for the floor, so a deadline-spent chain still gets
        // its last-ditch giotto attempt instead of returning nothing.
        if (budget.has_deadline() && remaining() > kLevelFloorSec) {
          level_budget.deadline = budget.deadline;
        }
        out = scheduler->solve(comms, level_budget, sink, warm);
      } catch (const std::exception& e) {
        threw = true;
        la.note = e.what();
        obs::flight_event("engine.guard.level_threw", "engine",
                          {{"strategy", strat}, {"what", la.note}},
                          obs::Level::kError);
        obs::log_warn("engine", "supervised level '" + strat +
                                    "' threw: " + e.what());
      }
      if (!threw) {
        la.status = out.status;
        if (out.status == Status::kOptimal ||
            out.status == Status::kFeasible) {
          const guard::Certificate cert =
              options_.certify
                  ? certify_outcome(comms, out, options_.objective)
                  : guard::Certificate{};
          if (cert.certified()) {
            la.certified = true;
            record.attempts.push_back(la);
            record.fallback_level = level;
            record.served_by = strat;
            served = std::move(out);
            have_served = true;
            break;
          }
          ++record.certification_failures;
          certfail_counter.add();
          la.note = cert.summary();
          obs::flight_event("engine.guard.certify_reject", "engine",
                            {{"strategy", strat}, {"summary", la.note}},
                            obs::Level::kWarn);
        } else if (out.status == Status::kInfeasible) {
          record.attempts.push_back(la);
          if (options_.cross_check_infeasible &&
              level + 1 < static_cast<int>(chain_.size())) {
            // Don't trust the claim: demote and let the rest of the chain
            // try to refute it with a certified schedule.
            saw_infeasible = true;
            level_gave_up = true;
            break;
          }
          record.fallback_level = level;
          record.served_by = strat;
          served = std::move(out);
          have_served = true;
          break;
        }
        // kTimeout with no incumbent: fall through to retry/demote.
      }
      if (attempt < options_.max_retries) {
        ++record.retries;
        retries_counter.add();
        obs::flight_event(
            "engine.guard.retry", "engine",
            {{"strategy", strat},
             {"attempt", static_cast<std::int64_t>(attempt + 1)},
             {"note", la.note}},
            obs::Level::kWarn);
        record.attempts.push_back(la);
        const double backoff =
            std::min(options_.retry_backoff_sec,
                     std::max(remaining(), 0.0));
        if (backoff > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(backoff));
        }
        continue;
      }
      record.attempts.push_back(la);
      level_gave_up = true;
    }
    if (!have_served && level + 1 < static_cast<int>(chain_.size())) {
      ++record.demotions;
      demotions_counter.add();
      obs::flight_event(
          "engine.guard.demote", "engine",
          {{"from", strat},
           {"to", chain_[static_cast<std::size_t>(level) + 1]}},
          obs::Level::kWarn);
    }
  }

  if (!have_served) {
    // Chain exhausted: serve the sink's best incumbent if it certifies.
    if (const std::optional<Incumbent> best = sink.best()) {
      ScheduleOutcome out;
      out.status = Status::kFeasible;
      out.schedule = best->schedule;
      out.objective = best->objective;
      out.strategy = best->strategy;
      const guard::Certificate cert =
          options_.certify
              ? certify_outcome(comms, out, options_.objective)
              : guard::Certificate{};
      if (cert.certified()) {
        served = std::move(out);
        have_served = true;
        record.served_by = served.strategy;
      }
    }
  }
  if (!have_served) {
    served.status = saw_infeasible ? Status::kInfeasible : Status::kTimeout;
  }
  return finalize(std::move(served));
}

std::pair<ScheduleOutcome, SupervisionRecord> solve_supervised(
    const let::LetComms& comms, const GuardOptions& options,
    double budget_sec) {
  GuardOptions opt = options;
  SupervisionRecord record;
  const auto user_cb = opt.on_complete;
  opt.on_complete = [&](const SupervisionRecord& r) {
    record = r;
    if (user_cb) user_cb(r);
  };
  SupervisedScheduler scheduler(opt);
  SharedIncumbent sink;
  Budget budget;
  budget.wall_sec = budget_sec;
  ScheduleOutcome out = scheduler.solve(comms, budget, sink);
  return {std::move(out), std::move(record)};
}

}  // namespace letdma::engine
