#include "letdma/engine/adapters.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "letdma/guard/faults.hpp"
#include "letdma/let/compiled.hpp"
#include "letdma/obs/histogram.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::engine {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Injection effects an adapter enacts itself (a kThrow already escaped
/// from fault_point inside poll_entry_fault).
struct EntryFault {
  bool nan_objective = false;
  bool spurious_infeasible = false;
};

/// Polls the adapter's entry fault site. kStall sleeps here (bounded by
/// the budget so a stalled engine still respects the wall clock); the
/// other kinds are returned for the adapter to apply where they bite.
EntryFault poll_entry_fault(std::string_view site, const Budget& budget) {
  EntryFault out;
  if (const auto fault = guard::fault_point(site)) {
    switch (*fault) {
      case guard::FaultKind::kNanObjective:
        out.nan_objective = true;
        break;
      case guard::FaultKind::kSpuriousInfeasible:
        out.spurious_infeasible = true;
        break;
      case guard::FaultKind::kStall:
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(0.2, std::max(budget.remaining_sec(), 0.0))));
        break;
      default:
        break;
    }
  }
  return out;
}

/// The greedy candidates in preference order for `objective`: the
/// composite best-of pick first, then every raw strategy as a fallback
/// (the composite pick can miss an acquisition deadline that another
/// strategy meets).
std::vector<let::ScheduleResult> greedy_candidates(
    const let::LetComms& comms, Objective objective,
    std::optional<let::GreedyStrategy> only) {
  std::vector<let::ScheduleResult> out;
  if (only) {
    out.push_back(let::GreedyScheduler(comms, {*only}).build());
    return out;
  }
  out.push_back(objective == Objective::kMinTransfers
                    ? let::GreedyScheduler::best_transfer_count(comms)
                    : let::GreedyScheduler::best_latency_ratio(comms));
  for (const let::GreedyStrategy s :
       {let::GreedyStrategy::kUrgencyFirst, let::GreedyStrategy::kWriteBatched,
        let::GreedyStrategy::kReadBatched}) {
    out.push_back(let::GreedyScheduler(comms, {s}).build());
  }
  return out;
}

/// Best valid candidate under the engine objective, or nullopt when every
/// candidate misses a deadline.
std::optional<std::pair<let::ScheduleResult, double>> pick_best_valid(
    const let::LetComms& comms, std::vector<let::ScheduleResult> candidates,
    Objective objective) {
  int best = -1;
  double best_obj = 0.0;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const let::ScheduleResult& cand =
        candidates[static_cast<std::size_t>(i)];
    if (!schedule_valid(comms, cand)) continue;
    const double obj = objective_of(comms, cand, objective);
    if (best < 0 || obj < best_obj) {
      best = i;
      best_obj = obj;
    }
  }
  if (best < 0) return std::nullopt;
  return std::make_pair(std::move(candidates[static_cast<std::size_t>(best)]),
                        best_obj);
}

/// Inner time limit for a worker: with a stop token present the token is
/// the authoritative deadline, so the worker's own limit gets slack —
/// cancellation then demonstrably flows through the token, not through a
/// racing internal timeout.
double inner_time_limit(double remaining_sec, const Budget& budget) {
  const double floor_sec = std::max(remaining_sec, 0.01);
  return budget.stop != nullptr ? floor_sec * 1.25 + 0.1 : floor_sec;
}

}  // namespace

ScheduleOutcome GreedyEngine::solve(const let::LetComms& comms,
                                    const Budget& budget, IncumbentSink& sink,
                                    const WarmStart& warm) {
  const auto t0 = Clock::now();
  obs::ScopedSpan span("engine.greedy.solve", "engine");
  static obs::Histogram solve_ms("engine.solve_ms.greedy");
  obs::ScopedLatency solve_timer(solve_ms, 1e-3);
  // Seed the sink with the translated warm start (greedy otherwise
  // ignores the hint) so an expired budget still returns it.
  if (warm.has_schedule()) {
    resolve_warm_start(comms, warm, options_.objective, &sink);
  }
  if (budget.remaining_sec() <= 0.0 || budget.cancel_requested()) {
    ScheduleOutcome out = expired_outcome(sink, name(), budget);
    span.arg("status", status_name(out.status));
    return out;
  }
  const EntryFault fault = poll_entry_fault("engine.greedy", budget);
  ScheduleOutcome out;
  out.strategy = name();
  auto best = pick_best_valid(
      comms, greedy_candidates(comms, options_.objective, options_.strategy),
      options_.objective);
  if (best) {
    sink.offer(best->first, best->second, name());
    out.status = Status::kFeasible;
    out.objective = best->second;
    out.schedule = std::move(best->first);
  }
  if (fault.nan_objective && out.feasible()) {
    out.objective = std::numeric_limits<double>::quiet_NaN();
  }
  out.cancelled = budget.cancel_requested();
  out.wall_sec = seconds_since(t0);
  span.arg("status", status_name(out.status));
  return out;
}

ScheduleOutcome LocalSearchEngine::solve(const let::LetComms& comms,
                                         const Budget& budget,
                                         IncumbentSink& sink,
                                         const WarmStart& warm) {
  const auto t0 = Clock::now();
  obs::ScopedSpan span("engine.ls.solve", "engine");
  static obs::Histogram solve_ms("engine.solve_ms.ls");
  obs::ScopedLatency solve_timer(solve_ms, 1e-3);
  const ResolvedWarmStart resolved =
      warm.has_schedule()
          ? resolve_warm_start(comms, warm, options_.objective, &sink)
          : ResolvedWarmStart{};
  if (budget.remaining_sec() <= 0.0 || budget.cancel_requested()) {
    ScheduleOutcome out = expired_outcome(sink, name(), budget);
    span.arg("status", status_name(out.status));
    return out;
  }
  const EntryFault fault = poll_entry_fault("engine.ls", budget);
  ScheduleOutcome out;
  out.strategy = name();

  // Repair mode: explore from the translated previous schedule instead of
  // a greedy cold start. Falls back to the greedy seed when the hint does
  // not survive translation/validation.
  if (resolved.valid) {
    out.status = Status::kFeasible;
    out.objective = resolved.objective;
    out.schedule = *resolved.seed;
    span.arg("warm_seeded", true);
  } else {
    auto seed = pick_best_valid(
        comms, greedy_candidates(comms, options_.objective, std::nullopt),
        options_.objective);
    if (!seed) {
      out.cancelled = budget.cancel_requested();
      out.wall_sec = seconds_since(t0);
      span.arg("status", status_name(out.status));
      return out;
    }
    sink.offer(seed->first, seed->second, name());
    out.status = Status::kFeasible;
    out.objective = seed->second;
    out.schedule = seed->first;
  }

  let::LocalSearchOptions ls = options_.search;
  ls.goal = options_.objective == Objective::kMinTransfers
                ? let::LocalSearchGoal::kMinTransfers
                : let::LocalSearchGoal::kMinMaxLatencyRatio;
  ls.stop = budget.stop;
  ls.time_limit_sec =
      inner_time_limit(budget.remaining_sec(seconds_since(t0)), budget);
  // Publish every accepted move so a racing MILP sees mid-search
  // improvements as warm starts instead of only the final result. The ls
  // goal value doubles as the engine objective except under kFeasibility.
  ls.on_improvement = [&](const let::ScheduleResult& improved_schedule,
                          double ls_objective) {
    sink.offer(improved_schedule,
               options_.objective == Objective::kFeasibility ? 0.0
                                                             : ls_objective,
               name());
  };
  try {
    // Compile once; the delta evaluator inside improve_schedule and any
    // repeated solves share the flat instance.
    const let::CompiledComms compiled(comms);
    let::LocalSearchResult improved =
        improve_schedule(compiled, *out.schedule, ls);
    // improve_schedule optimizes its own goal; re-measure under the
    // engine objective so kFeasibility stays 0 and comparisons stay
    // uniform across strategies.
    const double obj =
        objective_of(comms, improved.schedule, options_.objective);
    if (obj < out.objective || options_.objective == Objective::kFeasibility) {
      sink.offer(improved.schedule, obj, name());
      out.objective = obj;
      out.schedule = std::move(improved.schedule);
    }
  } catch (const support::Error&) {
    // The seed does not rebuild feasibly under the search's partition
    // moves; keep the validated seed as the outcome.
  }
  if (fault.nan_objective && out.feasible()) {
    out.objective = std::numeric_limits<double>::quiet_NaN();
  }
  out.cancelled = budget.cancel_requested();
  out.wall_sec = seconds_since(t0);
  span.arg("status", status_name(out.status));
  span.arg("objective", out.objective);
  return out;
}

ScheduleOutcome MilpEngine::solve(const let::LetComms& comms,
                                  const Budget& budget, IncumbentSink& sink,
                                  const WarmStart& warm) {
  const auto t0 = Clock::now();
  obs::ScopedSpan span("engine.milp.solve", "engine");
  static obs::Histogram solve_ms("engine.solve_ms.milp");
  obs::ScopedLatency solve_timer(solve_ms, 1e-3);
  if (warm.has_schedule()) {
    resolve_warm_start(comms, warm, options_.objective, &sink);
  }
  if (budget.remaining_sec() <= 0.0 || budget.cancel_requested()) {
    ScheduleOutcome out = expired_outcome(sink, name(), budget);
    span.arg("status", status_name(out.status));
    return out;
  }
  const EntryFault fault = poll_entry_fault("engine.milp", budget);
  ScheduleOutcome out;
  out.strategy = name();
  if (fault.spurious_infeasible) {
    // The engine claims a proof it does not have; the supervised chain's
    // cross-check is responsible for catching the lie.
    out.status = Status::kInfeasible;
    out.wall_sec = seconds_since(t0);
    span.arg("status", status_name(out.status));
    return out;
  }

  // A resolved WarmStart hint is already the sink's incumbent; without
  // one, wait briefly for a cheap strategy to publish a warm start.
  std::optional<Incumbent> hint = sink.best();
  if (!hint) {
    const double grace =
        std::min(options_.warm_start_grace_sec,
                 0.1 * std::max(budget.remaining_sec(), 0.0));
    while (!hint && seconds_since(t0) < grace &&
           !budget.cancel_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      hint = sink.best();
    }
  }

  let::MilpSchedulerOptions opt = options_.milp;
  switch (options_.objective) {
    case Objective::kMinMaxLatencyRatio:
      opt.objective = let::MilpObjective::kMinLatencyRatio;
      break;
    case Objective::kMinTransfers:
      opt.objective = let::MilpObjective::kMinTransfers;
      break;
    case Objective::kFeasibility:
      opt.objective = let::MilpObjective::kNone;
      break;
  }
  opt.solver.stop = budget.stop;
  opt.solver.time_limit_sec =
      inner_time_limit(budget.remaining_sec(seconds_since(t0)), budget);
  if (hint) {
    // The sink already holds a feasible configuration: seed from it and
    // skip the internal greedy candidates (they are what published it).
    opt.warm_start_hint = &hint->schedule;
    opt.greedy_warm_start = false;
  }
  opt.on_incumbent = [&](const let::ScheduleResult& schedule,
                         double /*model_objective*/) {
    if (!schedule_valid(comms, schedule)) return;
    sink.offer(schedule, objective_of(comms, schedule, options_.objective),
               name());
  };

  let::MilpScheduler scheduler(comms, opt);
  const let::MilpScheduleResult r = scheduler.solve();

  switch (r.status) {
    case milp::MilpStatus::kOptimal: out.status = Status::kOptimal; break;
    case milp::MilpStatus::kFeasible: out.status = Status::kFeasible; break;
    case milp::MilpStatus::kInfeasible:
      out.status = Status::kInfeasible;
      break;
    case milp::MilpStatus::kUnbounded:
    case milp::MilpStatus::kLimit: out.status = Status::kTimeout; break;
  }
  if (r.feasible()) {
    out.objective = objective_of(comms, *r.schedule, options_.objective);
    sink.offer(*r.schedule, out.objective, name());
    out.schedule = *r.schedule;
  }
  if (fault.nan_objective && out.feasible()) {
    out.objective = std::numeric_limits<double>::quiet_NaN();
  }
  out.cancelled = r.stats.cancelled || budget.cancel_requested();
  out.wall_sec = seconds_since(t0);
  span.arg("status", status_name(out.status));
  span.arg("warm_started_from_sink", hint.has_value());
  span.arg("nodes", r.stats.nodes_explored);
  return out;
}

}  // namespace letdma::engine
