#include "letdma/engine/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "letdma/obs/obs.hpp"

namespace letdma::engine {

BatchRunner::BatchRunner(BatchOptions options) {
  const int requested = options.threads > 0
                            ? options.threads
                            : static_cast<int>(
                                  std::thread::hardware_concurrency());
  threads_ = std::max(1, requested);
}

void BatchRunner::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& job) const {
  obs::ScopedSpan span("engine.batch.run", "engine");
  span.arg("jobs", static_cast<std::int64_t>(n));
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n);
  span.arg("threads", static_cast<std::int64_t>(workers));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto worker_fn = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker_fn);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<ScheduleOutcome> BatchRunner::run(
    Scheduler& scheduler, const std::vector<const let::LetComms*>& instances,
    const Budget& per_instance) const {
  return map<ScheduleOutcome>(instances.size(), [&](std::size_t i) {
    SharedIncumbent sink;
    return scheduler.solve(*instances[i], per_instance, sink);
  });
}

}  // namespace letdma::engine
