#include "letdma/engine/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "letdma/guard/faults.hpp"
#include "letdma/obs/histogram.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::engine {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

}  // namespace

PortfolioScheduler::PortfolioScheduler(PortfolioOptions options)
    : options_(std::move(options)) {
  const std::vector<std::string> names =
      options_.strategies.empty()
          ? std::vector<std::string>{"greedy", "ls", "milp"}
          : options_.strategies;
  for (const std::string& n : names) {
    strategies_.push_back(make_scheduler(n, options_.objective,
                                         options_.tuning));
  }
}

PortfolioScheduler::PortfolioScheduler(
    std::vector<std::unique_ptr<Scheduler>> strategies,
    PortfolioOptions options)
    : options_(std::move(options)), strategies_(std::move(strategies)) {
  LETDMA_ENSURE(!strategies_.empty(),
                "a portfolio needs at least one strategy");
}

ScheduleOutcome PortfolioScheduler::solve(const let::LetComms& comms,
                                          const Budget& budget,
                                          IncumbentSink& sink,
                                          const WarmStart& warm) {
  const auto t0 = Clock::now();
  auto deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(budget.wall_sec));
  if (budget.has_deadline() && budget.deadline < deadline) {
    deadline = budget.deadline;
  }
  obs::ScopedSpan span("engine.portfolio.solve", "engine");
  static obs::Histogram solve_ms("engine.solve_ms.portfolio");
  obs::ScopedLatency solve_timer(solve_ms, 1e-3);
  span.arg("strategies", static_cast<std::int64_t>(strategies_.size()));
  span.arg("budget_sec", budget.wall_sec);

  if (warm.has_schedule()) {
    resolve_warm_start(comms, warm, options_.objective, &sink);
  }
  if (budget.remaining_sec() <= 0.0 || budget.cancel_requested()) {
    // Spent budget: a well-defined prompt answer, no worker threads.
    ScheduleOutcome out = expired_outcome(sink, name(), budget);
    span.arg("status", status_name(out.status));
    return out;
  }
  guard::fault_point("engine.portfolio");  // may throw FaultInjectedError

  static obs::Counter launched_counter("engine.portfolio.launched");
  static obs::Counter cancelled_counter("engine.portfolio.cancelled");

  // Workers publish into a portfolio-local incumbent so the MILP worker's
  // warm-start polling sees what the cheap workers found; the winner is
  // forwarded into the caller's sink at the end.
  SharedIncumbent shared;
  std::atomic<bool> stop{false};
  std::atomic<bool> proved_optimal{false};
  std::atomic<bool> proved_infeasible{false};
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  int workers_done = 0;

  const int total = static_cast<int>(strategies_.size());
  const int workers = options_.max_concurrency > 0
                          ? std::min(options_.max_concurrency, total)
                          : total;

  auto worker_fn = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= strategies_.size()) break;
      Scheduler& strategy = *strategies_[i];
      const double remaining = seconds_until(deadline);
      if (remaining <= 0.0 || stop.load(std::memory_order_relaxed)) {
        break;  // budget spent before this strategy got a slot
      }
      launched_counter.add();
      const int track = obs::Registry::instance().track(
          std::string("engine.") + strategy.name());
      obs::ScopedSpan worker_span("engine.portfolio.worker", "engine",
                                  track);
      worker_span.arg("strategy", strategy.name());
      Budget worker_budget;
      worker_budget.wall_sec = remaining;
      worker_budget.stop = &stop;
      ScheduleOutcome out;
      out.strategy = strategy.name();
      try {
        out = strategy.solve(comms, worker_budget, shared, warm);
      } catch (const std::exception& e) {
        obs::log_warn("engine", std::string("portfolio worker '") +
                                    strategy.name() + "' failed: " +
                                    e.what());
        continue;
      }
      worker_span.arg("status", status_name(out.status));
      worker_span.arg("cancelled", out.cancelled);
      if (out.cancelled) cancelled_counter.add();
      if (!out.cancelled) {
        // A proof leaves nothing for the other workers to find.
        if (out.status == Status::kOptimal) {
          proved_optimal.store(true, std::memory_order_relaxed);
          if (options_.early_stop) stop.store(true, std::memory_order_relaxed);
        } else if (out.status == Status::kInfeasible) {
          proved_infeasible.store(true, std::memory_order_relaxed);
          if (options_.early_stop) stop.store(true, std::memory_order_relaxed);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ++workers_done;
    }
    cv.notify_all();
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker_fn);

  // Watchdog on the calling thread: raise the stop token at the deadline
  // (or when the caller's own token fires) and wait for the workers.
  {
    std::unique_lock<std::mutex> lock(mu);
    while (workers_done < workers) {
      cv.wait_for(lock, std::chrono::milliseconds(50),
                  [&] { return workers_done >= workers; });
      if (Clock::now() >= deadline || budget.cancel_requested()) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
  }
  for (std::thread& t : pool) t.join();

  ScheduleOutcome out;
  out.strategy = name();
  const std::optional<Incumbent> best = shared.best();
  if (best) {
    sink.offer(best->schedule, best->objective, best->strategy);
    obs::Registry::instance().counter_add(
        "engine.portfolio.win." + best->strategy, 1);
    out.status = proved_optimal.load() ? Status::kOptimal : Status::kFeasible;
    out.schedule = best->schedule;
    out.objective = best->objective;
    out.strategy = best->strategy;
  } else if (proved_infeasible.load()) {
    out.status = Status::kInfeasible;
  }
  out.cancelled = budget.cancel_requested();
  out.wall_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  span.arg("status", status_name(out.status));
  span.arg("winner", best ? best->strategy : std::string("-"));
  span.arg("incumbent_improvements",
           static_cast<std::int64_t>(shared.improvements()));
  return out;
}

}  // namespace letdma::engine
