#include "letdma/engine/engine.hpp"

#include <algorithm>

#include "letdma/engine/adapters.hpp"
#include "letdma/engine/incremental.hpp"
#include "letdma/engine/portfolio.hpp"
#include "letdma/engine/supervised.hpp"
#include "letdma/let/compiled.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/let/repair.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::engine {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOptimal: return "optimal";
    case Status::kFeasible: return "feasible";
    case Status::kInfeasible: return "infeasible";
    case Status::kTimeout: return "timeout (no solution)";
  }
  return "?";
}

const char* objective_name(Objective objective) {
  switch (objective) {
    case Objective::kMinMaxLatencyRatio: return "OBJ-DEL";
    case Objective::kMinTransfers: return "OBJ-DMAT";
    case Objective::kFeasibility: return "NO-OBJ";
  }
  return "?";
}

double objective_of(const let::LetComms& comms,
                    const let::ScheduleResult& schedule,
                    Objective objective) {
  switch (objective) {
    case Objective::kFeasibility:
      return 0.0;
    case Objective::kMinTransfers:
      return static_cast<double>(schedule.s0_transfers.size());
    case Objective::kMinMaxLatencyRatio: {
      const std::vector<support::Time> wc = let::worst_case_latencies(
          comms, schedule.schedule, let::ReadinessSemantics::kProposed);
      double worst = 0.0;
      for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
        worst = std::max(
            worst,
            static_cast<double>(wc[static_cast<std::size_t>(task)]) /
                static_cast<double>(
                    comms.app().task(model::TaskId{task}).period));
      }
      return worst;
    }
  }
  return 0.0;
}

bool schedule_valid(const let::LetComms& comms,
                    const let::ScheduleResult& schedule) {
  return let::validate_schedule(comms, schedule.layout, schedule.schedule)
      .ok();
}

bool SharedIncumbent::offer(const let::ScheduleResult& schedule,
                            double objective, const std::string& strategy) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (best_ && best_->objective <= objective + 1e-12) return false;
    best_ = Incumbent{schedule, objective, strategy};
    ++improvements_;
  }
  static obs::Counter incumbents("engine.incumbents");
  incumbents.add();
  obs::instant("engine.incumbent", "engine",
               {{"strategy", strategy}, {"objective", objective}});
  return true;
}

std::optional<Incumbent> SharedIncumbent::best() const {
  std::lock_guard<std::mutex> lock(mu_);
  return best_;
}

int SharedIncumbent::improvements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return improvements_;
}

ResolvedWarmStart resolve_warm_start(const let::LetComms& comms,
                                     const WarmStart& warm,
                                     Objective objective,
                                     IncumbentSink* sink) {
  ResolvedWarmStart out;
  if (!warm.has_schedule()) return out;
  try {
    const let::CompiledComms compiled(comms);
    out.seed = let::warm_start(compiled, *warm.schedule, warm.diff);
  } catch (const support::Error&) {
    return out;  // untranslatable hint: proceed cold
  }
  if (!schedule_valid(comms, *out.seed)) return out;
  out.valid = true;
  out.objective = objective_of(comms, *out.seed, objective);
  if (sink != nullptr) sink->offer(*out.seed, out.objective, "warm");
  return out;
}

ScheduleOutcome expired_outcome(const IncumbentSink& sink,
                                const std::string& strategy,
                                const Budget& budget) {
  ScheduleOutcome out;
  out.strategy = strategy;
  out.cancelled = budget.cancel_requested();
  if (const std::optional<Incumbent> best = sink.best()) {
    out.status = Status::kFeasible;
    out.schedule = best->schedule;
    out.objective = best->objective;
    out.strategy = best->strategy;
  }
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          Objective objective,
                                          const EngineTuning& tuning) {
  if (name == "greedy") {
    GreedyEngineOptions opt;
    opt.objective = objective;
    return std::make_unique<GreedyEngine>(opt);
  }
  if (name == "ls") {
    LocalSearchEngineOptions opt;
    opt.objective = objective;
    return std::make_unique<LocalSearchEngine>(opt);
  }
  if (name == "milp") {
    MilpEngineOptions opt;
    opt.objective = objective;
    opt.milp.solver.threads = tuning.milp_threads;
    opt.milp.solver.deterministic = tuning.milp_deterministic;
    return std::make_unique<MilpEngine>(opt);
  }
  if (name == "portfolio") {
    PortfolioOptions opt;
    opt.objective = objective;
    opt.tuning = tuning;
    return std::make_unique<PortfolioScheduler>(opt);
  }
  if (name == "giotto") {
    return std::make_unique<GiottoEngine>(objective);
  }
  if (name == "supervised") {
    GuardOptions opt;
    opt.objective = objective;
    opt.tuning = tuning;
    return std::make_unique<SupervisedScheduler>(opt);
  }
  if (name == "incremental") {
    IncrementalOptions opt;
    opt.objective = objective;
    opt.guard.objective = objective;
    opt.guard.tuning = tuning;
    return std::make_unique<IncrementalScheduler>(opt);
  }
  throw support::PreconditionError("unknown engine scheduler: " + name);
}

ScheduleOutcome solve_with(const std::string& scheduler_name,
                           const let::LetComms& comms, Objective objective,
                           double budget_sec) {
  const auto scheduler = make_scheduler(scheduler_name, objective);
  SharedIncumbent sink;
  Budget budget;
  budget.wall_sec = budget_sec;
  return scheduler->solve(comms, budget, sink);
}

}  // namespace letdma::engine
