#include "letdma/engine/incremental.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "letdma/let/compiled.hpp"
#include "letdma/let/repair.hpp"
#include "letdma/obs/flight.hpp"
#include "letdma/obs/histogram.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"

namespace letdma::engine {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

IncrementalScheduler::IncrementalScheduler(IncrementalOptions options)
    : options_(std::move(options)), supervised_([&] {
        GuardOptions g = options_.guard;
        g.objective = options_.objective;
        return g;
      }()) {}

ScheduleOutcome IncrementalScheduler::solve(const let::LetComms& comms,
                                            const Budget& budget,
                                            IncumbentSink& sink,
                                            const WarmStart& warm) {
  const auto t0 = Clock::now();
  obs::ScopedSpan span("engine.incremental.solve", "engine");
  static obs::Histogram solve_ms("engine.solve_ms.incremental");
  static obs::Histogram repair_ms("engine.repair_ms");
  obs::ScopedLatency solve_timer(solve_ms, 1e-3);
  static obs::Counter repair_served_counter("engine.incremental.repair_served");
  static obs::Counter fallthrough_counter("engine.incremental.fallthrough");

  record_ = IncrementalRecord{};
  record_.warm_supplied = warm.has_schedule();

  const auto fall_through = [&](const char* reason) {
    record_.fell_through = true;
    fallthrough_counter.add();
    span.arg("fallthrough", reason);
    Budget rest = budget;
    rest.wall_sec = std::max(budget.wall_sec - seconds_since(t0), 0.0);
    ScheduleOutcome out = supervised_.solve(comms, rest, sink, warm);
    out.wall_sec = seconds_since(t0);
    return out;
  };

  if (!warm.has_schedule()) return fall_through("no_warm_start");

  // Zero budget: hand straight to the supervised chain, whose expired
  // path serves the (certified) warm incumbent instead of nothing.
  if (budget.remaining_sec() <= 0.0 || budget.cancel_requested()) {
    return fall_through("budget_expired");
  }

  record_.repair_attempted = true;
  let::LocalSearchOptions ls = options_.search;
  ls.goal = options_.objective == Objective::kMinTransfers
                ? let::LocalSearchGoal::kMinTransfers
                : let::LocalSearchGoal::kMinMaxLatencyRatio;
  ls.stop = budget.stop;
  ls.time_limit_sec = std::max(
      0.01, budget.remaining_sec() * std::clamp(options_.repair_budget_frac,
                                                0.05, 1.0));
  ls.on_improvement = [&](const let::ScheduleResult& improved,
                          double ls_objective) {
    sink.offer(improved,
               options_.objective == Objective::kFeasibility ? 0.0
                                                             : ls_objective,
               "repair");
  };

  const auto repair_t0 = Clock::now();
  std::optional<ScheduleOutcome> repaired;
  try {
    const let::CompiledComms compiled(comms);
    const let::RepairResult r =
        let::repair(compiled, *warm.schedule, warm.diff, ls);
    if (r.repaired && schedule_valid(comms, r.result.schedule)) {
      ScheduleOutcome out;
      out.status = Status::kFeasible;
      out.objective = objective_of(comms, r.result.schedule,
                                   options_.objective);
      out.schedule = r.result.schedule;
      out.strategy = "repair";
      record_.repair_improvements = r.result.improvements;
      record_.repair_evaluations = r.result.evaluations;
      repaired = std::move(out);
    }
    span.arg("comms_carried",
             static_cast<std::int64_t>(r.stats.comms_carried));
    span.arg("comms_dropped",
             static_cast<std::int64_t>(r.stats.comms_dropped));
    span.arg("comms_added", static_cast<std::int64_t>(r.stats.comms_added));
  } catch (const support::Error&) {
    // Translation blew up structurally; the chain below re-solves cold.
  }
  repair_ms.record(seconds_since(repair_t0) * 1e3);

  if (!repaired) return fall_through("repair_failed");

  // The repaired schedule is gated exactly like a fresh solve.
  const guard::Certificate cert =
      certify_outcome(comms, *repaired, options_.objective);
  if (!cert.certified()) {
    obs::flight_event("engine.incremental.certify_reject", "engine",
                      {{"summary", cert.summary()}}, obs::Level::kWarn);
    return fall_through("certify_reject");
  }

  sink.offer(*repaired->schedule, repaired->objective, "repair");
  record_.repair_served = true;
  repair_served_counter.add();
  repaired->cancelled = budget.cancel_requested();
  repaired->wall_sec = seconds_since(t0);
  span.arg("status", status_name(repaired->status));
  span.arg("objective", repaired->objective);
  span.arg("served_by", "repair");
  return std::move(*repaired);
}

}  // namespace letdma::engine
