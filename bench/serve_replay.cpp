// serve_replay — load driver for the letdma::serve scheduling service.
//
// Replays a seeded corpus of near-duplicate instances (random task/label
// reorderings, renamings and core renumberings of a few base models — the
// production traffic shape the solve cache exists for) against a Service,
// in-process by default or over the Unix-socket protocol with --socket.
// Base models are seeded into the cache untimed; the timed window then
// measures steady-state behaviour: requests/second, cache hit rate, and
// that every response is certified.
//
//   serve_replay [--requests n] [--bases n] [--tenants n] [--threads n]
//                [--clients n] [--budget-ms ms] [--seed s]
//                [--socket [path]] [--connect path] [--journal path]
//                [--retry] [--kill-after n] [--recover]
//                [--check <baseline.json>]
//
// --socket starts an in-process Server and drives it through the wire;
// --connect drives an already-running letdma_served at the given path
// instead (the CI smoke job exercises the real daemon this way — note
// that cache/certification stats then live in the daemon, so only the
// per-response flags are asserted). --check gates req_per_sec against
// 0.8x the committed baseline (the nightly perf gate); metrics land on
// the standard JSONL stream (LETDMA_METRICS), histograms included, so
// letdma_report renders the per-tenant serve.* tables.
//
// Crash-recovery options (the CI crash smoke drives these):
//   --journal p     journal the in-process service's cache at p
//   --retry         enable the client reconnect/backoff policy
//   --kill-after n  tolerate a mid-load disconnect once >= n responses
//                   arrived (the harness kill -9s the daemon mid-replay);
//                   fewer than n is still a failure
//   --recover       assert (over the wire, via a stats request) that the
//                   daemon recovered a nonzero journal entry count, and
//                   gate the hit rate at the post-recovery floor of 80%
//
// LETDMA_FAULTS in the environment arms the guard fault injector, so the
// chaos seeds exercise the io.journal.* / serve.socket.* sites through a
// real replay.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "letdma/engine/batch.hpp"
#include "letdma/guard/faults.hpp"
#include "letdma/model/canonical.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/model/io.hpp"
#include "letdma/serve/server.hpp"
#include "letdma/serve/service.hpp"

using namespace letdma;

namespace {

struct Args {
  int requests = 20000;
  int bases = 12;
  int tenants = 4;
  int threads = 0;
  int clients = 4;
  double budget_ms = 500.0;
  std::uint64_t seed = 42;
  bool use_socket = false;
  bool external_server = false;
  bool retry = false;
  bool recover = false;
  int kill_after = -1;  // < 0: disconnects are failures, as before
  std::string socket_path = "/tmp/letdma-serve-replay.sock";
  std::string baseline_path;
  std::string journal_path;
};

int usage() {
  std::fprintf(stderr,
               "usage: serve_replay [--requests n] [--bases n] [--tenants n]"
               " [--threads n]\n"
               "       [--clients n] [--budget-ms ms] [--seed s]"
               " [--socket [path]]\n"
               "       [--connect path] [--journal path] [--retry]"
               " [--kill-after n]\n"
               "       [--recover] [--check <baseline.json>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto value = [&](std::string* dst) {
      if (a + 1 >= argc) return false;
      *dst = argv[++a];
      return true;
    };
    std::string v;
    if (arg == "--requests") {
      if (!value(&v)) return usage();
      args.requests = std::atoi(v.c_str());
    } else if (arg == "--bases") {
      if (!value(&v)) return usage();
      args.bases = std::atoi(v.c_str());
    } else if (arg == "--tenants") {
      if (!value(&v)) return usage();
      args.tenants = std::atoi(v.c_str());
    } else if (arg == "--threads") {
      if (!value(&v)) return usage();
      args.threads = std::atoi(v.c_str());
    } else if (arg == "--clients") {
      if (!value(&v)) return usage();
      args.clients = std::atoi(v.c_str());
    } else if (arg == "--budget-ms") {
      if (!value(&v)) return usage();
      args.budget_ms = std::atof(v.c_str());
    } else if (arg == "--seed") {
      if (!value(&v)) return usage();
      args.seed = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else if (arg == "--socket") {
      args.use_socket = true;
      // Optional path operand.
      if (a + 1 < argc && argv[a + 1][0] != '-') args.socket_path = argv[++a];
    } else if (arg == "--connect") {
      args.use_socket = true;
      args.external_server = true;
      if (!value(&args.socket_path)) return usage();
    } else if (arg == "--journal") {
      if (!value(&args.journal_path)) return usage();
    } else if (arg == "--retry") {
      args.retry = true;
    } else if (arg == "--kill-after") {
      if (!value(&v)) return usage();
      args.kill_after = std::atoi(v.c_str());
    } else if (arg == "--recover") {
      args.recover = true;
    } else if (arg == "--check") {
      if (!value(&args.baseline_path)) return usage();
    } else {
      return usage();
    }
  }
  if (args.requests <= 0 || args.bases <= 0 || args.tenants <= 0 ||
      args.clients <= 0) {
    return usage();
  }
  try {
    if (guard::arm_from_env()) {
      std::fprintf(stderr,
                   "serve_replay: fault injector armed from LETDMA_FAULTS\n");
    }
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // --- corpus ---------------------------------------------------------------
  std::mt19937_64 rng(args.seed);
  std::vector<std::unique_ptr<model::Application>> bases;
  bases.reserve(static_cast<std::size_t>(args.bases));
  for (int b = 0; b < args.bases; ++b) {
    bases.push_back(
        bench::make_replay_base(args.seed + static_cast<std::uint64_t>(b)));
  }
  std::vector<serve::Request> warmup;
  for (int b = 0; b < args.bases; ++b) {
    serve::Request req;
    req.id = "warm" + std::to_string(b);
    req.tenant = "t" + std::to_string(b % args.tenants);
    req.model_text =
        model::write_application(*bases[static_cast<std::size_t>(b)]);
    req.budget_sec = args.budget_ms / 1000.0;
    req.want_schedule = false;
    warmup.push_back(std::move(req));
  }
  std::vector<serve::Request> corpus;
  corpus.reserve(static_cast<std::size_t>(args.requests));
  for (int i = 0; i < args.requests; ++i) {
    const model::Application& base =
        *bases[static_cast<std::size_t>(i % args.bases)];
    const auto dup = bench::permuted_duplicate(base, rng);
    serve::Request req;
    req.id = "r" + std::to_string(i);
    req.tenant = "t" + std::to_string(i % args.tenants);
    req.model_text = model::write_application(*dup);
    req.budget_sec = args.budget_ms / 1000.0;
    req.want_schedule = false;
    corpus.push_back(std::move(req));
  }

  // --- service --------------------------------------------------------------
  serve::ServiceOptions service_options;
  service_options.cache_capacity = 4096;
  // Replay saturates every worker; admission is load-shedding for
  // production, not the thing under test here.
  service_options.default_policy.max_inflight = 1 << 20;
  service_options.default_policy.max_budget_sec = 30.0;
  // The cheap end of the degradation chain: replay measures the serving
  // layer, not MILP solve times (table1_milp owns those).
  service_options.guard.chain = {"ls", "greedy", "giotto"};
  if (!args.external_server) {
    service_options.journal_path = args.journal_path;
  }
  serve::Service service(service_options);

  const engine::BatchRunner runner(engine::BatchOptions{args.threads});
  std::printf("serve_replay: %d requests over %d bases, %d tenants, "
              "%d worker threads%s\n",
              args.requests, args.bases, args.tenants, runner.threads(),
              args.external_server ? ", external server"
              : args.use_socket    ? ", socket mode"
                                   : ", in-process");

  std::unique_ptr<serve::Server> server;
  if (args.use_socket && !args.external_server) {
    serve::ServerOptions so;
    so.socket_path = args.socket_path;
    so.threads = args.threads;
    server = std::make_unique<serve::Server>(service, so);
    server->start();
  }

  serve::ClientOptions client_options;
  client_options.retry.enabled = args.retry;
  client_options.retry.jitter_seed = args.seed;

  // Set when any client lost its connection mid-batch with retries
  // exhausted (the expected shape of a --kill-after run).
  std::atomic<bool> disconnected{false};

  const auto drive = [&](const std::vector<serve::Request>& requests)
      -> std::vector<serve::Response> {
    if (!args.use_socket) {
      return runner.map<serve::Response>(
          requests.size(),
          [&](std::size_t i) { return service.handle(requests[i]); });
    }
    // Socket mode: split round-robin across pipelining client
    // connections, each batching through the line protocol.
    std::vector<std::vector<serve::Request>> per_client(
        static_cast<std::size_t>(args.clients));
    for (std::size_t i = 0; i < requests.size(); ++i) {
      per_client[i % per_client.size()].push_back(requests[i]);
    }
    std::vector<std::vector<serve::Response>> gathered(per_client.size());
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < per_client.size(); ++c) {
      threads.emplace_back([&, c] {
        serve::ClientOptions co = client_options;
        co.retry.jitter_seed = args.seed + c;
        try {
          serve::Client client(args.socket_path, co);
          if (args.kill_after >= 0) {
            // Partial-tolerant: a daemon killed mid-load leaves this
            // client with the prefix it answered; keep it.
            bool dropped = false;
            gathered[c] = client.call_batch(per_client[c], &dropped);
            if (dropped) disconnected.store(true);
          } else {
            gathered[c] = client.call_batch(per_client[c]);
          }
        } catch (const support::Error& e) {
          if (args.kill_after < 0) throw;
          std::fprintf(stderr, "client %zu: %s\n", c, e.what());
          disconnected.store(true);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    std::vector<serve::Response> flat;
    flat.reserve(requests.size());
    for (const auto& g : gathered) {
      flat.insert(flat.end(), g.begin(), g.end());
    }
    return flat;
  };

  // --- warmup (untimed): seed the cache with one solve per base -------------
  for (const serve::Response& r : drive(warmup)) {
    if (!r.ok) {
      std::fprintf(stderr, "warmup solve failed: %s\n", r.error.c_str());
      return 1;
    }
  }
  const serve::CacheStats warm_stats = service.cache().stats();

  // --- timed replay ---------------------------------------------------------
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<serve::Response> responses = drive(corpus);
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // The --recover probe asks the *daemon* for its journal counters (the
  // per-response flags cannot prove recovery happened), so it must run
  // while the in-process server is still accepting. In pure in-process
  // mode the service object is right here — no wire needed.
  std::optional<serve::ServerStatsReply> recover_stats;
  std::string recover_error;
  if (args.recover) {
    if (args.use_socket) {
      try {
        serve::Client probe(args.socket_path, client_options);
        recover_stats = probe.stats();
      } catch (const support::Error& e) {
        recover_error = e.what();
      }
    } else {
      const serve::ServiceStats local = service.stats();
      serve::ServerStatsReply reply;
      reply.ok = true;
      reply.journal_recovered = local.journal.recovered;
      reply.journal_dropped_corrupt = local.journal.dropped_corrupt;
      reply.journal_dropped_uncertified = local.journal.dropped_uncertified;
      reply.journal_dropped_stale = local.journal.dropped_stale;
      recover_stats = reply;
    }
  }

  if (server != nullptr) server->stop();

  std::int64_t ok = 0, certified = 0, hits = 0;
  for (const serve::Response& r : responses) {
    ok += r.ok ? 1 : 0;
    certified += r.certified ? 1 : 0;
    hits += r.cache_hit ? 1 : 0;
  }
  const double req_per_sec =
      wall_sec > 0 ? static_cast<double>(responses.size()) / wall_sec : 0.0;
  const double hit_rate =
      responses.empty()
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(responses.size());
  const double certified_rate =
      responses.empty() ? 0.0
                        : static_cast<double>(certified) /
                              static_cast<double>(responses.size());
  const serve::ServiceStats stats = service.stats();

  std::printf("replayed %zu requests in %.2fs: %.0f req/s\n",
              responses.size(), wall_sec, req_per_sec);
  std::printf("  ok %lld, certified %lld (%.2f%%), cache hits %lld "
              "(%.2f%% hit rate)\n",
              static_cast<long long>(ok), static_cast<long long>(certified),
              100.0 * certified_rate, static_cast<long long>(hits),
              100.0 * hit_rate);
  if (!args.external_server) {
    std::printf("  cache: %zu/%zu entries, %lld evictions, "
                "%lld invalidations (warmup filled %zu)\n",
                stats.cache.size, stats.cache.capacity,
                static_cast<long long>(stats.cache.evictions),
                static_cast<long long>(stats.cache.invalidations),
                warm_stats.size);
  }

  const std::string config = args.external_server ? "external"
                             : args.use_socket    ? "socket"
                                                  : "in-process";
  bench::append_metrics(
      "serve_replay", config,
      {{"requests", static_cast<std::int64_t>(responses.size())},
       {"bases", static_cast<std::int64_t>(args.bases)},
       {"tenants", static_cast<std::int64_t>(args.tenants)},
       {"threads", static_cast<std::int64_t>(runner.threads())},
       {"wall_sec", wall_sec},
       {"req_per_sec", req_per_sec},
       {"hit_rate", hit_rate},
       {"certified_rate", certified_rate},
       {"rejected", stats.rejected},
       {"evictions", stats.cache.evictions},
       {"invalidations", stats.cache.invalidations}});
  bench::append_histogram_metrics("serve_replay");

  // Zero uncertified responses is non-negotiable in every mode: whatever
  // was answered — from a fresh solve, the cache, or a recovered journal —
  // must have been certified.
  if (ok != static_cast<std::int64_t>(responses.size()) ||
      certified != static_cast<std::int64_t>(responses.size())) {
    std::fprintf(stderr,
                 "FAIL: %lld responses not ok or not certified\n",
                 static_cast<long long>(
                     static_cast<std::int64_t>(responses.size()) -
                     std::min(ok, certified)));
    return 1;
  }

  if (args.recover) {
    if (!recover_stats.has_value()) {
      std::fprintf(stderr, "FAIL: --recover stats probe: %s\n",
                   recover_error.c_str());
      return 1;
    }
    std::printf("  daemon journal: %lld recovered, %lld corrupt, "
                "%lld uncertified, %lld stale\n",
                static_cast<long long>(recover_stats->journal_recovered),
                static_cast<long long>(recover_stats->journal_dropped_corrupt),
                static_cast<long long>(
                    recover_stats->journal_dropped_uncertified),
                static_cast<long long>(recover_stats->journal_dropped_stale));
    if (recover_stats->journal_recovered <= 0) {
      std::fprintf(stderr,
                   "FAIL: --recover expected a nonzero recovered-entry "
                   "count\n");
      return 1;
    }
  }

  if (args.kill_after >= 0 && disconnected.load()) {
    // The harness killed the daemon mid-load, exactly as requested; the
    // run passes when enough of the corpus was answered first (hit-rate
    // and throughput gates are meaningless on an interrupted window).
    if (responses.size() <
        static_cast<std::size_t>(args.kill_after)) {
      std::fprintf(stderr,
                   "FAIL: disconnected after only %zu responses "
                   "(--kill-after %d)\n",
                   responses.size(), args.kill_after);
      return 1;
    }
    std::printf("daemon disconnected after %zu responses (expected by "
                "--kill-after %d): ok\n",
                responses.size(), args.kill_after);
    return 0;
  }

  const double hit_floor = args.recover ? 0.8 : 0.9;
  if (hit_rate < hit_floor) {
    std::fprintf(stderr, "FAIL: hit rate %.2f%% below %.0f%%\n",
                 100.0 * hit_rate, 100.0 * hit_floor);
    return 1;
  }
  if (!args.baseline_path.empty()) {
    return bench::check_baseline(args.baseline_path, "req_per_sec",
                                 "serve replay throughput", req_per_sec);
  }
  return 0;
}
