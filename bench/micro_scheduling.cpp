// Micro-benchmarks (E6) for the scheduling-side components: local search,
// presolve, multi-channel evaluation, and schedule (de)serialization.
#include <benchmark/benchmark.h>

#include <memory>

#include "letdma/let/local_search.hpp"
#include "letdma/let/multichannel.hpp"
#include "letdma/let/schedule_io.hpp"
#include "letdma/milp/presolve.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/support/rng.hpp"

using namespace letdma;

namespace {

std::unique_ptr<model::Application> chain_app(int n) {
  model::GeneratorOptions opt;
  opt.num_cores = 4;
  opt.num_tasks = n;
  opt.num_labels = n;
  opt.seed = 1234;
  return generate_application(opt);
}

void local_search_improve(benchmark::State& state,
                          let::LocalSearchEngine engine) {
  const auto app = chain_app(static_cast<int>(state.range(0)));
  const let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) {
    state.SkipWithError("no inter-core comms");
    return;
  }
  const let::ScheduleResult start = let::GreedyScheduler(comms).build();
  for (auto _ : state) {
    let::LocalSearchOptions opt;
    opt.engine = engine;
    opt.max_evaluations = 100;
    const let::LocalSearchResult r = improve_schedule(comms, start, opt);
    benchmark::DoNotOptimize(r.objective);
  }
}

void BM_LocalSearchImprove(benchmark::State& state) {
  local_search_improve(state, let::LocalSearchEngine::kCompiled);
}
BENCHMARK(BM_LocalSearchImprove)->Arg(8)->Arg(12);

// The seed rebuild-per-candidate evaluator, kept as the A/B partner of
// BM_LocalSearchImprove; the gap between the two is the delta-evaluation
// win on synthetic chains (micro_localsearch gates the WATERS ratio).
void BM_LocalSearchImproveReference(benchmark::State& state) {
  local_search_improve(state, let::LocalSearchEngine::kReference);
}
BENCHMARK(BM_LocalSearchImproveReference)->Arg(8)->Arg(12);

void BM_Presolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  support::Rng rng(5);
  milp::Model m;
  std::vector<milp::Var> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(m.add_binary("x" + std::to_string(i)));
  }
  for (int r = 0; r < n; ++r) {
    milp::LinExpr row;
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.3)) {
        row += static_cast<double>(rng.uniform_int(1, 5)) * vars[i];
      }
    }
    m.add_constraint(row, milp::Sense::kLe,
                     static_cast<double>(rng.uniform_int(2, 8)),
                     "r" + std::to_string(r));
  }
  for (auto _ : state) {
    const milp::PresolveResult r = milp::presolve_bounds(m);
    benchmark::DoNotOptimize(r.tightenings);
  }
}
BENCHMARK(BM_Presolve)->Arg(50)->Arg(200);

void BM_MultiChannelEval(benchmark::State& state) {
  const auto app = chain_app(12);
  const let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) {
    state.SkipWithError("no inter-core comms");
    return;
  }
  const let::ScheduleResult g = let::GreedyScheduler(comms).build();
  const int channels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const let::MultiChannelReport r =
        schedule_on_channels(*app, g.s0_transfers, channels);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_MultiChannelEval)->Arg(1)->Arg(4);

void BM_ScheduleRoundTrip(benchmark::State& state) {
  const auto app = chain_app(10);
  const let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) {
    state.SkipWithError("no inter-core comms");
    return;
  }
  const let::ScheduleResult g = let::GreedyScheduler(comms).build();
  for (auto _ : state) {
    const std::string text = let::write_schedule(*app, g);
    const let::ScheduleResult loaded = let::read_schedule(comms, text);
    benchmark::DoNotOptimize(loaded.s0_transfers.size());
  }
}
BENCHMARK(BM_ScheduleRoundTrip);

}  // namespace

BENCHMARK_MAIN();
