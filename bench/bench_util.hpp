// Shared helpers for the paper-reproduction benchmark harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "letdma/analysis/rta.hpp"
#include "letdma/baseline/giotto.hpp"
#include "letdma/engine/engine.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/canonical.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/obs/histogram.hpp"
#include "letdma/obs/json.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/table.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma::bench {

/// MILP time budget per configuration, overridable for quick runs:
///   LETDMA_MILP_TIMEOUT=10 ./fig2_latency_ratios
inline double milp_timeout_sec(double fallback = 45.0) {
  if (const char* env = std::getenv("LETDMA_MILP_TIMEOUT")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// MILP worker-thread count for the benches, overridable for scaling runs:
///   LETDMA_MILP_THREADS=4 ./table1_milp
/// (harnesses also accept --threads N, which wins over the environment).
inline int milp_threads(int fallback = 1) {
  if (const char* env = std::getenv("LETDMA_MILP_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Builds the WATERS application with acquisition deadlines for `alpha`.
/// Returns nullptr when the sensitivity procedure is infeasible.
inline std::unique_ptr<model::Application> waters_with_alpha(double alpha) {
  auto app = waters::make_waters_app();
  const auto sens = analysis::acquisition_deadlines(*app, alpha);
  if (!sens.feasible) return nullptr;
  analysis::apply_acquisition_deadlines(*app, sens.gamma);
  return app;
}

// --- corpus generation (shared by serve_replay and incremental_repair) ----

inline std::vector<int> random_permutation(int n, std::mt19937_64& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

/// Small harmonic instances: tight T* keeps per-request certification in
/// the microsecond range, which is what a 10k req/s cache-hit path needs.
inline std::unique_ptr<model::Application> make_replay_base(
    std::uint64_t seed) {
  model::GeneratorOptions opt;
  opt.num_cores = 3;
  opt.num_tasks = 8;
  opt.num_labels = 10;
  opt.total_utilization = 0.3;
  opt.period_choices = {support::ms(10), support::ms(20), support::ms(40)};
  opt.seed = seed;
  return model::generate_application(opt);
}

/// A random isomorphic duplicate of `base` — tasks, labels and cores
/// renumbered (model::permute_application renames to match). The
/// production traffic shape the solve cache collapses onto one key.
inline std::unique_ptr<model::Application> permuted_duplicate(
    const model::Application& base, std::mt19937_64& rng) {
  return model::permute_application(
      base, random_permutation(base.num_tasks(), rng),
      random_permutation(base.num_labels(), rng),
      random_permutation(base.platform().num_cores(), rng));
}

/// A copy of `base` with `k` labels' sizes perturbed (each by a factor in
/// [0.5, 2], never a no-op) — a seeded small-diff stream for the
/// incremental-repair path. Tasks and the label topology are unchanged, so
/// model::diff reports exactly `k` changed labels.
inline std::unique_ptr<model::Application> perturb_labels(
    const model::Application& base, int k, std::mt19937_64& rng) {
  auto out = std::make_unique<model::Application>(base.platform());
  for (int t = 0; t < base.num_tasks(); ++t) {
    const model::Task& task = base.task(model::TaskId{t});
    const model::TaskId id =
        out->add_task(task.name, task.period, task.wcet, task.core,
                      task.priority);
    if (task.acquisition_deadline.has_value()) {
      out->set_acquisition_deadline(id, *task.acquisition_deadline);
    }
  }
  std::vector<int> which = random_permutation(base.num_labels(), rng);
  which.resize(static_cast<std::size_t>(
      std::min(k, base.num_labels())));
  std::sort(which.begin(), which.end());
  std::uniform_int_distribution<int> quarters(2, 8);  // x0.5 .. x2
  for (int l = 0; l < base.num_labels(); ++l) {
    const model::Label& label = base.label(model::LabelId{l});
    std::int64_t bytes = label.size_bytes;
    if (std::binary_search(which.begin(), which.end(), l)) {
      bytes = std::max<std::int64_t>(1, bytes * quarters(rng) / 4);
      if (bytes == label.size_bytes) ++bytes;
    }
    out->add_label(label.name, bytes, label.writer, label.readers);
  }
  out->finalize();
  return out;
}

inline const char* objective_name(let::MilpObjective obj) {
  switch (obj) {
    case let::MilpObjective::kNone: return "NO-OBJ";
    case let::MilpObjective::kMinTransfers: return "OBJ-DMAT";
    case let::MilpObjective::kMinLatencyRatio: return "OBJ-DEL";
  }
  return "?";
}

inline const char* status_name(milp::MilpStatus s) {
  switch (s) {
    case milp::MilpStatus::kOptimal: return "optimal";
    case milp::MilpStatus::kFeasible: return "timeout (incumbent)";
    case milp::MilpStatus::kInfeasible: return "infeasible";
    case milp::MilpStatus::kUnbounded: return "unbounded";
    case milp::MilpStatus::kLimit: return "timeout (no solution)";
  }
  return "?";
}

/// Max worst-case latency over period across all communicating tasks —
/// the OBJ-DEL measure every sweep reports (previously copy-pasted into
/// each bench).
inline double max_latency_ratio(const model::Application& app,
                                const std::vector<model::Time>& wc) {
  double worst = 0.0;
  for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
    worst = std::max(
        worst, static_cast<double>(wc[static_cast<std::size_t>(task)]) /
                   static_cast<double>(app.task(model::TaskId{task}).period));
  }
  return worst;
}

/// One engine solve with a private incumbent — the "deadlines -> comms ->
/// schedule -> validate" preamble every bench used to hand-roll. The
/// returned outcome's schedule (when present) is already validated by the
/// engine adapters.
inline engine::ScheduleOutcome run_engine(const let::LetComms& comms,
                                          const std::string& scheduler,
                                          engine::Objective objective,
                                          double budget_sec) {
  return engine::solve_with(scheduler, comms, objective, budget_sec);
}

/// Destination of the machine-readable benchmark metrics stream:
///   LETDMA_METRICS=/tmp/run.jsonl ./table1_milp
/// defaults to bench_metrics.jsonl in the working directory; set
/// LETDMA_METRICS to the empty string to disable emission.
inline std::string metrics_path() {
  if (const char* env = std::getenv("LETDMA_METRICS")) return env;
  return "bench_metrics.jsonl";
}

/// Appends `{"bench":...,"config":...,<fields>}` as one JSONL line so
/// future runs have a perf trajectory to diff against.
inline void append_metrics(const std::string& bench,
                           const std::string& config,
                           const std::vector<obs::Arg>& fields) {
  const std::string path = metrics_path();
  if (path.empty()) return;
  std::string line = "{\"bench\":";
  obs::json::append_string(line, bench);
  line += ",\"config\":";
  obs::json::append_string(line, config);
  for (const obs::Arg& f : fields) {
    line += ",";
    obs::json::append_string(line, f.key);
    line += ":";
    obs::json::append_value(line, f.value);
  }
  line += "}\n";
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

/// Appends the uniform engine fields for an outcome to a metrics record.
inline void append_engine_metrics(const std::string& bench,
                                  const std::string& config,
                                  const engine::ScheduleOutcome& out) {
  std::vector<obs::Arg> fields = {
      {"status", std::string(engine::status_name(out.status))},
      {"strategy", out.strategy},
      {"objective", out.objective},
      {"wall_sec", out.wall_sec},
      {"cancelled", out.cancelled},
  };
  if (out.schedule) {
    fields.push_back(
        {"transfers",
         static_cast<std::int64_t>(out.schedule->s0_transfers.size())});
  }
  append_metrics(bench, config, fields);
}

/// MILP-run convenience: records the outcome *and* the solve behaviour
/// (incumbent timeline, final gap) for trajectory comparisons.
inline void append_milp_metrics(const std::string& bench,
                                const std::string& config,
                                const let::MilpScheduleResult& r) {
  std::vector<obs::Arg> fields = {
      {"status", std::string(status_name(r.status))},
      {"objective", r.objective},
      {"transfers", static_cast<std::int64_t>(r.dma_transfers_at_s0)},
      {"wall_sec", r.stats.wall_sec},
      {"threads", static_cast<std::int64_t>(r.stats.threads_used)},
      {"nodes", r.stats.nodes_explored},
      {"nodes_pruned", r.stats.nodes_pruned},
      {"lp_iterations", r.stats.lp_iterations},
      {"lazy_rows", static_cast<std::int64_t>(r.stats.lazy_rows_added)},
      {"separation_rounds",
       static_cast<std::int64_t>(r.stats.separation_rounds)},
      {"first_incumbent_sec", r.stats.first_incumbent_sec},
      {"improvements",
       static_cast<std::int64_t>(r.stats.incumbent_improvements())},
  };
  if (!r.stats.gap_timeline.empty()) {
    fields.push_back({"final_gap", r.stats.gap_timeline.back().gap});
  }
  // The incumbent timeline rides along as a JSON array string so one
  // line stays one observation.
  std::string timeline = "[";
  for (std::size_t i = 0; i < r.stats.incumbents.size(); ++i) {
    const milp::IncumbentSample& s = r.stats.incumbents[i];
    if (i > 0) timeline += ",";
    timeline += "[";
    obs::json::append_number(timeline, s.t_sec);
    timeline += ",";
    obs::json::append_number(timeline, s.objective);
    timeline += "]";
  }
  timeline += "]";
  fields.push_back({"incumbent_timeline", timeline});
  append_metrics(bench, config, fields);
}

/// Appends one "histogram" metrics row per non-empty registry histogram —
/// how the latency percentiles every solve records reach the metrics
/// stream (and from there letdma_report) with a uniform schema.
inline void append_histogram_metrics(const std::string& bench) {
  obs::Registry& reg = obs::Registry::instance();
  for (const std::string& name : reg.histogram_names()) {
    const obs::HistogramSnapshot s = obs::snapshot_of(*reg.histogram_cell(name));
    if (s.count == 0) continue;
    append_metrics(bench, "histogram",
                   {{"hist", name},
                    {"count", s.count},
                    {"mean", s.mean()},
                    {"p50", s.p50},
                    {"p90", s.p90},
                    {"p99", s.p99},
                    {"max", s.max}});
  }
}

/// Minimal extraction of `"key": <number>` from a flat JSON object; enough
/// for the committed baseline files and free of parser dependencies.
/// (Previously copy-pasted into micro_localsearch and micro_milp.)
inline bool json_number(const std::string& text, const std::string& key,
                        double* out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t p = text.find(':', at + needle.size());
  if (p == std::string::npos) return false;
  *out = std::strtod(text.c_str() + p + 1, nullptr);
  return true;
}

/// Gates `measured` (labelled `label`) against 0.8x the `key` field of the
/// baseline JSON at `path` — the shared --check implementation of the
/// micro benches. Returns the process exit code (0 ok, 1 regression or
/// unreadable baseline).
inline int check_baseline(const std::string& path, const std::string& key,
                          const std::string& label, double measured) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  double baseline = 0.0;
  if (!json_number(buf.str(), key, &baseline) || baseline <= 0.0) {
    std::fprintf(stderr, "baseline %s has no positive \"%s\" field\n",
                 path.c_str(), key.c_str());
    return 1;
  }
  const double floor = 0.8 * baseline;
  std::printf("check: %s %.1f vs baseline %.1f (floor %.1f): %s\n",
              label.c_str(), measured, baseline, floor,
              measured >= floor ? "ok" : "REGRESSION");
  return measured >= floor ? 0 : 1;
}

}  // namespace letdma::bench
