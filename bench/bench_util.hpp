// Shared helpers for the paper-reproduction benchmark harnesses.
#pragma once

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "letdma/analysis/rta.hpp"
#include "letdma/baseline/giotto.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/support/table.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma::bench {

/// MILP time budget per configuration, overridable for quick runs:
///   LETDMA_MILP_TIMEOUT=10 ./fig2_latency_ratios
inline double milp_timeout_sec(double fallback = 45.0) {
  if (const char* env = std::getenv("LETDMA_MILP_TIMEOUT")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Builds the WATERS application with acquisition deadlines for `alpha`.
/// Returns nullptr when the sensitivity procedure is infeasible.
inline std::unique_ptr<model::Application> waters_with_alpha(double alpha) {
  auto app = waters::make_waters_app();
  const auto sens = analysis::acquisition_deadlines(*app, alpha);
  if (!sens.feasible) return nullptr;
  analysis::apply_acquisition_deadlines(*app, sens.gamma);
  return app;
}

inline const char* objective_name(let::MilpObjective obj) {
  switch (obj) {
    case let::MilpObjective::kNone: return "NO-OBJ";
    case let::MilpObjective::kMinTransfers: return "OBJ-DMAT";
    case let::MilpObjective::kMinLatencyRatio: return "OBJ-DEL";
  }
  return "?";
}

inline const char* status_name(milp::MilpStatus s) {
  switch (s) {
    case milp::MilpStatus::kOptimal: return "optimal";
    case milp::MilpStatus::kFeasible: return "timeout (incumbent)";
    case milp::MilpStatus::kInfeasible: return "infeasible";
    case milp::MilpStatus::kUnbounded: return "unbounded";
    case milp::MilpStatus::kLimit: return "timeout (no solution)";
  }
  return "?";
}

}  // namespace letdma::bench
