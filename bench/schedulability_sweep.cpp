// Extension experiment (E8): schedulability acceptance ratio versus task
// utilization. For random 4-core systems we report the fraction that is
// schedulable (i) ignoring communication entirely (plain RTA), (ii) under
// the proposed protocol (LET interference + per-task readiness jitter),
// and (iii) with Giotto readiness semantics (every task waits for the
// whole epoch) on the same schedule.
//
// The motivating claim of the paper appears as the gap between (ii) and
// (iii): per-task readiness preserves far more schedulability headroom as
// utilization grows.
#include <cstdio>

#include "bench_util.hpp"
#include "letdma/analysis/protocol_rta.hpp"
#include "letdma/model/generator.hpp"

using namespace letdma;

int main() {
  constexpr int kSamples = 25;
  std::printf(
      "Schedulability sweep: 4-core systems, 10 tasks, 8 labels, "
      "%d samples per point\n\n",
      kSamples);
  support::TextTable table({"U per core", "plain RTA", "proposed protocol",
                            "Giotto semantics"});
  for (const double u : {0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    int plain_ok = 0, proposed_ok = 0, giotto_ok = 0;
    for (int s = 0; s < kSamples; ++s) {
      model::GeneratorOptions opt;
      opt.num_cores = 4;
      opt.num_tasks = 10;
      opt.num_labels = 8;
      opt.total_utilization = u * opt.num_cores;
      opt.max_label_bytes = 32768;
      opt.seed = static_cast<std::uint64_t>(u * 1000) * 7919 + s;
      const auto app = generate_application(opt);
      const bool plain = analysis::analyze(*app).schedulable;
      plain_ok += plain;
      if (!plain) continue;  // protocol can only make things worse
      let::LetComms comms(*app);
      if (comms.comms_at_s0().empty()) {
        proposed_ok += 1;
        giotto_ok += 1;
        continue;
      }
      const let::ScheduleResult g =
          let::GreedyScheduler::best_latency_ratio(comms);
      proposed_ok += analysis::analyze_with_protocol(
                         comms, g.schedule, let::ReadinessSemantics::kProposed,
                         analysis::InterferenceModel::kDemandBound)
                         .schedulable;
      giotto_ok += analysis::analyze_with_protocol(
                       comms, g.schedule, let::ReadinessSemantics::kGiotto,
                       analysis::InterferenceModel::kDemandBound)
                       .schedulable;
    }
    auto pct = [&](int n) {
      return support::fmt_double(100.0 * n / kSamples, 0) + " %";
    };
    table.add_row({support::fmt_double(u, 1), pct(plain_ok),
                   pct(proposed_ok), pct(giotto_ok)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
