// Extension experiment (E8): schedulability acceptance ratio versus task
// utilization. For random 4-core systems we report the fraction that is
// schedulable (i) ignoring communication entirely (plain RTA), (ii) under
// the proposed protocol (LET interference + per-task readiness jitter),
// and (iii) with Giotto readiness semantics (every task waits for the
// whole epoch) on the same schedule.
//
// The motivating claim of the paper appears as the gap between (ii) and
// (iii): per-task readiness preserves far more schedulability headroom as
// utilization grows.
//
// The (utilization, sample) grid fans out over engine::BatchRunner; the
// per-point acceptance counts aggregate from index-ordered results, so the
// table is identical at any thread count.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "letdma/analysis/protocol_rta.hpp"
#include "letdma/engine/batch.hpp"
#include "letdma/model/generator.hpp"

using namespace letdma;

namespace {

struct Verdict {
  double u = 0.0;
  bool plain = false, proposed = false, giotto = false;
};

}  // namespace

int main() {
  constexpr int kSamples = 25;
  std::printf(
      "Schedulability sweep: 4-core systems, 10 tasks, 8 labels, "
      "%d samples per point\n\n",
      kSamples);

  const std::vector<double> utilizations = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  std::vector<std::pair<double, int>> grid;  // (u, sample)
  for (const double u : utilizations) {
    for (int s = 0; s < kSamples; ++s) grid.emplace_back(u, s);
  }

  const engine::BatchRunner runner;
  const std::vector<Verdict> verdicts = runner.map<Verdict>(
      grid.size(), [&](std::size_t i) {
        const auto [u, s] = grid[i];
        Verdict v;
        v.u = u;
        model::GeneratorOptions opt;
        opt.num_cores = 4;
        opt.num_tasks = 10;
        opt.num_labels = 8;
        opt.total_utilization = u * opt.num_cores;
        opt.max_label_bytes = 32768;
        opt.seed = static_cast<std::uint64_t>(u * 1000) * 7919 +
                   static_cast<std::uint64_t>(s);
        const auto app = generate_application(opt);
        v.plain = analysis::analyze(*app).schedulable;
        if (!v.plain) return v;  // protocol can only make things worse
        let::LetComms comms(*app);
        if (comms.comms_at_s0().empty()) {
          v.proposed = v.giotto = true;
          return v;
        }
        const engine::ScheduleOutcome out = bench::run_engine(
            comms, "greedy", engine::Objective::kMinMaxLatencyRatio, 5.0);
        bench::append_engine_metrics(
            "schedulability_sweep",
            "u=" + support::fmt_double(u, 1) + ",sample=" + std::to_string(s),
            out);
        if (!out.schedule) return v;
        v.proposed = analysis::analyze_with_protocol(
                         comms, out.schedule->schedule,
                         let::ReadinessSemantics::kProposed,
                         analysis::InterferenceModel::kDemandBound)
                         .schedulable;
        v.giotto = analysis::analyze_with_protocol(
                       comms, out.schedule->schedule,
                       let::ReadinessSemantics::kGiotto,
                       analysis::InterferenceModel::kDemandBound)
                       .schedulable;
        return v;
      });

  support::TextTable table({"U per core", "plain RTA", "proposed protocol",
                            "Giotto semantics"});
  for (const double u : utilizations) {
    int plain_ok = 0, proposed_ok = 0, giotto_ok = 0;
    for (const Verdict& v : verdicts) {
      if (v.u != u) continue;
      plain_ok += v.plain;
      proposed_ok += v.proposed;
      giotto_ok += v.giotto;
    }
    auto pct = [&](int n) {
      return support::fmt_double(100.0 * n / kSamples, 0) + " %";
    };
    table.add_row({support::fmt_double(u, 1), pct(plain_ok),
                   pct(proposed_ok), pct(giotto_ok)});
  }
  std::printf("%s", table.render().c_str());
  bench::append_histogram_metrics("schedulability_sweep");
  return 0;
}
