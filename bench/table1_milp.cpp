// Reproduces Table I: observed MILP running times and number of DMA
// transfers for the WATERS case study under each objective function and
// alpha in {0.2, 0.4}.
//
// Shape expected from the paper (with IBM CPLEX on a 40-core Xeon):
//   NO-OBJ    solves almost immediately            (paper: 8s,  16 transfers)
//   OBJ-DMAT  hits the time limit with an incumbent (paper: 1h, 12 transfers)
//   OBJ-DEL   solves/improves quickly               (paper: 8-12s, 16)
// Our bundled branch-and-bound is far weaker than CPLEX, so the budget is
// minutes rather than an hour; the qualitative ordering is what matters.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"

using namespace letdma;

int main(int argc, char** argv) {
  int threads = bench::milp_threads();
  bool deterministic = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deterministic") == 0) {
      deterministic = true;
    }
  }
  const double timeout = bench::milp_timeout_sec();
  std::printf(
      "Table I reproduction (time limit %.0fs per run, %d thread%s%s)\n\n",
      timeout, threads, threads == 1 ? "" : "s",
      deterministic ? ", deterministic" : "");

  support::TextTable table({"Obj. function", "alpha", "running time",
                            "status", "# DMA transfers", "nodes",
                            "lazy rows"});
  for (const let::MilpObjective obj :
       {let::MilpObjective::kNone, let::MilpObjective::kMinTransfers,
        let::MilpObjective::kMinLatencyRatio}) {
    for (const double alpha : {0.2, 0.4}) {
      const auto app = bench::waters_with_alpha(alpha);
      if (!app) {
        table.add_row({bench::objective_name(obj),
                       support::fmt_double(alpha, 1), "-", "infeasible gamma",
                       "-", "-", "-"});
        continue;
      }
      let::LetComms comms(*app);
      let::MilpSchedulerOptions opt;
      opt.objective = obj;
      opt.solver.time_limit_sec = timeout;
      opt.solver.threads = threads;
      opt.solver.deterministic = deterministic;
      let::MilpScheduler milp(comms, opt);
      const auto r = milp.solve();
      bench::append_milp_metrics(
          "table1_milp", std::string(bench::objective_name(obj)) + "/alpha=" +
                             support::fmt_double(alpha, 1),
          r);
      table.add_row({bench::objective_name(obj),
                     support::fmt_double(alpha, 1),
                     support::fmt_double(r.stats.wall_sec, 1) + " s",
                     bench::status_name(r.status),
                     r.feasible() ? std::to_string(r.dma_transfers_at_s0)
                                  : "-",
                     std::to_string(r.stats.nodes_explored),
                     std::to_string(r.stats.lazy_rows_added)});
    }
  }
  std::printf("%s", table.render().c_str());

  // Reference rows: the transfer counts of the non-optimizing approaches.
  const auto app = bench::waters_with_alpha(0.2);
  if (app) {
    let::LetComms comms(*app);
    const auto a = baseline::giotto_dma_a(comms);
    const auto greedy = let::GreedyScheduler::best_transfer_count(comms);
    std::printf(
        "\nreference: Giotto-DMA-A uses %zu transfers (one per copy); "
        "best greedy uses %zu\n",
        a.s0_transfers.size(), greedy.s0_transfers.size());
  }
  return 0;
}
