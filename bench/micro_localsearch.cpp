// Local-search throughput harness: candidate evaluations per second on the
// WATERS case study, seed rebuild-per-candidate path (kReference) against
// the compiled-instance delta evaluator (kCompiled). Both engines must
// agree exactly (evaluations, improvements, objective bits) — this binary
// aborts with a diagnostic if they ever diverge, so the perf numbers can
// never come from paths that drifted apart.
//
// Modes:
//   ./micro_localsearch                      print the table, emit metrics
//   ./micro_localsearch --check BASELINE     additionally compare the
//       measured OBJ-DEL speedup against the committed baseline and exit
//       non-zero when it regressed by more than 20%.
//
// Metrics go to the LETDMA_METRICS destination (CI points this at
// BENCH_localsearch.json); the speedup ratio is machine-independent enough
// to gate on, absolute evals/sec are informational.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "letdma/let/compiled.hpp"
#include "letdma/let/local_search.hpp"

namespace {

using namespace letdma;
using Clock = std::chrono::steady_clock;

struct Sample {
  let::LocalSearchResult result;
  double best_sec;       // fastest of the timed repeats
  double evals_per_sec;  // evaluations / best_sec
};

/// Runs one full (converged) improvement pass `repeats` times and keeps
/// the fastest wall time — the standard repeat-and-best protocol that
/// filters scheduler noise out of short runs.
Sample measure(const let::LetComms& comms, const let::CompiledComms& compiled,
               const let::ScheduleResult& start, let::LocalSearchGoal goal,
               let::LocalSearchEngine engine, int repeats) {
  let::LocalSearchOptions opt;
  opt.goal = goal;
  opt.engine = engine;
  // Convergence-bounded runs: both engines walk the identical accepted-move
  // trajectory to the same local optimum, so the evaluation counts match.
  opt.max_evaluations = 1 << 20;
  opt.max_improvements = 1 << 20;

  const bool use_compiled = engine == let::LocalSearchEngine::kCompiled;
  const auto run = [&] {
    return use_compiled ? improve_schedule(compiled, start, opt)
                        : improve_schedule(comms, start, opt);
  };

  let::LocalSearchResult first = run();  // warm-up, also the reported result
  double best_sec = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    const let::LocalSearchResult rr = run();
    const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
    best_sec = std::min(best_sec, sec);
    if (rr.evaluations != first.evaluations) {
      std::fprintf(stderr, "non-deterministic run: %d vs %d evaluations\n",
                   rr.evaluations, first.evaluations);
      std::exit(2);
    }
  }
  const double rate = best_sec > 0.0 ? first.evaluations / best_sec : 0.0;
  return Sample{std::move(first), best_sec, rate};
}

const char* goal_name(let::LocalSearchGoal goal) {
  return goal == let::LocalSearchGoal::kMinTransfers ? "OBJ-DMAT" : "OBJ-DEL";
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  const auto app = waters::make_waters_app();
  const let::LetComms comms(*app);
  const let::CompiledComms compiled(comms);
  constexpr int kRepeats = 5;

  std::printf("local-search throughput on WATERS (%zu comms at s0)\n",
              comms.comms_at_s0().size());
  std::printf("%-10s %-10s %10s %6s %12s %10s\n", "goal", "engine", "evals",
              "moves", "evals/sec", "speedup");

  double del_speedup = 0.0;
  for (const let::LocalSearchGoal goal :
       {let::LocalSearchGoal::kMinMaxLatencyRatio,
        let::LocalSearchGoal::kMinTransfers}) {
    const let::ScheduleResult start =
        goal == let::LocalSearchGoal::kMinTransfers
            ? let::GreedyScheduler::best_transfer_count(comms)
            : let::GreedyScheduler::best_latency_ratio(comms);
    const Sample ref = measure(comms, compiled, start, goal,
                               let::LocalSearchEngine::kReference, kRepeats);
    const Sample fast = measure(comms, compiled, start, goal,
                                let::LocalSearchEngine::kCompiled, kRepeats);

    // The equivalence gate: identical trajectories or the numbers are void.
    if (ref.result.evaluations != fast.result.evaluations ||
        ref.result.improvements != fast.result.improvements ||
        ref.result.objective != fast.result.objective) {
      std::fprintf(stderr,
                   "engines diverged under %s: reference %d/%d/%.17g vs "
                   "compiled %d/%d/%.17g\n",
                   goal_name(goal), ref.result.evaluations,
                   ref.result.improvements, ref.result.objective,
                   fast.result.evaluations, fast.result.improvements,
                   fast.result.objective);
      return 2;
    }

    const double speedup =
        ref.evals_per_sec > 0.0 ? fast.evals_per_sec / ref.evals_per_sec
                                : 0.0;
    if (goal == let::LocalSearchGoal::kMinMaxLatencyRatio) {
      del_speedup = speedup;
    }
    std::printf("%-10s %-10s %10d %6d %12.0f %10s\n", goal_name(goal),
                "reference", ref.result.evaluations, ref.result.improvements,
                ref.evals_per_sec, "1.0x");
    std::printf("%-10s %-10s %10d %6d %12.0f %9.1fx\n", goal_name(goal),
                "compiled", fast.result.evaluations, fast.result.improvements,
                fast.evals_per_sec, speedup);

    const std::string config =
        goal == let::LocalSearchGoal::kMinTransfers ? "waters-dmat"
                                                    : "waters-del";
    bench::append_metrics(
        "micro_localsearch", config,
        {{"evaluations", static_cast<std::int64_t>(ref.result.evaluations)},
         {"improvements",
          static_cast<std::int64_t>(ref.result.improvements)},
         {"objective", ref.result.objective},
         {"reference_evals_per_sec", ref.evals_per_sec},
         {"compiled_evals_per_sec", fast.evals_per_sec},
         {"speedup", speedup}});
  }

  bench::append_histogram_metrics("micro_localsearch");

  if (!baseline_path.empty()) {
    return bench::check_baseline(baseline_path, "speedup",
                                 "OBJ-DEL speedup", del_speedup);
  }
  return 0;
}
