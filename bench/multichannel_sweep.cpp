// Extension experiment (E9, future work in the paper): benefit of multiple
// DMA channels. The paper's protocol serializes every transfer on one
// engine; here the same optimized s0 transfer order is replayed on 1-4
// channels with causality-preserving list scheduling, reporting the
// makespan of the synchronous instant and the readiness time of each
// WATERS task.
#include <cstdio>

#include "bench_util.hpp"
#include "letdma/let/multichannel.hpp"

using namespace letdma;

int main() {
  const auto app = bench::waters_with_alpha(0.2);
  if (!app) {
    std::printf("sensitivity infeasible\n");
    return 1;
  }
  let::LetComms comms(*app);
  const engine::ScheduleOutcome out = bench::run_engine(
      comms, "greedy", engine::Objective::kMinMaxLatencyRatio, 5.0);
  if (!out.schedule) {
    std::printf("no valid greedy schedule (%s)\n",
                engine::status_name(out.status));
    return 1;
  }
  bench::append_engine_metrics("multichannel_sweep", "greedy", out);
  const let::ScheduleResult& g = *out.schedule;
  std::printf(
      "Multi-channel sweep on WATERS (greedy best-latency order, "
      "%zu transfers at s0)\n\n",
      g.s0_transfers.size());

  support::TextTable table({"channels", "s0 makespan", "DASM ready",
                            "PLAN ready", "LOC ready"});
  for (int channels = 1; channels <= 4; ++channels) {
    const let::MultiChannelReport r =
        schedule_on_channels(*app, g.s0_transfers, channels);
    auto ready = [&](const char* name) {
      const int id = app->find_task(name).value;
      const auto t = r.readiness[static_cast<std::size_t>(id)];
      return t > 0 ? support::format_time(t) : std::string("-");
    };
    table.add_row({std::to_string(channels),
                   support::format_time(r.makespan), ready("DASM"),
                   ready("PLAN"), ready("LOC")});
    bench::append_metrics(
        "multichannel_sweep", "channels=" + std::to_string(channels),
        {{"makespan", static_cast<double>(r.makespan)}});
  }
  std::printf("%s", table.render().c_str());
  bench::append_histogram_metrics("multichannel_sweep");
  std::printf(
      "\nnote: single-channel numbers equal the paper's sequential model "
      "by construction.\n");
  return 0;
}
