// Micro-benchmarks (E6) for the MILP substrate: simplex throughput on
// random dense LPs and branch & bound on knapsack instances.
//
// Modes:
//   ./micro_milp [google-benchmark flags]     run the harness
//   ./micro_milp --threads N ...              B&B benchmarks use N workers
//   ./micro_milp --check BASELINE             skip the harness; measure B&B
//       node throughput on the gate instance, emit metrics, and exit
//       non-zero when it regressed more than 20% below the committed
//       baseline (bench/baselines/milp_baseline.json).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "letdma/milp/solver.hpp"
#include "letdma/support/rng.hpp"

using namespace letdma;

namespace {

// B&B worker count for the benchmark and check paths (--threads /
// LETDMA_MILP_THREADS; 1 = the seed's sequential solver).
int g_bb_threads = 1;

milp::Model random_lp(int n, int m, std::uint64_t seed) {
  support::Rng rng(seed);
  milp::Model model;
  std::vector<milp::Var> vars;
  milp::LinExpr obj;
  for (int j = 0; j < n; ++j) {
    vars.push_back(model.add_continuous(0.0, 10.0, "x" + std::to_string(j)));
    obj += (rng.uniform() * 2.0 - 1.0) * vars.back();
  }
  for (int i = 0; i < m; ++i) {
    milp::LinExpr row;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.3)) row += (rng.uniform() * 4.0 - 2.0) * vars[j];
    }
    model.add_constraint(row, rng.chance(0.5) ? milp::Sense::kLe
                                              : milp::Sense::kGe,
                         rng.uniform() * 10.0, "r" + std::to_string(i));
  }
  model.set_objective(obj, milp::ObjSense::kMinimize);
  return model;
}

milp::Model knapsack(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  milp::Model model;
  milp::LinExpr weight, profit;
  for (int i = 0; i < n; ++i) {
    const milp::Var x = model.add_binary("x" + std::to_string(i));
    weight += static_cast<double>(rng.uniform_int(1, 20)) * x;
    profit += static_cast<double>(rng.uniform_int(1, 30)) * x;
  }
  model.add_constraint(weight, milp::Sense::kLe,
                       static_cast<double>(5 * n), "cap");
  model.set_objective(profit, milp::ObjSense::kMaximize);
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const milp::Model model = random_lp(n, n, 42);
  const milp::SimplexSolver solver(model);
  long iters = 0;
  for (auto _ : state) {
    const milp::LpResult r = solver.solve();
    benchmark::DoNotOptimize(r.objective);
    iters += r.iterations;
  }
  state.counters["simplex_iters"] =
      benchmark::Counter(static_cast<double>(iters),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SimplexRandomLp)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  long nodes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    milp::Model model = knapsack(n, 7);  // fresh model: lazy rows mutate it
    state.ResumeTiming();
    milp::MilpOptions opt;
    opt.time_limit_sec = 60;
    opt.threads = g_bb_threads;
    milp::MilpSolver solver(model, opt);
    const milp::MilpResult r = solver.solve();
    benchmark::DoNotOptimize(r.objective);
    nodes += r.stats.nodes_explored;
  }
  state.counters["bb_nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(10)->Arg(16)->Arg(22);

void BM_ModelBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const milp::Model m = random_lp(n, n, 3);
    benchmark::DoNotOptimize(m.num_constraints());
  }
}
BENCHMARK(BM_ModelBuild)->Arg(50)->Arg(200);

/// Strongly-correlated knapsack (profit = weight + 5, capacity = half the
/// total weight) — the classic hard family for branch & bound, so the gate
/// measures real tree search rather than a handful of root LPs.
milp::Model gate_knapsack(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  milp::Model model;
  milp::LinExpr weight, profit;
  double total_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    const double w = static_cast<double>(rng.uniform_int(1, 40));
    const milp::Var x = model.add_binary("x" + std::to_string(i));
    weight += w * x;
    profit += (w + 5.0) * x;
    total_weight += w;
  }
  model.add_constraint(weight, milp::Sense::kLe,
                       std::floor(total_weight / 2.0), "cap");
  model.set_objective(profit, milp::ObjSense::kMaximize);
  return model;
}

/// Nightly regression gate: branch-and-bound node throughput summed over a
/// fixed batch of knapsack instances, repeat-and-best to filter scheduler
/// noise. The total node count is deterministic for the sequential solver,
/// so nodes/sec moves only when the solver itself got slower (or faster).
int run_check(const std::string& baseline_path) {
  using Clock = std::chrono::steady_clock;
  constexpr int kSize = 30;
  constexpr int kSeeds = 10;
  constexpr int kRepeats = 5;
  long nodes = -1;
  double best_sec = 1e300;
  for (int r = 0; r < kRepeats + 1; ++r) {  // first run is warm-up
    long total_nodes = 0;
    double sec = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      milp::Model model = gate_knapsack(kSize, seed);
      milp::MilpOptions opt;
      opt.time_limit_sec = 60;
      opt.threads = g_bb_threads;
      milp::MilpSolver solver(model, opt);
      const auto t0 = Clock::now();
      const milp::MilpResult res = solver.solve();
      sec += std::chrono::duration<double>(Clock::now() - t0).count();
      if (res.status != milp::MilpStatus::kOptimal) {
        std::fprintf(stderr, "gate instance seed=%d did not solve\n", seed);
        return 2;
      }
      total_nodes += res.stats.nodes_explored;
    }
    if (r == 0) continue;
    if (nodes >= 0 && total_nodes != nodes && g_bb_threads == 1) {
      std::fprintf(stderr, "non-deterministic node count: %ld vs %ld\n",
                   total_nodes, nodes);
      return 2;
    }
    nodes = total_nodes;
    best_sec = std::min(best_sec, sec);
  }
  const double nodes_per_sec =
      best_sec > 0.0 ? static_cast<double>(nodes) / best_sec : 0.0;
  std::printf("knapsack(%d) x %d seeds: %ld nodes in %.3fs best-of-%d = "
              "%.0f nodes/sec (%d thread%s)\n",
              kSize, kSeeds, nodes, best_sec, kRepeats, nodes_per_sec,
              g_bb_threads, g_bb_threads == 1 ? "" : "s");
  bench::append_metrics(
      "micro_milp", "knapsack-gate",
      {{"nodes", static_cast<std::int64_t>(nodes)},
       {"best_sec", best_sec},
       {"nodes_per_sec", nodes_per_sec},
       {"threads", static_cast<std::int64_t>(g_bb_threads)}});
  bench::append_histogram_metrics("micro_milp");

  return bench::check_baseline(baseline_path, "nodes_per_sec", "nodes/sec",
                               nodes_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  g_bb_threads = bench::milp_threads();
  std::string baseline_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_bb_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!baseline_path.empty()) return run_check(baseline_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
