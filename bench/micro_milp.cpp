// Micro-benchmarks (E6) for the MILP substrate: simplex throughput on
// random dense LPs and branch & bound on knapsack instances.
#include <benchmark/benchmark.h>

#include "letdma/milp/solver.hpp"
#include "letdma/support/rng.hpp"

using namespace letdma;

namespace {

milp::Model random_lp(int n, int m, std::uint64_t seed) {
  support::Rng rng(seed);
  milp::Model model;
  std::vector<milp::Var> vars;
  milp::LinExpr obj;
  for (int j = 0; j < n; ++j) {
    vars.push_back(model.add_continuous(0.0, 10.0, "x" + std::to_string(j)));
    obj += (rng.uniform() * 2.0 - 1.0) * vars.back();
  }
  for (int i = 0; i < m; ++i) {
    milp::LinExpr row;
    for (int j = 0; j < n; ++j) {
      if (rng.chance(0.3)) row += (rng.uniform() * 4.0 - 2.0) * vars[j];
    }
    model.add_constraint(row, rng.chance(0.5) ? milp::Sense::kLe
                                              : milp::Sense::kGe,
                         rng.uniform() * 10.0, "r" + std::to_string(i));
  }
  model.set_objective(obj, milp::ObjSense::kMinimize);
  return model;
}

milp::Model knapsack(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  milp::Model model;
  milp::LinExpr weight, profit;
  for (int i = 0; i < n; ++i) {
    const milp::Var x = model.add_binary("x" + std::to_string(i));
    weight += static_cast<double>(rng.uniform_int(1, 20)) * x;
    profit += static_cast<double>(rng.uniform_int(1, 30)) * x;
  }
  model.add_constraint(weight, milp::Sense::kLe,
                       static_cast<double>(5 * n), "cap");
  model.set_objective(profit, milp::ObjSense::kMaximize);
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const milp::Model model = random_lp(n, n, 42);
  const milp::SimplexSolver solver(model);
  long iters = 0;
  for (auto _ : state) {
    const milp::LpResult r = solver.solve();
    benchmark::DoNotOptimize(r.objective);
    iters += r.iterations;
  }
  state.counters["simplex_iters"] =
      benchmark::Counter(static_cast<double>(iters),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SimplexRandomLp)->Arg(20)->Arg(50)->Arg(100)->Arg(200);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  long nodes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    milp::Model model = knapsack(n, 7);  // fresh model: lazy rows mutate it
    state.ResumeTiming();
    milp::MilpOptions opt;
    opt.time_limit_sec = 60;
    milp::MilpSolver solver(model, opt);
    const milp::MilpResult r = solver.solve();
    benchmark::DoNotOptimize(r.objective);
    nodes += r.stats.nodes_explored;
  }
  state.counters["bb_nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(10)->Arg(16)->Arg(22);

void BM_ModelBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const milp::Model m = random_lp(n, n, 3);
    benchmark::DoNotOptimize(m.num_constraints());
  }
}
BENCHMARK(BM_ModelBuild)->Arg(50)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
