// Reproduces Fig. 1 (insets b/c): the schedule of LET communications for
// the six-task, two-core example under the proposed protocol versus the
// original Giotto ordering, with the resulting per-task readiness times.
//
// The load-bearing observation of the figure: the latency-sensitive task
// (tau2 here) becomes ready after a small prefix of the transfer sequence
// under the proposed protocol, but only at the very end under Giotto.
#include <cstdio>
#include <memory>

#include "letdma/baseline/giotto.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/support/table.hpp"

using namespace letdma;

namespace {

std::unique_ptr<model::Application> make_fig1() {
  auto app = std::make_unique<model::Application>(model::Platform(2));
  const auto t1 = app->add_task("tau1", support::ms(10), support::ms(2),
                                model::CoreId{0});
  const auto t3 = app->add_task("tau3", support::ms(20), support::ms(4),
                                model::CoreId{0});
  const auto t5 = app->add_task("tau5", support::ms(40), support::ms(8),
                                model::CoreId{0});
  const auto t2 = app->add_task("tau2", support::ms(5), support::ms(1),
                                model::CoreId{1});
  const auto t4 = app->add_task("tau4", support::ms(20), support::ms(4),
                                model::CoreId{1});
  const auto t6 = app->add_task("tau6", support::ms(40), support::ms(8),
                                model::CoreId{1});
  app->add_label("lA", 2000, t1, {t2});
  app->add_label("lB", 4000, t3, {t4});
  app->add_label("lC", 8000, t5, {t6});
  app->add_label("lD", 1000, t2, {t1});
  app->add_label("lE", 3000, t4, {t3});
  app->add_label("lF", 6000, t6, {t5});
  app->finalize();
  return app;
}

}  // namespace

int main() {
  const auto app = make_fig1();
  let::LetComms comms(*app);

  let::MilpSchedulerOptions opt;
  opt.objective = let::MilpObjective::kMinLatencyRatio;
  opt.solver.time_limit_sec = 20;
  const auto ours = let::MilpScheduler(comms, opt).solve();
  if (!ours.feasible()) {
    std::printf("no schedule found\n");
    return 1;
  }
  const auto giotto = baseline::giotto_dma_a(comms);

  const auto ours_lat = let::worst_case_latencies(
      comms, ours.schedule->schedule, let::ReadinessSemantics::kProposed);
  const auto giotto_lat = baseline::giotto_dma_latencies(comms, giotto);

  std::printf("Fig. 1 reproduction: readiness times at s0\n\n");
  support::TextTable table(
      {"task", "proposed (b)", "Giotto (c)", "improvement"});
  for (int i = 0; i < app->num_tasks(); ++i) {
    const double imp =
        giotto_lat.at(i) > 0
            ? 100.0 * (1.0 - static_cast<double>(ours_lat.at(i)) /
                                 static_cast<double>(giotto_lat.at(i)))
            : 0.0;
    table.add_row({app->task(model::TaskId{i}).name,
                   support::format_time(ours_lat.at(i)),
                   support::format_time(giotto_lat.at(i)),
                   support::fmt_double(imp, 1) + " %"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nproposed transfer order:");
  for (const auto& t : ours.schedule->s0_transfers) {
    std::printf(" [");
    for (std::size_t i = 0; i < t.comms.size(); ++i) {
      std::printf("%s%s", i ? " " : "",
                  let::to_string(*app, t.comms[i]).c_str());
    }
    std::printf("]");
  }
  std::printf("\n");
  return 0;
}
