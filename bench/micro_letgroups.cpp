// Micro-benchmarks (E6) for the LET machinery: communication-calendar
// construction (Algorithm 1 over the hyperperiod), greedy scheduling, and
// full-schedule validation, on synthetic task chains of growing size.
#include <benchmark/benchmark.h>

#include <memory>

#include "letdma/let/compiled.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/support/rng.hpp"

using namespace letdma;

namespace {

/// A chain of n tasks across `cores` cores with harmonic-ish periods; each
/// task feeds the next.
std::unique_ptr<model::Application> make_chain(int n, int cores,
                                               std::uint64_t seed) {
  support::Rng rng(seed);
  auto app = std::make_unique<model::Application>(model::Platform(cores));
  const support::Time periods[] = {support::ms(5), support::ms(10),
                                   support::ms(20), support::ms(40)};
  std::vector<model::TaskId> ids;
  for (int i = 0; i < n; ++i) {
    const support::Time t =
        periods[rng.uniform_int(0, 3)];
    ids.push_back(app->add_task("t" + std::to_string(i), t, t / 10,
                                model::CoreId{i % cores}));
  }
  for (int i = 0; i + 1 < n; ++i) {
    app->add_label("l" + std::to_string(i),
                   rng.uniform_int(256, 8192), ids[static_cast<std::size_t>(i)],
                   {ids[static_cast<std::size_t>(i + 1)]});
  }
  app->finalize();
  return app;
}

void BM_LetCalendar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto app = make_chain(n, 4, 11);
  for (auto _ : state) {
    let::LetComms comms(*app);
    benchmark::DoNotOptimize(comms.comms_at_s0().size());
  }
}
BENCHMARK(BM_LetCalendar)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_GreedyBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto app = make_chain(n, 4, 11);
  const let::LetComms comms(*app);
  for (auto _ : state) {
    const let::ScheduleResult r = let::GreedyScheduler(comms).build();
    benchmark::DoNotOptimize(r.s0_transfers.size());
  }
}
BENCHMARK(BM_GreedyBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_ValidateSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto app = make_chain(n, 4, 11);
  const let::LetComms comms(*app);
  const let::ScheduleResult r = let::GreedyScheduler(comms).build();
  for (auto _ : state) {
    const let::ValidationReport rep =
        validate_schedule(comms, r.layout, r.schedule);
    benchmark::DoNotOptimize(rep.ok());
  }
}
BENCHMARK(BM_ValidateSchedule)->Arg(8)->Arg(16)->Arg(32);

void BM_WorstCaseLatencies(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto app = make_chain(n, 4, 11);
  const let::LetComms comms(*app);
  const let::ScheduleResult r = let::GreedyScheduler(comms).build();
  for (auto _ : state) {
    const auto wc = let::worst_case_latencies(
        comms, r.schedule, let::ReadinessSemantics::kProposed);
    benchmark::DoNotOptimize(wc.size());
  }
}
BENCHMARK(BM_WorstCaseLatencies)->Arg(8)->Arg(32);

// One-time cost of flattening a calendar into the compiled instance —
// the build the local search and the engine adapters amortize over every
// candidate evaluation.
void BM_CompiledBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto app = make_chain(n, 4, 11);
  const let::LetComms comms(*app);
  for (auto _ : state) {
    const let::CompiledComms compiled(comms);
    benchmark::DoNotOptimize(compiled.num_comms());
  }
}
BENCHMARK(BM_CompiledBuild)->Arg(8)->Arg(16)->Arg(32);

// The compiled instant-class sweep against BM_WorstCaseLatencies' from-
// scratch path on the same schedule: the per-candidate objective cost
// inside the delta evaluator.
void BM_CompiledSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto app = make_chain(n, 4, 11);
  const let::LetComms comms(*app);
  const let::CompiledComms compiled(comms);
  const let::ScheduleResult r = let::GreedyScheduler(comms).build();
  for (auto _ : state) {
    const auto wc = compiled.sweep_worst_case(r.s0_transfers);
    benchmark::DoNotOptimize(wc.size());
  }
}
BENCHMARK(BM_CompiledSweep)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
