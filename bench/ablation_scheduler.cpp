// Ablation (E5): how much of the benefit comes from each design choice?
//
//   * greedy strategy (urgency-first vs write-batched vs read-batched);
//   * MILP refinement on top of the best greedy warm start;
//   * pattern-chain merging (measured by the transfer count vs the
//     one-transfer-per-copy baseline);
//   * eager vs lazy Constraint-6 generation (model size and solve time, on
//     the small Fig.1-scale instance where eager is tractable).
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "letdma/let/local_search.hpp"

using namespace letdma;

namespace {

std::unique_ptr<model::Application> make_small() {
  auto app = std::make_unique<model::Application>(model::Platform(2));
  const auto t1 = app->add_task("tau1", support::ms(10), support::ms(2),
                                model::CoreId{0});
  const auto t2 = app->add_task("tau2", support::ms(5), support::ms(1),
                                model::CoreId{1});
  const auto t3 = app->add_task("tau3", support::ms(20), support::ms(4),
                                model::CoreId{0});
  app->add_label("x", 2000, t1, {t2});
  app->add_label("y", 1000, t2, {t1, t3});
  app->add_label("z", 4000, t3, {t2});
  app->finalize();
  return app;
}

}  // namespace

int main() {
  const double timeout = bench::milp_timeout_sec(30.0);
  const auto app = bench::waters_with_alpha(0.2);
  if (!app) {
    std::printf("sensitivity infeasible\n");
    return 1;
  }
  let::LetComms comms(*app);

  std::printf("Scheduler ablation on WATERS (alpha = 0.2)\n\n");
  support::TextTable table(
      {"configuration", "transfers", "max lambda/T", "valid"});
  auto add = [&](const std::string& name, const let::ScheduleResult& r) {
    const auto report = validate_schedule(comms, r.layout, r.schedule);
    const auto wc = let::worst_case_latencies(
        comms, r.schedule, let::ReadinessSemantics::kProposed);
    table.add_row({name, std::to_string(r.s0_transfers.size()),
                   support::fmt_double(bench::max_latency_ratio(*app, wc), 4),
                   report.ok() ? "yes" : "NO"});
  };

  add("Giotto-DMA-A (one transfer per copy)", baseline::giotto_dma_a(comms));
  add("greedy / urgency-first",
      let::GreedyScheduler(comms, {let::GreedyStrategy::kUrgencyFirst})
          .build());
  add("greedy / write-batched",
      let::GreedyScheduler(comms, {let::GreedyStrategy::kWriteBatched})
          .build());
  add("greedy / read-batched",
      let::GreedyScheduler(comms, {let::GreedyStrategy::kReadBatched})
          .build());
  {
    let::LocalSearchOptions ls;
    ls.goal = let::LocalSearchGoal::kMinMaxLatencyRatio;
    add("greedy + local search (latency)",
        improve_schedule(comms, let::GreedyScheduler::best_latency_ratio(comms),
                         ls)
            .schedule);
    ls.goal = let::LocalSearchGoal::kMinTransfers;
    add("greedy + local search (transfers)",
        improve_schedule(comms,
                         let::GreedyScheduler::best_transfer_count(comms), ls)
            .schedule);
  }

  for (const let::MilpObjective obj : {let::MilpObjective::kMinTransfers,
                                       let::MilpObjective::kMinLatencyRatio}) {
    let::MilpSchedulerOptions opt;
    opt.objective = obj;
    opt.solver.time_limit_sec = timeout;
    const auto r = let::MilpScheduler(comms, opt).solve();
    bench::append_milp_metrics("ablation_scheduler",
                               bench::objective_name(obj), r);
    if (r.feasible()) {
      add(std::string("MILP / ") + bench::objective_name(obj),
          *r.schedule);
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Eager vs lazy Constraint 6 on a small instance.
  std::printf("Constraint-6 generation (small 3-task instance):\n\n");
  support::TextTable c6({"mode", "model vars", "model rows", "solve time",
                         "status"});
  const auto small = make_small();
  let::LetComms small_comms(*small);
  for (const bool eager : {false, true}) {
    let::MilpSchedulerOptions opt;
    opt.objective = let::MilpObjective::kMinTransfers;
    opt.solver.time_limit_sec = 20;
    opt.eager_contiguity = eager;
    let::MilpScheduler milp(small_comms, opt);
    const int vars = milp.model_vars();
    const int rows = milp.model_rows();
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = milp.solve();
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    c6.add_row({eager ? "eager" : "lazy", std::to_string(vars),
                std::to_string(rows), support::fmt_double(sec, 2) + " s",
                bench::status_name(r.status)});
  }
  std::printf("%s", c6.render().c_str());
  return 0;
}
