// Reproduces the alpha sweep of Section VII: acquisition deadlines are set
// to gamma_i = alpha * S_i for alpha in {0.1 ... 0.5} and the feasibility
// of the whole pipeline (sensitivity RTA + MILP) is reported.
//
// In the paper's instance alpha = 0.1 was infeasible. The exact
// feasibility frontier depends on WCETs and label sizes that the public
// challenge material does not pin down (see DESIGN.md); the second sweep
// below scales the label sizes to expose the same frontier mechanism:
// larger payloads (or tighter gammas) eventually make the configuration
// infeasible through Constraint 9 / Property 3.
//
// Each point runs the engine's MILP adapter under NO-OBJ, so the outcome
// vocabulary (optimal / feasible / infeasible / timeout) matches the rest
// of the engine-based harnesses.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

using namespace letdma;

namespace {

std::string run_one(double alpha, double label_scale, double timeout,
                    int* transfers) {
  waters::WatersOptions wopt;
  wopt.label_scale = label_scale;
  auto app = waters::make_waters_app(wopt);
  const auto sens = analysis::acquisition_deadlines(*app, alpha);
  if (!sens.feasible) return "infeasible (sensitivity RTA)";
  analysis::apply_acquisition_deadlines(*app, sens.gamma);
  let::LetComms comms(*app);
  const engine::ScheduleOutcome out = bench::run_engine(
      comms, "milp", engine::Objective::kFeasibility, timeout);
  if (out.schedule) {
    *transfers = static_cast<int>(out.schedule->s0_transfers.size());
  }
  bench::append_engine_metrics("alpha_sensitivity",
                               "alpha=" + support::fmt_double(alpha, 1) +
                                   ",scale=" +
                                   support::fmt_double(label_scale, 0),
                               out);
  return engine::status_name(out.status);
}

}  // namespace

int main() {
  const double timeout = bench::milp_timeout_sec(20.0);
  std::printf("alpha sensitivity sweep (NO-OBJ, %.0fs budget per run)\n\n",
              timeout);

  support::TextTable alpha_table({"alpha", "outcome", "# DMA transfers"});
  for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    int transfers = 0;
    const std::string outcome = run_one(alpha, 1.0, timeout, &transfers);
    alpha_table.add_row({support::fmt_double(alpha, 1), outcome,
                         transfers > 0 ? std::to_string(transfers) : "-"});
  }
  std::printf("%s\n", alpha_table.render().c_str());

  std::printf(
      "label-size scaling at alpha = 0.1 (feasibility frontier "
      "mechanism):\n\n");
  support::TextTable scale_table({"label scale", "outcome",
                                  "# DMA transfers"});
  for (const double scale : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    int transfers = 0;
    const std::string outcome = run_one(0.1, scale, timeout, &transfers);
    scale_table.add_row({support::fmt_double(scale, 0), outcome,
                         transfers > 0 ? std::to_string(transfers) : "-"});
  }
  std::printf("%s", scale_table.render().c_str());
  return 0;
}
