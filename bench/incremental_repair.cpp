// incremental_repair — repair-vs-cold re-solve latency on a WATERS diff
// stream (the incremental re-scheduling acceptance bench).
//
// One cold solve of the WATERS case study seeds the "previous" schedule;
// the bench then replays seeded k-label perturbations (k in {1,2,3,5,8},
// bench::perturb_labels) and, per diff, times a cold re-solve through the
// supervised chain against the IncrementalScheduler warm-started from the
// previous schedule + model::diff. Every served repair is independently
// re-certified here (engine::certify_outcome) and printed with its
// certificate, so the CI chaos job can grep "certificate: CERTIFIED" /
// "ALL CERTIFIED"; LETDMA_FAULTS in the environment arms the guard fault
// injector first.
//
//   incremental_repair [--reps n] [--budget-ms ms] [--seed s]
//                      [--check <baseline.json>]
//
// Gates (process exit 1 on violation):
//   * every response certified;
//   * on small diffs (k <= 5) the repaired objective is <= the cold
//     re-solve's (bit-identical quality or better);
//   * p99 repair latency under one WATERS hyperperiod;
//   * with --check, repairs_per_sec >= 0.8x the committed baseline
//     (bench/baselines/incremental_baseline.json — which also records the
//     latency-vs-change-magnitude curve).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "letdma/engine/incremental.hpp"
#include "letdma/guard/faults.hpp"
#include "letdma/model/diff.hpp"

using namespace letdma;

namespace {

struct Args {
  int reps = 8;
  double budget_ms = 400.0;
  std::uint64_t seed = 42;
  std::string baseline_path;
};

int usage() {
  std::fprintf(stderr,
               "usage: incremental_repair [--reps n] [--budget-ms ms]"
               " [--seed s] [--check <baseline.json>]\n");
  return 2;
}

double pct(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t at = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(at, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto value = [&](std::string* dst) {
      if (a + 1 >= argc) return false;
      *dst = argv[++a];
      return true;
    };
    std::string v;
    if (arg == "--reps") {
      if (!value(&v)) return usage();
      args.reps = std::atoi(v.c_str());
    } else if (arg == "--budget-ms") {
      if (!value(&v)) return usage();
      args.budget_ms = std::atof(v.c_str());
    } else if (arg == "--seed") {
      if (!value(&v)) return usage();
      args.seed = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else if (arg == "--check") {
      if (!value(&args.baseline_path)) return usage();
    } else {
      return usage();
    }
  }
  if (args.reps <= 0 || args.budget_ms <= 0) return usage();
  try {
    if (guard::arm_from_env()) {
      std::fprintf(
          stderr, "incremental_repair: fault injector armed from"
                  " LETDMA_FAULTS\n");
    }
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const double budget_sec = args.budget_ms / 1000.0;
  const engine::Objective objective = engine::Objective::kMinMaxLatencyRatio;
  engine::GuardOptions guard_options;
  guard_options.objective = objective;
  // The serving chain's cheap end: the bench measures re-scheduling, not
  // MILP solve times (table1_milp owns those).
  guard_options.chain = {"ls", "greedy", "giotto"};

  // --- previous state: one cold solve of the unperturbed case study ---------
  const auto base = waters::make_waters_app();
  const let::LetComms base_comms(*base);
  const auto [base_outcome, base_record] =
      engine::solve_supervised(base_comms, guard_options, budget_sec);
  if (!base_outcome.feasible()) {
    std::fprintf(stderr, "FAIL: base WATERS solve infeasible\n");
    return 1;
  }
  const let::ScheduleResult prev = *base_outcome.schedule;
  const double hyperperiod_ms =
      static_cast<double>(base->hyperperiod()) / 1e6;
  std::printf("incremental_repair: WATERS base solved (%s, obj %.4f), "
              "hyperperiod %.1f ms, %d reps per k, %.0f ms budget\n",
              base_outcome.strategy.c_str(), base_outcome.objective,
              hyperperiod_ms, args.reps, args.budget_ms);

  engine::IncrementalOptions inc_options;
  inc_options.objective = objective;
  inc_options.guard = guard_options;
  engine::IncrementalScheduler incremental(inc_options);

  const std::vector<int> ks = {1, 2, 3, 5, 8};
  std::mt19937_64 rng(args.seed);
  std::vector<double> all_repair_ms;
  double repair_wall_total_sec = 0.0;
  int repairs = 0, quality_violations = 0;
  bool all_certified = true;
  struct Row {
    int k = 0;
    double magnitude = 0.0;
    double repair_p50 = 0.0, repair_p99 = 0.0, cold_p50 = 0.0;
    int served_by_repair = 0;
  };
  std::vector<Row> rows;

  for (const int k : ks) {
    std::vector<double> repair_ms, cold_ms;
    double magnitude_sum = 0.0;
    int served_by_repair = 0;
    for (int rep = 0; rep < args.reps; ++rep) {
      const auto after = bench::perturb_labels(*base, k, rng);
      const model::ApplicationDiff d = model::diff(*base, *after);
      magnitude_sum += model::magnitude(d);
      const let::LetComms comms(*after);

      const auto cold_t0 = std::chrono::steady_clock::now();
      const auto [cold, cold_record] =
          engine::solve_supervised(comms, guard_options, budget_sec);
      cold_ms.push_back(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - cold_t0)
                            .count() *
                        1e3);
      if (!cold.feasible()) {
        std::fprintf(stderr, "FAIL: cold re-solve infeasible (k=%d rep=%d)\n",
                     k, rep);
        return 1;
      }

      engine::SharedIncumbent sink;
      engine::WarmStart warm;
      warm.schedule = &prev;
      warm.diff = &d;
      const auto warm_t0 = std::chrono::steady_clock::now();
      const engine::ScheduleOutcome repaired =
          incremental.solve(comms, engine::Budget{budget_sec}, sink, warm);
      const double warm_ms =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        warm_t0)
              .count() *
          1e3;
      repair_ms.push_back(warm_ms);
      all_repair_ms.push_back(warm_ms);
      repair_wall_total_sec += warm_ms / 1e3;
      ++repairs;
      if (incremental.last_record().repair_served) ++served_by_repair;

      // Independent re-certification: the engine already gated the result,
      // but the bench is the acceptance harness, so it checks again.
      const guard::Certificate cert =
          engine::certify_outcome(comms, repaired, objective);
      const bool ok = repaired.feasible() && cert.certified();
      all_certified = all_certified && ok;
      std::printf("repair k=%d rep=%d: %7.2f ms (cold %7.2f ms), obj %.4f"
                  " vs cold %.4f, strategy %s, certificate: %s\n",
                  k, rep, warm_ms, cold_ms.back(), repaired.objective,
                  cold.objective, repaired.strategy.c_str(),
                  ok ? "CERTIFIED" : "REJECTED");
      if (!ok) continue;
      if (k <= 5 && repaired.objective > cold.objective + 1e-9) {
        ++quality_violations;
        std::fprintf(stderr,
                     "FAIL: k=%d rep=%d repaired obj %.6f worse than cold"
                     " %.6f\n",
                     k, rep, repaired.objective, cold.objective);
      }
    }
    Row row;
    row.k = k;
    row.magnitude = magnitude_sum / args.reps;
    row.repair_p50 = pct(repair_ms, 0.5);
    row.repair_p99 = pct(repair_ms, 0.99);
    row.cold_p50 = pct(cold_ms, 0.5);
    row.served_by_repair = served_by_repair;
    rows.push_back(row);
  }

  std::printf("\n  k  magnitude  repair p50   repair p99     cold p50  "
              "speedup  via-repair\n");
  for (const Row& r : rows) {
    std::printf("%3d   %8.2f  %8.2f ms  %8.2f ms  %8.2f ms   %5.1fx  "
                "%5d/%d\n",
                r.k, r.magnitude, r.repair_p50, r.repair_p99, r.cold_p50,
                r.repair_p50 > 0 ? r.cold_p50 / r.repair_p50 : 0.0,
                r.served_by_repair, args.reps);
    bench::append_metrics(
        "incremental_repair", "k=" + std::to_string(r.k),
        {{"k", static_cast<std::int64_t>(r.k)},
         {"magnitude", r.magnitude},
         {"repair_p50_ms", r.repair_p50},
         {"repair_p99_ms", r.repair_p99},
         {"cold_p50_ms", r.cold_p50},
         {"served_by_repair", static_cast<std::int64_t>(r.served_by_repair)},
         {"reps", static_cast<std::int64_t>(args.reps)}});
  }
  const double p99_ms = pct(all_repair_ms, 0.99);
  const double repairs_per_sec =
      repair_wall_total_sec > 0
          ? static_cast<double>(repairs) / repair_wall_total_sec
          : 0.0;
  int served_total = 0;
  for (const Row& r : rows) served_total += r.served_by_repair;
  std::printf("\n%d repairs, %d served by the repair path; p99 %.2f ms vs "
              "hyperperiod %.1f ms; %.1f repairs/s\n",
              repairs, served_total, p99_ms, hyperperiod_ms, repairs_per_sec);
  bench::append_metrics(
      "incremental_repair", "summary",
      {{"repairs", static_cast<std::int64_t>(repairs)},
       {"p99_ms", p99_ms},
       {"hyperperiod_ms", hyperperiod_ms},
       {"repairs_per_sec", repairs_per_sec},
       {"quality_violations", static_cast<std::int64_t>(quality_violations)}});
  bench::append_histogram_metrics("incremental_repair");

  if (!all_certified) {
    std::fprintf(stderr, "FAIL: uncertified response served\n");
    return 1;
  }
  std::printf("ALL CERTIFIED\n");
  if (quality_violations > 0) return 1;
  if (p99_ms >= hyperperiod_ms) {
    std::fprintf(stderr, "FAIL: p99 repair %.2f ms >= hyperperiod %.1f ms\n",
                 p99_ms, hyperperiod_ms);
    return 1;
  }
  if (!args.baseline_path.empty()) {
    return bench::check_baseline(args.baseline_path, "repairs_per_sec",
                                 "incremental repair throughput",
                                 repairs_per_sec);
  }
  return 0;
}
