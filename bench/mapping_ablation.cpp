// Ablation (ours): sensitivity of the WATERS case study to the task
// mapping. The amount of inter-core traffic — and therefore the benefit of
// the DMA protocol — depends on how the pipeline is partitioned; fewer
// cores fold more producer/consumer pairs onto the same core (double
// buffering, no DMA), more cores externalize more labels.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "letdma/model/mapping.hpp"

using namespace letdma;

int main() {
  std::printf("WATERS mapping ablation (greedy best-latency schedules)\n\n");
  support::TextTable table({"cores", "inter-core labels", "comms at s0",
                            "transfers", "total s0 bytes",
                            "max lambda/T (ours)",
                            "max lambda/T (Giotto-CPU)"});
  for (const int cores : {2, 3, 4}) {
    waters::WatersOptions wopt;
    wopt.num_cores = cores;
    const auto app = waters::make_waters_app(wopt);
    let::LetComms comms(*app);
    if (comms.comms_at_s0().empty()) continue;
    const let::ScheduleResult g =
        let::GreedyScheduler::best_latency_ratio(comms);
    std::int64_t bytes = 0;
    for (const let::DmaTransfer& t : g.s0_transfers) bytes += t.bytes;
    std::set<int> labels;
    for (const let::Communication& c : comms.comms_at_s0()) {
      labels.insert(c.label.value);
    }
    const auto ours = let::worst_case_latencies(
        comms, g.schedule, let::ReadinessSemantics::kProposed);
    const auto cpu = baseline::giotto_cpu_latencies(comms);
    auto ratio = [&](const std::vector<support::Time>& wc) {
      return bench::max_latency_ratio(*app, wc);
    };
    table.add_row({std::to_string(cores), std::to_string(labels.size()),
                   std::to_string(comms.comms_at_s0().size()),
                   std::to_string(g.s0_transfers.size()),
                   std::to_string(bytes),
                   support::fmt_double(ratio(ours), 4),
                   support::fmt_double(ratio(cpu), 4)});
  }
  std::printf("%s", table.render().c_str());

  // Traffic-minimizing remap of the 4-core variant (utilization cap 0.7):
  // how much DMA payload can a deployment-time optimizer remove?
  const auto app = waters::make_waters_app();
  const std::int64_t before = model::inter_core_bytes(*app);
  model::MappingSearchOptions mopt;
  mopt.max_core_utilization = 0.7;
  const model::MappingSearchResult r =
      model::minimize_inter_core_traffic(*app, mopt);
  std::printf(
      "\ntraffic-minimizing remap (cap 0.7): %lld -> %lld inter-core bytes "
      "(%d moves)\n",
      static_cast<long long>(before), static_cast<long long>(r.bytes),
      r.moves);
  return 0;
}
