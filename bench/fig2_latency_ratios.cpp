// Reproduces Fig. 2: ratios between the data-acquisition latency lambda_i
// of the proposed approach and each baseline (Giotto-CPU, Giotto-DMA-A,
// Giotto-DMA-B) for the nine WATERS 2019 tasks, under six configurations:
// alpha in {0.2, 0.4} x objective in {NO-OBJ, OBJ-DMAT, OBJ-DEL}.
//
// Values < 1 mean the proposed approach is faster; the paper reports
// improvements up to 98% (ratio 0.02) for short-period tasks vs Giotto-CPU.
#include <cstdio>

#include "bench_util.hpp"

using namespace letdma;

int main() {
  const double timeout = bench::milp_timeout_sec();
  std::printf(
      "Fig. 2 reproduction: lambda ratios (proposed / baseline), "
      "MILP budget %.0fs per configuration\n\n",
      timeout);

  int inset = 0;
  const char* inset_names[] = {"(a)", "(b)", "(c)", "(d)", "(e)", "(f)"};
  for (const double alpha : {0.2, 0.4}) {
    for (const let::MilpObjective obj :
         {let::MilpObjective::kNone, let::MilpObjective::kMinTransfers,
          let::MilpObjective::kMinLatencyRatio}) {
      const auto app = bench::waters_with_alpha(alpha);
      if (!app) {
        std::printf("alpha=%.1f: sensitivity infeasible\n", alpha);
        continue;
      }
      let::LetComms comms(*app);
      let::MilpSchedulerOptions opt;
      opt.objective = obj;
      opt.solver.time_limit_sec = timeout;
      let::MilpScheduler milp(comms, opt);
      const auto ours = milp.solve();
      bench::append_milp_metrics(
          "fig2_latency_ratios",
          std::string(bench::objective_name(obj)) + "/alpha=" +
              support::fmt_double(alpha, 1),
          ours);
      std::printf("Fig.2 %s  alpha=%.1f  %s  [%s, %.1fs, %d transfers]\n",
                  inset_names[inset++], alpha, bench::objective_name(obj),
                  bench::status_name(ours.status), ours.stats.wall_sec,
                  ours.dma_transfers_at_s0);
      if (!ours.feasible()) continue;

      const auto report = let::validate_schedule(
          comms, ours.schedule->layout, ours.schedule->schedule);
      if (!report.ok()) {
        std::printf("  INVALID schedule: %s\n", report.summary().c_str());
        continue;
      }

      const auto ours_lat = let::worst_case_latencies(
          comms, ours.schedule->schedule, let::ReadinessSemantics::kProposed);
      const auto cpu = baseline::giotto_cpu_latencies(comms);
      const auto a_sched = baseline::giotto_dma_a(comms);
      const auto a_lat = baseline::giotto_dma_latencies(comms, a_sched);
      const auto b_sched = baseline::giotto_dma_b(comms,
                                                  ours.schedule->layout);
      const auto b_lat = baseline::giotto_dma_latencies(comms, b_sched);

      support::TextTable table({"task", "vs Giotto-CPU", "vs Giotto-DMA-A",
                                "vs Giotto-DMA-B"});
      auto ratio = [](support::Time num, support::Time den) {
        return den > 0 ? support::fmt_double(
                             static_cast<double>(num) /
                                 static_cast<double>(den),
                             3)
                       : std::string("-");
      };
      for (const std::string& name : waters::task_names()) {
        const int id = app->find_task(name).value;
        table.add_row({name, ratio(ours_lat.at(id), cpu.at(id)),
                       ratio(ours_lat.at(id), a_lat.at(id)),
                       ratio(ours_lat.at(id), b_lat.at(id))});
      }
      std::printf("%s\n", table.render().c_str());
    }
  }
  return 0;
}
