// Ablation (ours): the latency / transfer-count trade-off discussed in
// Section VI. Capping the number of transfer indices G forces coarser
// groupings: fewer transfers mean fewer per-transfer overheads for the
// LAST consumer but coarser-grained readiness for everyone else. The sweep
// exposes the Pareto front between max lambda_i/T_i and the transfer count
// on the WATERS case study.
#include <cstdio>

#include "bench_util.hpp"
#include "letdma/let/local_search.hpp"

using namespace letdma;


int main() {
  const double timeout = bench::milp_timeout_sec(20.0);
  const auto app = bench::waters_with_alpha(0.2);
  if (!app) {
    std::printf("sensitivity infeasible\n");
    return 1;
  }
  let::LetComms comms(*app);
  std::printf(
      "Latency/transfer-count trade-off on WATERS (alpha = 0.2, "
      "%.0fs MILP budget per point)\n\n",
      timeout);
  support::TextTable table({"max transfers G", "status", "transfers used",
                            "max lambda/T"});
  for (const int cap : {17, 14, 12, 10, 8, 6}) {
    let::MilpSchedulerOptions opt;
    opt.objective = let::MilpObjective::kMinLatencyRatio;
    opt.solver.time_limit_sec = timeout;
    opt.max_transfers = cap;
    const auto r = let::MilpScheduler(comms, opt).solve();
    bench::append_milp_metrics("pareto_tradeoff",
                               "cap=" + std::to_string(cap), r);
    table.add_row({std::to_string(cap), bench::status_name(r.status),
                   r.feasible() ? std::to_string(r.dma_transfers_at_s0) : "-",
                   r.feasible() ? support::fmt_double(r.objective, 4) : "-"});
  }
  std::printf("%s", table.render().c_str());
  bench::append_histogram_metrics("pareto_tradeoff");
  return 0;
}
