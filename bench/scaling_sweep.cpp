// Extension experiment (E7): how the approaches scale with the number of
// inter-core labels. For generated applications of growing size we report
// the DMA transfer count and the worst latency/period ratio for the greedy
// strategies and the Giotto-DMA-A baseline, plus Giotto-CPU's epoch cost.
//
// The interesting shape: the per-transfer overhead makes Giotto-DMA-A's
// cost grow linearly in the label count, while chain merging keeps the
// proposed configuration's transfer count sub-linear.
//
// Instances are evaluated through engine::BatchRunner: the (labels, seed)
// grid fans out over a thread pool and results come back in grid order, so
// the table is identical at any thread count.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "letdma/engine/batch.hpp"
#include "letdma/model/generator.hpp"

using namespace letdma;

namespace {

struct Sample {
  int labels = 0;
  bool used = false;
  // Unlike the baselines, greedy results are validated by the engine:
  // an instance whose transfers cannot fit any slot (Property 3) yields
  // no valid schedule and is excluded from the greedy averages.
  bool greedy_valid = false;
  double comms = 0;
  double greedy_tr = 0, giotto_tr = 0;
  double greedy_ratio = 0, giotto_ratio = 0, cpu_ratio = 0;
};

}  // namespace

int main() {
  std::printf("Scaling sweep: generated 4-core systems, 12 tasks, "
              "growing label count (3 seeds averaged)\n\n");

  std::vector<std::pair<int, int>> grid;  // (labels, seed)
  for (const int labels : {4, 8, 16, 32, 64}) {
    for (int seed = 0; seed < 3; ++seed) grid.emplace_back(labels, seed);
  }

  const engine::BatchRunner runner;
  const std::vector<Sample> samples = runner.map<Sample>(
      grid.size(), [&](std::size_t i) {
        const auto [labels, seed] = grid[i];
        Sample s;
        s.labels = labels;
        model::GeneratorOptions opt;
        opt.num_cores = 4;
        opt.num_tasks = 12;
        opt.num_labels = labels;
        opt.max_label_bytes = 16384;
        opt.seed = static_cast<std::uint64_t>(labels) * 131 +
                   static_cast<std::uint64_t>(seed);
        const auto app = generate_application(opt);
        let::LetComms comms(*app);
        if (comms.comms_at_s0().empty()) return s;
        s.used = true;
        s.comms = static_cast<double>(comms.comms_at_s0().size());

        const engine::ScheduleOutcome greedy = bench::run_engine(
            comms, "greedy", engine::Objective::kMinMaxLatencyRatio, 5.0);
        bench::append_engine_metrics("scaling_sweep",
                                     "labels=" + std::to_string(labels) +
                                         ",seed=" + std::to_string(seed),
                                     greedy);
        if (greedy.schedule) {
          s.greedy_valid = true;
          s.greedy_tr =
              static_cast<double>(greedy.schedule->s0_transfers.size());
          s.greedy_ratio = greedy.objective;
        }

        const let::ScheduleResult a = baseline::giotto_dma_a(comms);
        s.giotto_tr = static_cast<double>(a.s0_transfers.size());
        s.giotto_ratio = bench::max_latency_ratio(
            *app, baseline::giotto_dma_latencies(comms, a));
        s.cpu_ratio = bench::max_latency_ratio(
            *app, baseline::giotto_cpu_latencies(comms));
        return s;
      });

  support::TextTable table({"labels", "comms", "greedy transfers",
                            "giotto-A transfers", "greedy max l/T",
                            "giotto-A max l/T", "giotto-CPU max l/T"});
  for (const int labels : {4, 8, 16, 32, 64}) {
    Sample sum;
    int n = 0, n_greedy = 0;
    for (const Sample& s : samples) {
      if (s.labels != labels || !s.used) continue;
      ++n;
      sum.comms += s.comms;
      sum.giotto_tr += s.giotto_tr;
      sum.giotto_ratio += s.giotto_ratio;
      sum.cpu_ratio += s.cpu_ratio;
      if (!s.greedy_valid) continue;
      ++n_greedy;
      sum.greedy_tr += s.greedy_tr;
      sum.greedy_ratio += s.greedy_ratio;
    }
    if (n == 0) continue;
    const double d = static_cast<double>(n);
    const double dg = static_cast<double>(n_greedy);
    table.add_row(
        {std::to_string(labels), support::fmt_double(sum.comms / d, 1),
         n_greedy ? support::fmt_double(sum.greedy_tr / dg, 1)
                  : std::string("-"),
         support::fmt_double(sum.giotto_tr / d, 1),
         n_greedy ? support::fmt_double(sum.greedy_ratio / dg, 4)
                  : std::string("-"),
         support::fmt_double(sum.giotto_ratio / d, 4),
         support::fmt_double(sum.cpu_ratio / d, 4)});
  }
  std::printf("%s", table.render().c_str());
  bench::append_histogram_metrics("scaling_sweep");
  return 0;
}
