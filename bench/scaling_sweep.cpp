// Extension experiment (E7): how the approaches scale with the number of
// inter-core labels. For generated applications of growing size we report
// the DMA transfer count and the worst latency/period ratio for the greedy
// strategies and the Giotto-DMA-A baseline, plus Giotto-CPU's epoch cost.
//
// The interesting shape: the per-transfer overhead makes Giotto-DMA-A's
// cost grow linearly in the label count, while chain merging keeps the
// proposed configuration's transfer count sub-linear.
#include <cstdio>

#include "bench_util.hpp"
#include "letdma/model/generator.hpp"

using namespace letdma;

namespace {

double max_ratio(const model::Application& app,
                 const std::map<int, support::Time>& wc) {
  double worst = 0;
  for (const auto& [task, lam] : wc) {
    worst = std::max(worst, static_cast<double>(lam) /
                                static_cast<double>(
                                    app.task(model::TaskId{task}).period));
  }
  return worst;
}

}  // namespace

int main() {
  std::printf("Scaling sweep: generated 4-core systems, 12 tasks, "
              "growing label count (3 seeds averaged)\n\n");
  support::TextTable table({"labels", "comms", "greedy transfers",
                            "giotto-A transfers", "greedy max l/T",
                            "giotto-A max l/T", "giotto-CPU max l/T"});
  for (const int labels : {4, 8, 16, 32, 64}) {
    double comms_n = 0, greedy_tr = 0, giotto_tr = 0;
    double greedy_ratio = 0, giotto_ratio = 0, cpu_ratio = 0;
    int samples = 0;
    for (int seed = 0; seed < 3; ++seed) {
      model::GeneratorOptions opt;
      opt.num_cores = 4;
      opt.num_tasks = 12;
      opt.num_labels = labels;
      opt.max_label_bytes = 16384;
      opt.seed = static_cast<std::uint64_t>(labels) * 131 + seed;
      const auto app = generate_application(opt);
      let::LetComms comms(*app);
      if (comms.comms_at_s0().empty()) continue;
      ++samples;
      comms_n += static_cast<double>(comms.comms_at_s0().size());

      const let::ScheduleResult greedy =
          let::GreedyScheduler::best_latency_ratio(comms);
      greedy_tr += static_cast<double>(greedy.s0_transfers.size());
      greedy_ratio += max_ratio(
          *app, let::worst_case_latencies(comms, greedy.schedule,
                                          let::ReadinessSemantics::kProposed));

      const let::ScheduleResult a = baseline::giotto_dma_a(comms);
      giotto_tr += static_cast<double>(a.s0_transfers.size());
      giotto_ratio +=
          max_ratio(*app, baseline::giotto_dma_latencies(comms, a));

      std::map<int, support::Time> cpu =
          baseline::giotto_cpu_latencies(comms);
      cpu_ratio += max_ratio(*app, cpu);
    }
    if (samples == 0) continue;
    const double n = static_cast<double>(samples);
    table.add_row({std::to_string(labels),
                   support::fmt_double(comms_n / n, 1),
                   support::fmt_double(greedy_tr / n, 1),
                   support::fmt_double(giotto_tr / n, 1),
                   support::fmt_double(greedy_ratio / n, 4),
                   support::fmt_double(giotto_ratio / n, 4),
                   support::fmt_double(cpu_ratio / n, 4)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
