file(REMOVE_RECURSE
  "CMakeFiles/micro_letgroups.dir/micro_letgroups.cpp.o"
  "CMakeFiles/micro_letgroups.dir/micro_letgroups.cpp.o.d"
  "micro_letgroups"
  "micro_letgroups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_letgroups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
