# Empty compiler generated dependencies file for micro_letgroups.
# This may be replaced when dependencies are built.
