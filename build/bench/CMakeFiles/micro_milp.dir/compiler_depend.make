# Empty compiler generated dependencies file for micro_milp.
# This may be replaced when dependencies are built.
