file(REMOVE_RECURSE
  "CMakeFiles/micro_milp.dir/micro_milp.cpp.o"
  "CMakeFiles/micro_milp.dir/micro_milp.cpp.o.d"
  "micro_milp"
  "micro_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
