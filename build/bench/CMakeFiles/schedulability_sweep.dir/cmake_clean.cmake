file(REMOVE_RECURSE
  "CMakeFiles/schedulability_sweep.dir/schedulability_sweep.cpp.o"
  "CMakeFiles/schedulability_sweep.dir/schedulability_sweep.cpp.o.d"
  "schedulability_sweep"
  "schedulability_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedulability_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
