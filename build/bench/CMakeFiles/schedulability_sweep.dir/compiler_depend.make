# Empty compiler generated dependencies file for schedulability_sweep.
# This may be replaced when dependencies are built.
