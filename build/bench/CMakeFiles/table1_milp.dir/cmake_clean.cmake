file(REMOVE_RECURSE
  "CMakeFiles/table1_milp.dir/table1_milp.cpp.o"
  "CMakeFiles/table1_milp.dir/table1_milp.cpp.o.d"
  "table1_milp"
  "table1_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
