# Empty compiler generated dependencies file for table1_milp.
# This may be replaced when dependencies are built.
