file(REMOVE_RECURSE
  "CMakeFiles/mapping_ablation.dir/mapping_ablation.cpp.o"
  "CMakeFiles/mapping_ablation.dir/mapping_ablation.cpp.o.d"
  "mapping_ablation"
  "mapping_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
