# Empty compiler generated dependencies file for mapping_ablation.
# This may be replaced when dependencies are built.
