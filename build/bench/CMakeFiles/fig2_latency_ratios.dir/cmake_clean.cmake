file(REMOVE_RECURSE
  "CMakeFiles/fig2_latency_ratios.dir/fig2_latency_ratios.cpp.o"
  "CMakeFiles/fig2_latency_ratios.dir/fig2_latency_ratios.cpp.o.d"
  "fig2_latency_ratios"
  "fig2_latency_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_latency_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
