# Empty compiler generated dependencies file for fig2_latency_ratios.
# This may be replaced when dependencies are built.
