# Empty compiler generated dependencies file for alpha_sensitivity.
# This may be replaced when dependencies are built.
