file(REMOVE_RECURSE
  "CMakeFiles/alpha_sensitivity.dir/alpha_sensitivity.cpp.o"
  "CMakeFiles/alpha_sensitivity.dir/alpha_sensitivity.cpp.o.d"
  "alpha_sensitivity"
  "alpha_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
