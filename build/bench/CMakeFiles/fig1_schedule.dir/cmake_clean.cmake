file(REMOVE_RECURSE
  "CMakeFiles/fig1_schedule.dir/fig1_schedule.cpp.o"
  "CMakeFiles/fig1_schedule.dir/fig1_schedule.cpp.o.d"
  "fig1_schedule"
  "fig1_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
