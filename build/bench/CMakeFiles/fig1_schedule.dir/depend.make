# Empty dependencies file for fig1_schedule.
# This may be replaced when dependencies are built.
