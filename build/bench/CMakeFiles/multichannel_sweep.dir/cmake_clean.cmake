file(REMOVE_RECURSE
  "CMakeFiles/multichannel_sweep.dir/multichannel_sweep.cpp.o"
  "CMakeFiles/multichannel_sweep.dir/multichannel_sweep.cpp.o.d"
  "multichannel_sweep"
  "multichannel_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multichannel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
