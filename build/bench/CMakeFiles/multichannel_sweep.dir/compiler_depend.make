# Empty compiler generated dependencies file for multichannel_sweep.
# This may be replaced when dependencies are built.
