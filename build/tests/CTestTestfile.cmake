# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/milp_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/waters_test[1]_include.cmake")
include("/root/repo/build/tests/let_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
