# Empty dependencies file for waters_test.
# This may be replaced when dependencies are built.
