file(REMOVE_RECURSE
  "CMakeFiles/waters_test.dir/waters/waters_test.cpp.o"
  "CMakeFiles/waters_test.dir/waters/waters_test.cpp.o.d"
  "waters_test"
  "waters_test.pdb"
  "waters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
