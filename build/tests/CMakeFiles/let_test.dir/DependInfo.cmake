
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/let/comm_test.cpp" "tests/CMakeFiles/let_test.dir/let/comm_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/comm_test.cpp.o.d"
  "/root/repo/tests/let/eta_paper_equivalence_test.cpp" "tests/CMakeFiles/let_test.dir/let/eta_paper_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/eta_paper_equivalence_test.cpp.o.d"
  "/root/repo/tests/let/eta_test.cpp" "tests/CMakeFiles/let_test.dir/let/eta_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/eta_test.cpp.o.d"
  "/root/repo/tests/let/footprint_test.cpp" "tests/CMakeFiles/let_test.dir/let/footprint_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/footprint_test.cpp.o.d"
  "/root/repo/tests/let/greedy_test.cpp" "tests/CMakeFiles/let_test.dir/let/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/greedy_test.cpp.o.d"
  "/root/repo/tests/let/latency_test.cpp" "tests/CMakeFiles/let_test.dir/let/latency_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/latency_test.cpp.o.d"
  "/root/repo/tests/let/layout_test.cpp" "tests/CMakeFiles/let_test.dir/let/layout_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/layout_test.cpp.o.d"
  "/root/repo/tests/let/let_comms_test.cpp" "tests/CMakeFiles/let_test.dir/let/let_comms_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/let_comms_test.cpp.o.d"
  "/root/repo/tests/let/local_search_test.cpp" "tests/CMakeFiles/let_test.dir/let/local_search_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/local_search_test.cpp.o.d"
  "/root/repo/tests/let/milp_consistency_test.cpp" "tests/CMakeFiles/let_test.dir/let/milp_consistency_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/milp_consistency_test.cpp.o.d"
  "/root/repo/tests/let/milp_scheduler_test.cpp" "tests/CMakeFiles/let_test.dir/let/milp_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/milp_scheduler_test.cpp.o.d"
  "/root/repo/tests/let/multichannel_test.cpp" "tests/CMakeFiles/let_test.dir/let/multichannel_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/multichannel_test.cpp.o.d"
  "/root/repo/tests/let/schedule_io_test.cpp" "tests/CMakeFiles/let_test.dir/let/schedule_io_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/schedule_io_test.cpp.o.d"
  "/root/repo/tests/let/transfer_test.cpp" "tests/CMakeFiles/let_test.dir/let/transfer_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/transfer_test.cpp.o.d"
  "/root/repo/tests/let/validate_test.cpp" "tests/CMakeFiles/let_test.dir/let/validate_test.cpp.o" "gcc" "tests/CMakeFiles/let_test.dir/let/validate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/letdma_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/letdma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/letdma_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/let/CMakeFiles/letdma_let.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/letdma_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/waters/CMakeFiles/letdma_waters.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/letdma_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/letdma_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
