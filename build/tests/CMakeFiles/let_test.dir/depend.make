# Empty dependencies file for let_test.
# This may be replaced when dependencies are built.
