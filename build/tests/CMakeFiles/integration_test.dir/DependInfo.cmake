
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/letdma_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/letdma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/letdma_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/let/CMakeFiles/letdma_let.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/letdma_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/waters/CMakeFiles/letdma_waters.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/letdma_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/letdma_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
