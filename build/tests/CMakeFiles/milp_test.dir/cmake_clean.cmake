file(REMOVE_RECURSE
  "CMakeFiles/milp_test.dir/milp/expr_test.cpp.o"
  "CMakeFiles/milp_test.dir/milp/expr_test.cpp.o.d"
  "CMakeFiles/milp_test.dir/milp/model_test.cpp.o"
  "CMakeFiles/milp_test.dir/milp/model_test.cpp.o.d"
  "CMakeFiles/milp_test.dir/milp/presolve_test.cpp.o"
  "CMakeFiles/milp_test.dir/milp/presolve_test.cpp.o.d"
  "CMakeFiles/milp_test.dir/milp/simplex_test.cpp.o"
  "CMakeFiles/milp_test.dir/milp/simplex_test.cpp.o.d"
  "CMakeFiles/milp_test.dir/milp/solver_property_test.cpp.o"
  "CMakeFiles/milp_test.dir/milp/solver_property_test.cpp.o.d"
  "CMakeFiles/milp_test.dir/milp/solver_test.cpp.o"
  "CMakeFiles/milp_test.dir/milp/solver_test.cpp.o.d"
  "milp_test"
  "milp_test.pdb"
  "milp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
