add_test([=[Pipeline.WatersEndToEnd]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=Pipeline.WatersEndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Pipeline.WatersEndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS Pipeline.WatersEndToEnd)
