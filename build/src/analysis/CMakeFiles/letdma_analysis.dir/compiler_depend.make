# Empty compiler generated dependencies file for letdma_analysis.
# This may be replaced when dependencies are built.
