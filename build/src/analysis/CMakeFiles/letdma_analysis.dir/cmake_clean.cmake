file(REMOVE_RECURSE
  "CMakeFiles/letdma_analysis.dir/src/protocol_rta.cpp.o"
  "CMakeFiles/letdma_analysis.dir/src/protocol_rta.cpp.o.d"
  "CMakeFiles/letdma_analysis.dir/src/rta.cpp.o"
  "CMakeFiles/letdma_analysis.dir/src/rta.cpp.o.d"
  "libletdma_analysis.a"
  "libletdma_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
