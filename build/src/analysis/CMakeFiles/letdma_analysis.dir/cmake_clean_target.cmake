file(REMOVE_RECURSE
  "libletdma_analysis.a"
)
