file(REMOVE_RECURSE
  "CMakeFiles/letdma_waters.dir/src/waters.cpp.o"
  "CMakeFiles/letdma_waters.dir/src/waters.cpp.o.d"
  "libletdma_waters.a"
  "libletdma_waters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_waters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
