file(REMOVE_RECURSE
  "libletdma_waters.a"
)
