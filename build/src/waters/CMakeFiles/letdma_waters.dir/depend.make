# Empty dependencies file for letdma_waters.
# This may be replaced when dependencies are built.
