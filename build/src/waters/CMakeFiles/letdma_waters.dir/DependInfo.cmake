
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/waters/src/waters.cpp" "src/waters/CMakeFiles/letdma_waters.dir/src/waters.cpp.o" "gcc" "src/waters/CMakeFiles/letdma_waters.dir/src/waters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/letdma_support.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/letdma_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
