# Empty compiler generated dependencies file for letdma_milp.
# This may be replaced when dependencies are built.
