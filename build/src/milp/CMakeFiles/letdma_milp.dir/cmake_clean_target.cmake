file(REMOVE_RECURSE
  "libletdma_milp.a"
)
