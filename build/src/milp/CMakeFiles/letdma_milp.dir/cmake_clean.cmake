file(REMOVE_RECURSE
  "CMakeFiles/letdma_milp.dir/src/expr.cpp.o"
  "CMakeFiles/letdma_milp.dir/src/expr.cpp.o.d"
  "CMakeFiles/letdma_milp.dir/src/model.cpp.o"
  "CMakeFiles/letdma_milp.dir/src/model.cpp.o.d"
  "CMakeFiles/letdma_milp.dir/src/presolve.cpp.o"
  "CMakeFiles/letdma_milp.dir/src/presolve.cpp.o.d"
  "CMakeFiles/letdma_milp.dir/src/simplex.cpp.o"
  "CMakeFiles/letdma_milp.dir/src/simplex.cpp.o.d"
  "CMakeFiles/letdma_milp.dir/src/solver.cpp.o"
  "CMakeFiles/letdma_milp.dir/src/solver.cpp.o.d"
  "libletdma_milp.a"
  "libletdma_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
