
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/milp/src/expr.cpp" "src/milp/CMakeFiles/letdma_milp.dir/src/expr.cpp.o" "gcc" "src/milp/CMakeFiles/letdma_milp.dir/src/expr.cpp.o.d"
  "/root/repo/src/milp/src/model.cpp" "src/milp/CMakeFiles/letdma_milp.dir/src/model.cpp.o" "gcc" "src/milp/CMakeFiles/letdma_milp.dir/src/model.cpp.o.d"
  "/root/repo/src/milp/src/presolve.cpp" "src/milp/CMakeFiles/letdma_milp.dir/src/presolve.cpp.o" "gcc" "src/milp/CMakeFiles/letdma_milp.dir/src/presolve.cpp.o.d"
  "/root/repo/src/milp/src/simplex.cpp" "src/milp/CMakeFiles/letdma_milp.dir/src/simplex.cpp.o" "gcc" "src/milp/CMakeFiles/letdma_milp.dir/src/simplex.cpp.o.d"
  "/root/repo/src/milp/src/solver.cpp" "src/milp/CMakeFiles/letdma_milp.dir/src/solver.cpp.o" "gcc" "src/milp/CMakeFiles/letdma_milp.dir/src/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/letdma_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
