file(REMOVE_RECURSE
  "CMakeFiles/letdma_sim.dir/src/simulator.cpp.o"
  "CMakeFiles/letdma_sim.dir/src/simulator.cpp.o.d"
  "CMakeFiles/letdma_sim.dir/src/trace.cpp.o"
  "CMakeFiles/letdma_sim.dir/src/trace.cpp.o.d"
  "libletdma_sim.a"
  "libletdma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
