file(REMOVE_RECURSE
  "libletdma_sim.a"
)
