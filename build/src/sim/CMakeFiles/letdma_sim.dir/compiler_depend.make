# Empty compiler generated dependencies file for letdma_sim.
# This may be replaced when dependencies are built.
