# Empty dependencies file for letdma_baseline.
# This may be replaced when dependencies are built.
