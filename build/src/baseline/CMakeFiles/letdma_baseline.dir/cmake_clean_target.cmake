file(REMOVE_RECURSE
  "libletdma_baseline.a"
)
