file(REMOVE_RECURSE
  "CMakeFiles/letdma_baseline.dir/src/giotto.cpp.o"
  "CMakeFiles/letdma_baseline.dir/src/giotto.cpp.o.d"
  "libletdma_baseline.a"
  "libletdma_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
