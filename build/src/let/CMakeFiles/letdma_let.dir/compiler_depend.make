# Empty compiler generated dependencies file for letdma_let.
# This may be replaced when dependencies are built.
