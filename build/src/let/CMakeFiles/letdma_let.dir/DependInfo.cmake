
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/let/src/comm.cpp" "src/let/CMakeFiles/letdma_let.dir/src/comm.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/comm.cpp.o.d"
  "/root/repo/src/let/src/eta.cpp" "src/let/CMakeFiles/letdma_let.dir/src/eta.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/eta.cpp.o.d"
  "/root/repo/src/let/src/footprint.cpp" "src/let/CMakeFiles/letdma_let.dir/src/footprint.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/footprint.cpp.o.d"
  "/root/repo/src/let/src/greedy.cpp" "src/let/CMakeFiles/letdma_let.dir/src/greedy.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/greedy.cpp.o.d"
  "/root/repo/src/let/src/latency.cpp" "src/let/CMakeFiles/letdma_let.dir/src/latency.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/latency.cpp.o.d"
  "/root/repo/src/let/src/layout.cpp" "src/let/CMakeFiles/letdma_let.dir/src/layout.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/layout.cpp.o.d"
  "/root/repo/src/let/src/let_comms.cpp" "src/let/CMakeFiles/letdma_let.dir/src/let_comms.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/let_comms.cpp.o.d"
  "/root/repo/src/let/src/local_search.cpp" "src/let/CMakeFiles/letdma_let.dir/src/local_search.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/local_search.cpp.o.d"
  "/root/repo/src/let/src/milp_scheduler.cpp" "src/let/CMakeFiles/letdma_let.dir/src/milp_scheduler.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/milp_scheduler.cpp.o.d"
  "/root/repo/src/let/src/multichannel.cpp" "src/let/CMakeFiles/letdma_let.dir/src/multichannel.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/multichannel.cpp.o.d"
  "/root/repo/src/let/src/schedule_io.cpp" "src/let/CMakeFiles/letdma_let.dir/src/schedule_io.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/schedule_io.cpp.o.d"
  "/root/repo/src/let/src/transfer.cpp" "src/let/CMakeFiles/letdma_let.dir/src/transfer.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/transfer.cpp.o.d"
  "/root/repo/src/let/src/validate.cpp" "src/let/CMakeFiles/letdma_let.dir/src/validate.cpp.o" "gcc" "src/let/CMakeFiles/letdma_let.dir/src/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/letdma_support.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/letdma_model.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/letdma_milp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
