file(REMOVE_RECURSE
  "libletdma_let.a"
)
