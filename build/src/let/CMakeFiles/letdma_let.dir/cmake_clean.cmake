file(REMOVE_RECURSE
  "CMakeFiles/letdma_let.dir/src/comm.cpp.o"
  "CMakeFiles/letdma_let.dir/src/comm.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/eta.cpp.o"
  "CMakeFiles/letdma_let.dir/src/eta.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/footprint.cpp.o"
  "CMakeFiles/letdma_let.dir/src/footprint.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/greedy.cpp.o"
  "CMakeFiles/letdma_let.dir/src/greedy.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/latency.cpp.o"
  "CMakeFiles/letdma_let.dir/src/latency.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/layout.cpp.o"
  "CMakeFiles/letdma_let.dir/src/layout.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/let_comms.cpp.o"
  "CMakeFiles/letdma_let.dir/src/let_comms.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/local_search.cpp.o"
  "CMakeFiles/letdma_let.dir/src/local_search.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/milp_scheduler.cpp.o"
  "CMakeFiles/letdma_let.dir/src/milp_scheduler.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/multichannel.cpp.o"
  "CMakeFiles/letdma_let.dir/src/multichannel.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/schedule_io.cpp.o"
  "CMakeFiles/letdma_let.dir/src/schedule_io.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/transfer.cpp.o"
  "CMakeFiles/letdma_let.dir/src/transfer.cpp.o.d"
  "CMakeFiles/letdma_let.dir/src/validate.cpp.o"
  "CMakeFiles/letdma_let.dir/src/validate.cpp.o.d"
  "libletdma_let.a"
  "libletdma_let.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_let.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
