# Empty compiler generated dependencies file for letdma_model.
# This may be replaced when dependencies are built.
