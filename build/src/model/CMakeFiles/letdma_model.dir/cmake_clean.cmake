file(REMOVE_RECURSE
  "CMakeFiles/letdma_model.dir/src/application.cpp.o"
  "CMakeFiles/letdma_model.dir/src/application.cpp.o.d"
  "CMakeFiles/letdma_model.dir/src/generator.cpp.o"
  "CMakeFiles/letdma_model.dir/src/generator.cpp.o.d"
  "CMakeFiles/letdma_model.dir/src/io.cpp.o"
  "CMakeFiles/letdma_model.dir/src/io.cpp.o.d"
  "CMakeFiles/letdma_model.dir/src/mapping.cpp.o"
  "CMakeFiles/letdma_model.dir/src/mapping.cpp.o.d"
  "CMakeFiles/letdma_model.dir/src/platform.cpp.o"
  "CMakeFiles/letdma_model.dir/src/platform.cpp.o.d"
  "libletdma_model.a"
  "libletdma_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
