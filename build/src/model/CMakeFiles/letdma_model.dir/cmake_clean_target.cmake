file(REMOVE_RECURSE
  "libletdma_model.a"
)
