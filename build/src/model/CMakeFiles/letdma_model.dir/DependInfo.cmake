
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/src/application.cpp" "src/model/CMakeFiles/letdma_model.dir/src/application.cpp.o" "gcc" "src/model/CMakeFiles/letdma_model.dir/src/application.cpp.o.d"
  "/root/repo/src/model/src/generator.cpp" "src/model/CMakeFiles/letdma_model.dir/src/generator.cpp.o" "gcc" "src/model/CMakeFiles/letdma_model.dir/src/generator.cpp.o.d"
  "/root/repo/src/model/src/io.cpp" "src/model/CMakeFiles/letdma_model.dir/src/io.cpp.o" "gcc" "src/model/CMakeFiles/letdma_model.dir/src/io.cpp.o.d"
  "/root/repo/src/model/src/mapping.cpp" "src/model/CMakeFiles/letdma_model.dir/src/mapping.cpp.o" "gcc" "src/model/CMakeFiles/letdma_model.dir/src/mapping.cpp.o.d"
  "/root/repo/src/model/src/platform.cpp" "src/model/CMakeFiles/letdma_model.dir/src/platform.cpp.o" "gcc" "src/model/CMakeFiles/letdma_model.dir/src/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/letdma_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
