# Empty compiler generated dependencies file for letdma_support.
# This may be replaced when dependencies are built.
