file(REMOVE_RECURSE
  "CMakeFiles/letdma_support.dir/src/math.cpp.o"
  "CMakeFiles/letdma_support.dir/src/math.cpp.o.d"
  "CMakeFiles/letdma_support.dir/src/rng.cpp.o"
  "CMakeFiles/letdma_support.dir/src/rng.cpp.o.d"
  "CMakeFiles/letdma_support.dir/src/table.cpp.o"
  "CMakeFiles/letdma_support.dir/src/table.cpp.o.d"
  "CMakeFiles/letdma_support.dir/src/time.cpp.o"
  "CMakeFiles/letdma_support.dir/src/time.cpp.o.d"
  "libletdma_support.a"
  "libletdma_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
