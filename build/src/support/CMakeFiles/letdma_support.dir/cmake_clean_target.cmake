file(REMOVE_RECURSE
  "libletdma_support.a"
)
