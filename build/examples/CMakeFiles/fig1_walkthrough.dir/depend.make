# Empty dependencies file for fig1_walkthrough.
# This may be replaced when dependencies are built.
