file(REMOVE_RECURSE
  "CMakeFiles/letdma_tool.dir/letdma_tool.cpp.o"
  "CMakeFiles/letdma_tool.dir/letdma_tool.cpp.o.d"
  "letdma_tool"
  "letdma_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letdma_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
