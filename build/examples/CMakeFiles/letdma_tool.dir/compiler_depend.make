# Empty compiler generated dependencies file for letdma_tool.
# This may be replaced when dependencies are built.
