file(REMOVE_RECURSE
  "CMakeFiles/waters_casestudy.dir/waters_casestudy.cpp.o"
  "CMakeFiles/waters_casestudy.dir/waters_casestudy.cpp.o.d"
  "waters_casestudy"
  "waters_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waters_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
