# Empty compiler generated dependencies file for waters_casestudy.
# This may be replaced when dependencies are built.
