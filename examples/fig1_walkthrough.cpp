// Walkthrough of the paper's Fig. 1 scenario: six cross-coupled tasks on
// two cores. Prints the transfer schedule under (a) the proposed protocol
// with an optimized communication order and (b) the original Giotto order,
// showing the readiness-latency gap for the latency-sensitive task tau2.
#include <cstdio>
#include <memory>

#include "letdma/baseline/giotto.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/sim/trace.hpp"
#include "letdma/support/table.hpp"

using namespace letdma;

namespace {

std::unique_ptr<model::Application> make_fig1() {
  auto app = std::make_unique<model::Application>(model::Platform(2));
  const auto t1 = app->add_task("tau1", support::ms(10), support::ms(2),
                                model::CoreId{0});
  const auto t3 = app->add_task("tau3", support::ms(20), support::ms(4),
                                model::CoreId{0});
  const auto t5 = app->add_task("tau5", support::ms(40), support::ms(8),
                                model::CoreId{0});
  const auto t2 = app->add_task("tau2", support::ms(5), support::ms(1),
                                model::CoreId{1});
  const auto t4 = app->add_task("tau4", support::ms(20), support::ms(4),
                                model::CoreId{1});
  const auto t6 = app->add_task("tau6", support::ms(40), support::ms(8),
                                model::CoreId{1});
  app->add_label("lA", 2000, t1, {t2});
  app->add_label("lB", 4000, t3, {t4});
  app->add_label("lC", 8000, t5, {t6});
  app->add_label("lD", 1000, t2, {t1});
  app->add_label("lE", 3000, t4, {t3});
  app->add_label("lF", 6000, t6, {t5});
  app->finalize();
  return app;
}

void print_schedule(const model::Application& app, const char* title,
                    const std::vector<let::DmaTransfer>& transfers) {
  std::printf("%s\n", title);
  const let::LatencyModel lat(app.platform());
  support::Time cursor = 0;
  for (std::size_t g = 0; g < transfers.size(); ++g) {
    cursor += lat.transfer_duration(transfers[g]);
    std::printf("  d%zu:", g + 1);
    for (const let::Communication& c : transfers[g].comms) {
      std::printf(" %s", let::to_string(app, c).c_str());
    }
    std::printf("  (completes at %s)\n",
                support::format_time(cursor).c_str());
  }
}

}  // namespace

int main() {
  const auto app = make_fig1();
  let::LetComms comms(*app);

  // Proposed protocol: MILP-optimized order (min latency ratio).
  let::MilpSchedulerOptions opt;
  opt.objective = let::MilpObjective::kMinLatencyRatio;
  opt.solver.time_limit_sec = 20;
  let::MilpScheduler milp(comms, opt);
  const let::MilpScheduleResult ours = milp.solve();
  if (!ours.feasible()) {
    std::printf("MILP found no schedule\n");
    return 1;
  }
  print_schedule(*app, "Proposed protocol (Fig. 1b):",
                 ours.schedule->s0_transfers);

  // Giotto order with per-communication transfers (Fig. 1c).
  const let::ScheduleResult giotto = baseline::giotto_dma_a(comms);
  print_schedule(*app, "Giotto order, one transfer per copy (Fig. 1c):",
                 giotto.s0_transfers);

  // Readiness latency comparison.
  const auto ours_wc = let::worst_case_latencies(
      comms, ours.schedule->schedule, let::ReadinessSemantics::kProposed);
  const auto giotto_wc = baseline::giotto_dma_latencies(comms, giotto);
  support::TextTable table({"task", "proposed", "giotto", "ratio"});
  for (int i = 0; i < app->num_tasks(); ++i) {
    const double ratio =
        giotto_wc.at(i) > 0 ? static_cast<double>(ours_wc.at(i)) /
                                  static_cast<double>(giotto_wc.at(i))
                            : 0.0;
    table.add_row({app->task(model::TaskId{i}).name,
                   support::format_time(ours_wc.at(i)),
                   support::format_time(giotto_wc.at(i)),
                   support::fmt_double(ratio, 3)});
  }
  std::printf("\nWorst-case data-acquisition latency:\n%s",
              table.render().c_str());

  // Replay the first 300us in the simulator and draw a Gantt chart.
  const sim::SimResult sr =
      sim::ProtocolSimulator(comms, &ours.schedule->schedule,
                             {sim::Mode::kProposedDma, 0})
          .run();
  sim::GanttOptions gopt;
  gopt.to = support::us(300);
  gopt.width = 100;
  std::printf("\n%s", sim::render_gantt(*app, sr, gopt).c_str());

  const auto report = let::validate_schedule(comms, ours.schedule->layout,
                                             ours.schedule->schedule);
  std::printf("\nvalidation: %s\n", report.summary().c_str());
  return report.ok() ? 0 : 1;
}
