// Command-line front end: load an application description, schedule it,
// and print the configuration, latencies and validation verdict.
//
//   letdma_tool <app-file> [greedy|milp] [none|dmat|del] [timeout-seconds]
//   letdma_tool <app-file> load <schedule-file>
//   letdma_tool <app-file> <scheduler> <obj> <timeout> --save <file>
//
// With "-" (or no arguments) a built-in demo model (the Fig. 1 system) is
// used. See src/model/include/letdma/model/io.hpp for the application
// format and src/let/include/letdma/let/schedule_io.hpp for schedules.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "letdma/let/footprint.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/let/schedule_io.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/io.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/table.hpp"

using namespace letdma;

namespace {

const char* kDemoApp = R"(# Fig. 1 demo system
platform cores=2 odp_ns=3360 oisr_ns=10000 wc=1 cpu_wc=4 cpu_oh_ns=200
task name=tau1 period_ns=10000000 wcet_ns=2000000 core=0
task name=tau3 period_ns=20000000 wcet_ns=4000000 core=0
task name=tau5 period_ns=40000000 wcet_ns=8000000 core=0
task name=tau2 period_ns=5000000 wcet_ns=1000000 core=1
task name=tau4 period_ns=20000000 wcet_ns=4000000 core=1
task name=tau6 period_ns=40000000 wcet_ns=8000000 core=1
label name=lA bytes=2000 writer=tau1 readers=tau2
label name=lB bytes=4000 writer=tau3 readers=tau4
label name=lC bytes=8000 writer=tau5 readers=tau6
label name=lD bytes=1000 writer=tau2 readers=tau1
label name=lE bytes=3000 writer=tau4 readers=tau3
label name=lF bytes=6000 writer=tau6 readers=tau5
)";

int usage() {
  std::fprintf(stderr,
               "usage: letdma_tool [app-file] [greedy|milp] "
               "[none|dmat|del] [timeout-seconds]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDemoApp;
  if (argc > 1 && std::string(argv[1]) != "-") {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  }
  const std::string scheduler = argc > 2 ? argv[2] : "greedy";
  const std::string objective = argc > 3 ? argv[3] : "del";
  const double timeout = argc > 4 ? std::atof(argv[4]) : 30.0;

  std::unique_ptr<model::Application> app;
  try {
    app = model::read_application(text);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }
  let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) {
    std::printf("no inter-core LET communications; nothing to schedule\n");
    return 0;
  }

  std::unique_ptr<let::ScheduleResult> result;
  if (scheduler == "load") {
    std::ifstream in(objective);  // argv[3] is the schedule file here
    if (!in) {
      std::fprintf(stderr, "cannot open schedule %s\n", objective.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    try {
      result = std::make_unique<let::ScheduleResult>(
          let::read_schedule(comms, os.str()));
    } catch (const support::Error& e) {
      std::fprintf(stderr, "schedule parse error: %s\n", e.what());
      return 2;
    }
  } else if (scheduler == "greedy") {
    result = std::make_unique<let::ScheduleResult>(
        let::GreedyScheduler::best_latency_ratio(comms));
  } else if (scheduler == "milp") {
    let::MilpSchedulerOptions opt;
    if (objective == "none") opt.objective = let::MilpObjective::kNone;
    else if (objective == "dmat") opt.objective = let::MilpObjective::kMinTransfers;
    else if (objective == "del") opt.objective = let::MilpObjective::kMinLatencyRatio;
    else return usage();
    opt.solver.time_limit_sec = timeout;
    const auto r = let::MilpScheduler(comms, opt).solve();
    if (!r.feasible()) {
      std::printf("MILP: no feasible configuration (status %d)\n",
                  static_cast<int>(r.status));
      return 1;
    }
    result = std::make_unique<let::ScheduleResult>(*r.schedule);
  } else {
    return usage();
  }

  std::printf("transfers at s0: %zu\n", result->s0_transfers.size());
  for (std::size_t g = 0; g < result->s0_transfers.size(); ++g) {
    const let::DmaTransfer& t = result->s0_transfers[g];
    std::printf("  d%-2zu %s %6lld B :", g + 1,
                t.dir == let::Direction::kWrite ? "W" : "R",
                static_cast<long long>(t.bytes));
    for (const let::Communication& c : t.comms) {
      std::printf(" %s", let::to_string(*app, c).c_str());
    }
    std::printf("\n");
  }
  const auto wc = let::worst_case_latencies(
      comms, result->schedule, let::ReadinessSemantics::kProposed);
  support::TextTable table({"task", "lambda", "lambda/T"});
  for (const auto& [task, lam] : wc) {
    const model::Task& t = app->task(model::TaskId{task});
    table.add_row({t.name, support::format_time(lam),
                   support::fmt_double(static_cast<double>(lam) /
                                           static_cast<double>(t.period),
                                       4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\naddress map:\n%s",
              let::render_address_map(result->layout).c_str());

  // Optional --save <file> at the end of the argument list.
  for (int a = 1; a + 1 < argc; ++a) {
    if (std::string(argv[a]) == "--save") {
      std::ofstream outf(argv[a + 1]);
      if (!outf) {
        std::fprintf(stderr, "cannot write %s\n", argv[a + 1]);
        return 2;
      }
      outf << let::write_schedule(*app, *result);
      std::printf("schedule saved to %s\n", argv[a + 1]);
    }
  }

  const auto report =
      let::validate_schedule(comms, result->layout, result->schedule);
  std::printf("validation: %s\n", report.summary().c_str());
  return report.ok() ? 0 : 1;
}
