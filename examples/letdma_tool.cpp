// Command-line front end: load an application description, schedule it
// through the engine layer, and print the configuration, latencies and
// validation verdict.
//
//   letdma_tool <app-file> [greedy|ls|milp|portfolio|giotto|supervised]
//               [none|dmat|del] [timeout-seconds]
//   letdma_tool <app-file> load <schedule-file>
//
// Flags (anywhere in the argument list):
//   --engine <name>   scheduling engine: greedy | ls | milp | portfolio |
//                     giotto | supervised (same as the positional
//                     scheduler; the flag wins)
//   --budget-ms <ms>  wall-clock budget for the solve (overrides the
//                     positional timeout, which is in seconds; 0 is legal
//                     and returns promptly with whatever is already known)
//   --certify         independently certify the result with letdma::guard
//                     and print the certificate; an uncertified schedule
//                     makes the exit status non-zero
//   --faults <spec>   arm the deterministic fault injector (same syntax as
//                     the LETDMA_FAULTS environment variable, e.g.
//                     "seed=7,chaos"); the env var is honoured when the
//                     flag is absent
//   --save <file>     write the resulting schedule
//   --trace <file>    write a Chrome trace-event JSON (open in Perfetto or
//                     chrome://tracing): engine/solver phase spans and
//                     incumbent events plus the simulated per-core/DMA
//                     schedule
//   --metrics <file>  append the full event stream as JSONL
//   --flight <file>   flight-recorder dump destination: when a supervised
//                     solve demotes, fails certification, or retries, the
//                     recent-event ring is appended here as JSONL (same as
//                     setting LETDMA_FLIGHT_DUMP; the flag wins)
//   --threads <n>     MILP branch-and-bound worker threads (0 = one per
//                     hardware thread, 1 = the sequential node loop);
//                     applies to the milp engine and to the milp strategy
//                     inside portfolio/supervised
//   --fingerprint     print the 128-bit canonical structural fingerprint
//                     of the model (the letdma::serve cache key) and exit;
//                     isomorphic models — renamed tasks/labels, reordered
//                     directives, renumbered cores — print the same hash.
//                     With -v the canonical form itself goes to stderr
//   --diff <file>     incremental re-scheduling: solve <app-file> through
//                     the supervised chain, read the changed model from
//                     <file>, print the model diff (summary, magnitude,
//                     structural distance) and repair the previous
//                     schedule onto it with the incremental engine instead
//                     of re-solving cold; the repaired result is certified
//                     and the certificate printed. --save writes the
//                     repaired schedule
//   --deterministic   reproducible parallel MILP search (epoch-synchronized
//                     node batches; the result is thread-count independent)
//   -v                verbose: mirror events to stderr
//
// With "-" (or no arguments) a built-in demo model (the Fig. 1 system) is
// used. See src/model/include/letdma/model/io.hpp for the application
// format and src/let/include/letdma/let/schedule_io.hpp for schedules.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "letdma/engine/adapters.hpp"
#include "letdma/engine/engine.hpp"
#include "letdma/engine/incremental.hpp"
#include "letdma/guard/certify.hpp"
#include "letdma/guard/faults.hpp"
#include "letdma/let/footprint.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/let/schedule_io.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/canonical.hpp"
#include "letdma/model/diff.hpp"
#include "letdma/model/io.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/obs/sinks.hpp"
#include "letdma/sim/trace_export.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/table.hpp"

using namespace letdma;

namespace {

const char* kDemoApp = R"(# Fig. 1 demo system
platform cores=2 odp_ns=3360 oisr_ns=10000 wc=1 cpu_wc=4 cpu_oh_ns=200
task name=tau1 period_ns=10000000 wcet_ns=2000000 core=0
task name=tau3 period_ns=20000000 wcet_ns=4000000 core=0
task name=tau5 period_ns=40000000 wcet_ns=8000000 core=0
task name=tau2 period_ns=5000000 wcet_ns=1000000 core=1
task name=tau4 period_ns=20000000 wcet_ns=4000000 core=1
task name=tau6 period_ns=40000000 wcet_ns=8000000 core=1
label name=lA bytes=2000 writer=tau1 readers=tau2
label name=lB bytes=4000 writer=tau3 readers=tau4
label name=lC bytes=8000 writer=tau5 readers=tau6
label name=lD bytes=1000 writer=tau2 readers=tau1
label name=lE bytes=3000 writer=tau4 readers=tau3
label name=lF bytes=6000 writer=tau6 readers=tau5
)";

int usage() {
  std::fprintf(
      stderr,
      "usage: letdma_tool [app-file] "
      "[greedy|ls|milp|portfolio|giotto|supervised] "
      "[none|dmat|del] [timeout-seconds]\n"
      "       [--engine <name>] [--budget-ms <ms>] [--certify] "
      "[--faults <spec>]\n"
      "       [--save <file>] [--trace <file>] [--metrics <file>]\n"
      "       [--flight <file>] [--threads <n>] [--deterministic]\n"
      "       [--fingerprint] [--diff <after-app-file>] [-v]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> pos;
  std::string trace_path, metrics_path, save_path, flight_path, diff_path;
  std::string engine_flag, budget_ms_flag, faults_flag, threads_flag;
  bool verbose = false;
  bool certify_flag = false;
  bool deterministic_flag = false;
  bool fingerprint_flag = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto value = [&](std::string* dst) {
      if (a + 1 >= argc) return false;
      *dst = argv[++a];
      return true;
    };
    if (arg == "--trace") {
      if (!value(&trace_path)) return usage();
    } else if (arg == "--metrics") {
      if (!value(&metrics_path)) return usage();
    } else if (arg == "--save") {
      if (!value(&save_path)) return usage();
    } else if (arg == "--flight") {
      if (!value(&flight_path)) return usage();
    } else if (arg == "--engine") {
      if (!value(&engine_flag)) return usage();
    } else if (arg == "--budget-ms") {
      if (!value(&budget_ms_flag)) return usage();
    } else if (arg == "--certify") {
      certify_flag = true;
    } else if (arg == "--threads") {
      if (!value(&threads_flag)) return usage();
    } else if (arg == "--deterministic") {
      deterministic_flag = true;
    } else if (arg == "--fingerprint") {
      fingerprint_flag = true;
    } else if (arg == "--diff") {
      if (!value(&diff_path)) return usage();
    } else if (arg == "--faults") {
      if (!value(&faults_flag)) return usage();
    } else if (arg == "-v") {
      verbose = true;
    } else {
      pos.push_back(arg);
    }
  }

  std::string text = kDemoApp;
  if (!pos.empty() && pos[0] != "-") {
    std::ifstream in(pos[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", pos[0].c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  }
  const std::string scheduler =
      !engine_flag.empty() ? engine_flag
                           : (pos.size() > 1 ? pos[1] : "greedy");
  const std::string objective = pos.size() > 2 ? pos[2] : "del";
  double timeout = pos.size() > 3 ? std::atof(pos[3].c_str()) : 30.0;
  if (!budget_ms_flag.empty()) {
    timeout = std::atof(budget_ms_flag.c_str()) / 1000.0;
  }
  if (timeout < 0) return usage();  // 0 is a legal (already-spent) budget

  // Arm the fault injector: the explicit flag wins over LETDMA_FAULTS.
  try {
    if (!faults_flag.empty()) {
      if (!guard::faults_compiled_in()) {
        std::fprintf(stderr,
                     "warning: --faults given but the injector is compiled "
                     "out (LETDMA_ENABLE_FAULTS=OFF)\n");
      }
      guard::arm(guard::FaultPlan::parse(faults_flag));
    } else {
      guard::arm_from_env();
    }
  } catch (const support::Error& e) {
    std::fprintf(stderr, "bad fault spec: %s\n", e.what());
    return 2;
  }

  // The supervised chain picks the flight-dump destination up from the
  // environment, which keeps the engine factory signature unchanged.
  if (!flight_path.empty()) setenv("LETDMA_FLIGHT_DUMP", flight_path.c_str(), 1);

  // Observability sinks, attached before any scheduling work so solver
  // phase spans and incumbent events are captured.
  obs::Registry& reg = obs::Registry::instance();
  std::shared_ptr<obs::ChromeTraceSink> trace_sink;
  std::shared_ptr<obs::JsonlMetricsSink> metrics_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_shared<obs::ChromeTraceSink>();
    reg.attach(trace_sink);
  }
  if (!metrics_path.empty()) {
    try {
      metrics_sink = std::make_shared<obs::JsonlMetricsSink>(metrics_path);
    } catch (const support::Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    reg.attach(metrics_sink);
  }
  if (verbose) {
    reg.set_log_threshold(obs::Level::kDebug);
    reg.attach(std::make_shared<obs::StderrLogSink>());
  }

  std::unique_ptr<model::Application> app;
  try {
    app = model::read_application(text);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }
  if (fingerprint_flag) {
    const model::Canonicalization canon = model::canonicalize(*app);
    std::printf("%s\n", canon.fingerprint.to_hex().c_str());
    if (verbose) {
      std::fprintf(stderr, "canonical form (%s):\n%s",
                   canon.exact ? "exact" : "inexact", canon.text.c_str());
    }
    return 0;
  }
  let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) {
    std::printf("no inter-core LET communications; nothing to schedule\n");
    return 0;
  }

  // --diff: incremental re-scheduling. Solve the base model through the
  // supervised chain, then repair its schedule onto the changed model
  // instead of re-solving cold.
  if (!diff_path.empty()) {
    engine::Objective eng_obj;
    if (objective == "none") eng_obj = engine::Objective::kFeasibility;
    else if (objective == "dmat") eng_obj = engine::Objective::kMinTransfers;
    else if (objective == "del") eng_obj = engine::Objective::kMinMaxLatencyRatio;
    else return usage();

    std::ifstream in(diff_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", diff_path.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    std::unique_ptr<model::Application> after;
    try {
      after = model::read_application(os.str());
    } catch (const support::Error& e) {
      std::fprintf(stderr, "parse error in %s: %s\n", diff_path.c_str(),
                   e.what());
      return 2;
    }

    const model::ApplicationDiff d = model::diff(*app, *after);
    std::printf("diff: %s (magnitude %.2f, structural distance %.4f)\n",
                d.summary().c_str(), model::magnitude(d),
                model::structural_distance(*app, *after));

    engine::EngineTuning tuning;
    if (!threads_flag.empty()) {
      tuning.milp_threads = std::atoi(threads_flag.c_str());
    }
    tuning.milp_deterministic = deterministic_flag;
    engine::GuardOptions gopt;
    gopt.objective = eng_obj;
    gopt.tuning = tuning;
    const auto [base_out, base_record] =
        engine::solve_supervised(comms, gopt, timeout);
    if (!base_out.feasible()) {
      std::printf("base solve: no schedule (%s)\n",
                  engine::status_name(base_out.status));
      return 1;
    }
    std::printf("base solve: %s via %s, %s = %.4g, %.2fs\n",
                engine::status_name(base_out.status),
                base_out.strategy.c_str(), engine::objective_name(eng_obj),
                base_out.objective, base_out.wall_sec);

    let::LetComms after_comms(*after);
    if (after_comms.comms_at_s0().empty()) {
      std::printf("changed model has no inter-core LET communications; "
                  "nothing to schedule\n");
      return 0;
    }
    engine::IncrementalOptions iopt;
    iopt.objective = eng_obj;
    iopt.guard = gopt;
    engine::IncrementalScheduler incremental(iopt);
    engine::SharedIncumbent sink;
    engine::WarmStart warm;
    warm.schedule = &*base_out.schedule;
    warm.diff = &d;
    engine::Budget budget;
    budget.wall_sec = timeout;
    const engine::ScheduleOutcome out =
        incremental.solve(after_comms, budget, sink, warm);
    if (!out.feasible()) {
      std::printf("repair: no schedule (%s)\n",
                  engine::status_name(out.status));
      return 1;
    }
    const engine::IncrementalRecord& rec = incremental.last_record();
    std::printf("repair: %s via %s (%s), %s = %.4g, %.3fs, "
                "%d improvement(s)\n",
                engine::status_name(out.status), out.strategy.c_str(),
                rec.repair_served ? "repair path" : "supervised fallback",
                engine::objective_name(eng_obj), out.objective, out.wall_sec,
                rec.repair_improvements);
    const guard::Certificate cert =
        engine::certify_outcome(after_comms, out, eng_obj);
    std::printf("certificate: %s\n", cert.summary().c_str());
    if (!save_path.empty()) {
      std::ofstream outf(save_path);
      if (!outf) {
        std::fprintf(stderr, "cannot write %s\n", save_path.c_str());
        return 2;
      }
      outf << let::write_schedule(*after, *out.schedule);
      std::printf("repaired schedule saved to %s\n", save_path.c_str());
    }
    return cert.certified() ? 0 : 1;
  }

  std::unique_ptr<let::ScheduleResult> result;
  if (scheduler == "load") {
    std::ifstream in(objective);  // pos[2] is the schedule file here
    if (!in) {
      std::fprintf(stderr, "cannot open schedule %s\n", objective.c_str());
      return 2;
    }
    std::ostringstream os;
    os << in.rdbuf();
    try {
      result = std::make_unique<let::ScheduleResult>(
          let::read_schedule(comms, os.str()));
    } catch (const support::Error& e) {
      std::fprintf(stderr, "schedule parse error: %s\n", e.what());
      return 2;
    }
  } else {
    engine::Objective eng_obj;
    if (objective == "none") eng_obj = engine::Objective::kFeasibility;
    else if (objective == "dmat") eng_obj = engine::Objective::kMinTransfers;
    else if (objective == "del") eng_obj = engine::Objective::kMinMaxLatencyRatio;
    else return usage();

    engine::EngineTuning tuning;
    if (!threads_flag.empty()) tuning.milp_threads = std::atoi(threads_flag.c_str());
    tuning.milp_deterministic = deterministic_flag;

    std::unique_ptr<engine::Scheduler> sched;
    if (scheduler == "milp" && verbose) {
      // The only engine knob the factory does not expose: solver logging.
      engine::MilpEngineOptions mo;
      mo.objective = eng_obj;
      mo.milp.solver.log = true;
      mo.milp.solver.threads = tuning.milp_threads;
      mo.milp.solver.deterministic = tuning.milp_deterministic;
      sched = std::make_unique<engine::MilpEngine>(mo);
    } else {
      try {
        sched = engine::make_scheduler(scheduler, eng_obj, tuning);
      } catch (const support::Error&) {
        return usage();
      }
    }

    engine::SharedIncumbent sink;
    engine::Budget budget;
    budget.wall_sec = timeout;
    const engine::ScheduleOutcome out = sched->solve(comms, budget, sink);
    if (!out.feasible()) {
      std::printf("engine %s: no schedule (%s)\n", scheduler.c_str(),
                  engine::status_name(out.status));
      return 1;
    }
    std::printf("engine %s: %s, strategy %s, %s = %.4g, %.2fs, "
                "%d incumbent improvement(s)\n",
                scheduler.c_str(), engine::status_name(out.status),
                out.strategy.c_str(), engine::objective_name(eng_obj),
                out.objective, out.wall_sec, sink.improvements());
    result = std::make_unique<let::ScheduleResult>(*out.schedule);
  }

  std::printf("transfers at s0: %zu\n", result->s0_transfers.size());
  for (std::size_t g = 0; g < result->s0_transfers.size(); ++g) {
    const let::DmaTransfer& t = result->s0_transfers[g];
    std::printf("  d%-2zu %s %6lld B :", g + 1,
                t.dir == let::Direction::kWrite ? "W" : "R",
                static_cast<long long>(t.bytes));
    for (const let::Communication& c : t.comms) {
      std::printf(" %s", let::to_string(*app, c).c_str());
    }
    std::printf("\n");
  }
  const auto wc = let::worst_case_latencies(
      comms, result->schedule, let::ReadinessSemantics::kProposed);
  support::TextTable table({"task", "lambda", "lambda/T"});
  for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
    const auto lam = wc[static_cast<std::size_t>(task)];
    const model::Task& t = app->task(model::TaskId{task});
    table.add_row({t.name, support::format_time(lam),
                   support::fmt_double(static_cast<double>(lam) /
                                           static_cast<double>(t.period),
                                       4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\naddress map:\n%s",
              let::render_address_map(result->layout).c_str());

  if (!save_path.empty()) {
    std::ofstream outf(save_path);
    if (!outf) {
      std::fprintf(stderr, "cannot write %s\n", save_path.c_str());
      return 2;
    }
    outf << let::write_schedule(*app, *result);
    std::printf("schedule saved to %s\n", save_path.c_str());
  }

  const auto report =
      let::validate_schedule(comms, result->layout, result->schedule);
  std::printf("validation: %s\n", report.summary().c_str());

  bool certified_ok = true;
  if (certify_flag) {
    const guard::Certificate cert = guard::certify(comms, *result);
    std::printf("certificate: %s\n", cert.summary().c_str());
    certified_ok = cert.certified();
  }

  bool io_error = false;
  if (trace_sink != nullptr) {
    // Simulate the resulting schedule so the trace carries the Fig.-1
    // style per-core/DMA timeline next to the solver events.
    sim::ProtocolSimulator simulator(comms, &result->schedule, {});
    sim::emit_trace_events(*app, simulator.run());
    reg.detach(trace_sink);
    if (trace_sink->write_file(trace_path)) {
      std::printf("trace written to %s (%zu events); open in "
                  "https://ui.perfetto.dev\n",
                  trace_path.c_str(), trace_sink->size());
    } else {
      io_error = true;
    }
  }
  if (metrics_sink != nullptr) {
    reg.detach(metrics_sink);
    std::printf("metrics appended to %s\n", metrics_path.c_str());
  }
  return report.ok() && certified_ok && !io_error ? 0 : 1;
}
