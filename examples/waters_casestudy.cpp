// End-to-end run of the WATERS 2019 case study (Section VII):
//   1. build the nine-task application,
//   2. derive acquisition deadlines via the sensitivity procedure,
//   3. race the engine portfolio (greedy + local search + MILP, OBJ-DEL)
//      under one wall-clock budget for an optimized configuration,
//   4. compare against the three Giotto baselines,
//   5. replay the configuration in the discrete-event simulator.
#include <cstdio>

#include "letdma/analysis/rta.hpp"
#include "letdma/baseline/giotto.hpp"
#include "letdma/engine/portfolio.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/sim/simulator.hpp"
#include "letdma/support/table.hpp"
#include "letdma/waters/waters.hpp"

using namespace letdma;

int main() {
  auto app = waters::make_waters_app();
  std::printf("WATERS 2019: %d tasks, %d labels, H = %s\n", app->num_tasks(),
              app->num_labels(),
              support::format_time(app->hyperperiod()).c_str());

  // Sensitivity procedure with alpha = 0.2.
  const auto sens = analysis::acquisition_deadlines(*app, 0.2);
  if (!sens.feasible) {
    std::printf("sensitivity analysis infeasible\n");
    return 1;
  }
  analysis::apply_acquisition_deadlines(*app, sens.gamma);

  let::LetComms comms(*app);
  std::printf("inter-core communications at s0: %zu over %zu instants\n",
              comms.comms_at_s0().size(), comms.required_instants().size());

  // Portfolio race with the latency-ratio objective: the heuristics give
  // an instant incumbent and warm-start the MILP, which then tightens it.
  engine::PortfolioOptions popt;
  popt.objective = engine::Objective::kMinMaxLatencyRatio;
  engine::PortfolioScheduler portfolio(popt);
  engine::SharedIncumbent sink;
  engine::Budget budget;
  budget.wall_sec = 30.0;
  const engine::ScheduleOutcome ours =
      portfolio.solve(comms, budget, sink);
  if (!ours.feasible()) {
    std::printf("no feasible configuration found\n");
    return 1;
  }
  std::printf("portfolio: %s via %s, %zu transfers at s0, "
              "max lambda/T %.4f (%.1fs)\n",
              engine::status_name(ours.status), ours.strategy.c_str(),
              ours.schedule->s0_transfers.size(), ours.objective,
              ours.wall_sec);

  // Baselines.
  const auto cpu = baseline::giotto_cpu_latencies(comms);
  const auto dma_a = baseline::giotto_dma_a(comms);
  const auto a_lat = baseline::giotto_dma_latencies(comms, dma_a);
  const auto dma_b = baseline::giotto_dma_b(comms, ours.schedule->layout);
  const auto b_lat = baseline::giotto_dma_latencies(comms, dma_b);
  const auto ours_lat = let::worst_case_latencies(
      comms, ours.schedule->schedule, let::ReadinessSemantics::kProposed);

  support::TextTable table(
      {"task", "ours", "Giotto-CPU", "Giotto-DMA-A", "Giotto-DMA-B"});
  for (const std::string& name : waters::task_names()) {
    const int id = app->find_task(name).value;
    table.add_row({name, support::format_time(ours_lat.at(id)),
                   support::format_time(cpu.at(id)),
                   support::format_time(a_lat.at(id)),
                   support::format_time(b_lat.at(id))});
  }
  std::printf("\nWorst-case data-acquisition latencies:\n%s",
              table.render().c_str());

  // Replay in the simulator (one hyperperiod).
  sim::ProtocolSimulator simulator(comms, &ours.schedule->schedule,
                                   {sim::Mode::kProposedDma, 0});
  const sim::SimResult sr = simulator.run();
  std::printf("\nsimulated %zu jobs, deadline misses: %d, DMA busy: %s\n",
              sr.jobs.size(), sr.deadline_misses,
              support::format_time(sr.dma_busy).c_str());

  const auto report = let::validate_schedule(comms, ours.schedule->layout,
                                             ours.schedule->schedule);
  std::printf("validation: %s\n", report.summary().c_str());
  return (report.ok() && sr.all_deadlines_met()) ? 0 : 1;
}
