// letdma_served — the scheduling service daemon.
//
//   letdma_served --socket /tmp/letdma.sock [options]
//
// Serves the newline-delimited JSON protocol of letdma::serve over a Unix
// domain socket: each request carries an application model; the response
// carries a certified schedule, the canonical fingerprint and whether it
// was answered from the solve cache. Runs until SIGINT/SIGTERM, then
// drains gracefully (sheds new work, finishes or cancels in-flight
// solves within the drain budget, compacts the journal, flushes every
// obs sink) and prints the session's cache/admission/journal statistics.
//
// With --journal the solve cache is crash-safe: every certified solve is
// appended to a write-ahead journal, and a restart — even after kill -9 —
// replays it, re-certifying every record before admission, so the daemon
// reopens with a warm cache. A stale socket left behind by a crash is
// removed automatically on startup (a live daemon on the same path is
// detected and refused).
//
// Options:
//   --socket <path>        socket path (default /tmp/letdma-serve.sock)
//   --journal <path>       write-ahead journal for the solve cache
//                          (empty = no durability)
//   --cache-capacity <n>   solve-cache entries (default 1024)
//   --threads <n>          worker threads per connection batch (0 = auto)
//   --max-inflight <n>     per-tenant concurrent request cap (default 16)
//   --max-connections <n>  connection cap, excess sheds (default 256)
//   --max-budget-sec <s>   per-tenant solve budget cap (default 5)
//   --read-timeout-sec <s> idle connection timeout (default 30, 0 = off)
//   --drain-sec <s>        graceful-drain budget on SIGTERM (default 5)
//   --chain <a,b,..>       supervised degradation chain (default
//                          milp,ls,greedy,giotto)
//   --metrics <file>       append the obs event stream as JSONL
//   -v                     verbose logging to stderr
//
// LETDMA_FAULTS in the environment arms the guard fault injector (chaos
// testing of the journal/socket sites included).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "letdma/guard/faults.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/obs/sinks.hpp"
#include "letdma/serve/server.hpp"
#include "letdma/serve/service.hpp"
#include "letdma/support/error.hpp"

using namespace letdma;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: letdma_served [--socket <path>] [--journal <path>]\n"
               "       [--cache-capacity <n>] [--threads <n>] "
               "[--max-inflight <n>]\n"
               "       [--max-connections <n>] [--max-budget-sec <s>] "
               "[--read-timeout-sec <s>]\n"
               "       [--drain-sec <s>] [--chain <a,b,..>] "
               "[--metrics <file>] [-v]\n");
  return 2;
}

std::vector<std::string> split_commas(const std::string& v) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : v) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/letdma-serve.sock";
  std::string metrics_path, chain_flag;
  serve::ServiceOptions service_options;
  serve::ServerOptions server_options;
  double drain_sec = 5.0;
  bool verbose = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto value = [&](std::string* dst) {
      if (a + 1 >= argc) return false;
      *dst = argv[++a];
      return true;
    };
    std::string v;
    if (arg == "--socket") {
      if (!value(&socket_path)) return usage();
    } else if (arg == "--journal") {
      if (!value(&service_options.journal_path)) return usage();
    } else if (arg == "--cache-capacity") {
      if (!value(&v)) return usage();
      service_options.cache_capacity =
          static_cast<std::size_t>(std::atoll(v.c_str()));
    } else if (arg == "--threads") {
      if (!value(&v)) return usage();
      server_options.threads = std::atoi(v.c_str());
    } else if (arg == "--max-inflight") {
      if (!value(&v)) return usage();
      service_options.default_policy.max_inflight = std::atoi(v.c_str());
    } else if (arg == "--max-connections") {
      if (!value(&v)) return usage();
      server_options.max_connections = std::atoi(v.c_str());
    } else if (arg == "--max-budget-sec") {
      if (!value(&v)) return usage();
      service_options.default_policy.max_budget_sec = std::atof(v.c_str());
    } else if (arg == "--read-timeout-sec") {
      if (!value(&v)) return usage();
      server_options.read_timeout_sec = std::atof(v.c_str());
    } else if (arg == "--drain-sec") {
      if (!value(&v)) return usage();
      drain_sec = std::atof(v.c_str());
    } else if (arg == "--chain") {
      if (!value(&chain_flag)) return usage();
    } else if (arg == "--metrics") {
      if (!value(&metrics_path)) return usage();
    } else if (arg == "-v") {
      verbose = true;
    } else {
      return usage();
    }
  }
  if (!chain_flag.empty()) {
    service_options.guard.chain = split_commas(chain_flag);
  }

  obs::Registry& reg = obs::Registry::instance();
  std::shared_ptr<obs::JsonlMetricsSink> metrics_sink;
  if (!metrics_path.empty()) {
    try {
      metrics_sink = std::make_shared<obs::JsonlMetricsSink>(metrics_path);
    } catch (const support::Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    reg.attach(metrics_sink);
  }
  if (verbose) {
    reg.set_log_threshold(obs::Level::kDebug);
    reg.attach(std::make_shared<obs::StderrLogSink>());
  }
  try {
    if (guard::arm_from_env()) {
      std::fprintf(stderr, "letdma_served: fault injector armed from "
                           "LETDMA_FAULTS\n");
    }
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // broken clients must not kill the server

  std::unique_ptr<serve::Service> service;
  try {
    // Construction replays the journal (if any): parse, re-canonicalize,
    // re-certify, admit — then compacts away anything that did not
    // survive.
    service = std::make_unique<serve::Service>(service_options);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  server_options.socket_path = socket_path;
  serve::Server server(*service, server_options);
  try {
    server.start();
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  {
    const serve::ServiceStats boot = service->stats();
    std::printf("letdma_served listening on %s\n", socket_path.c_str());
    if (!service_options.journal_path.empty()) {
      std::printf(
          "journal %s: %lld recovered, %lld corrupt, %lld uncertified, "
          "%lld stale, %lld torn bytes\n",
          service_options.journal_path.c_str(),
          static_cast<long long>(boot.journal.recovered),
          static_cast<long long>(boot.journal.dropped_corrupt),
          static_cast<long long>(boot.journal.dropped_uncertified),
          static_cast<long long>(boot.journal.dropped_stale),
          static_cast<long long>(boot.journal.torn_bytes));
    }
    std::fflush(stdout);
  }

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful drain: shed new work, let in-flight finish (or cancel it
  // when the budget runs out), compact the journal to the live cache.
  const bool clean = server.drain(drain_sec);
  if (!clean) {
    std::fprintf(stderr, "drain budget spent, in-flight solves were "
                         "cancelled\n");
  }

  const serve::ServiceStats stats = service->stats();
  std::printf("requests: %lld (rejected %lld, certified %lld)\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.rejected),
              static_cast<long long>(stats.certified));
  std::printf("cache: %lld hits, %lld misses (%.1f%% hit rate), "
              "%lld evictions, %lld invalidations, %zu/%zu entries\n",
              static_cast<long long>(stats.cache.hits),
              static_cast<long long>(stats.cache.misses),
              100.0 * stats.cache.hit_rate(),
              static_cast<long long>(stats.cache.evictions),
              static_cast<long long>(stats.cache.invalidations),
              stats.cache.size, stats.cache.capacity);
  if (!service_options.journal_path.empty()) {
    std::printf("journal: %lld appended, %lld recovered, %lld compactions\n",
                static_cast<long long>(stats.journal.appended),
                static_cast<long long>(stats.journal.recovered),
                static_cast<long long>(stats.journal.compactions));
  }
  // Signal-path exit must not depend on atexit: flush every sink now so
  // the final journal/drain counters reach the JSONL file.
  reg.flush_sinks();
  if (metrics_sink != nullptr) reg.detach(metrics_sink);
  return 0;
}
