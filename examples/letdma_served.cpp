// letdma_served — the scheduling service daemon.
//
//   letdma_served --socket /tmp/letdma.sock [options]
//
// Serves the newline-delimited JSON protocol of letdma::serve over a Unix
// domain socket: each request carries an application model; the response
// carries a certified schedule, the canonical fingerprint and whether it
// was answered from the solve cache. Runs until SIGINT/SIGTERM, then
// shuts down cleanly (joins every connection, unlinks the socket) and
// prints the session's cache/admission statistics.
//
// Options:
//   --socket <path>        socket path (default /tmp/letdma-serve.sock)
//   --cache-capacity <n>   solve-cache entries (default 1024)
//   --threads <n>          worker threads per connection batch (0 = auto)
//   --max-inflight <n>     per-tenant concurrent request cap (default 16)
//   --max-budget-sec <s>   per-tenant solve budget cap (default 5)
//   --chain <a,b,..>       supervised degradation chain (default
//                          milp,ls,greedy,giotto)
//   --metrics <file>       append the obs event stream as JSONL
//   -v                     verbose logging to stderr
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "letdma/obs/obs.hpp"
#include "letdma/obs/sinks.hpp"
#include "letdma/serve/server.hpp"
#include "letdma/serve/service.hpp"
#include "letdma/support/error.hpp"

using namespace letdma;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr,
               "usage: letdma_served [--socket <path>] [--cache-capacity <n>]"
               " [--threads <n>]\n"
               "       [--max-inflight <n>] [--max-budget-sec <s>] "
               "[--chain <a,b,..>]\n"
               "       [--metrics <file>] [-v]\n");
  return 2;
}

std::vector<std::string> split_commas(const std::string& v) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : v) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/letdma-serve.sock";
  std::string metrics_path, chain_flag;
  serve::ServiceOptions service_options;
  int threads = 0;
  bool verbose = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto value = [&](std::string* dst) {
      if (a + 1 >= argc) return false;
      *dst = argv[++a];
      return true;
    };
    std::string v;
    if (arg == "--socket") {
      if (!value(&socket_path)) return usage();
    } else if (arg == "--cache-capacity") {
      if (!value(&v)) return usage();
      service_options.cache_capacity =
          static_cast<std::size_t>(std::atoll(v.c_str()));
    } else if (arg == "--threads") {
      if (!value(&v)) return usage();
      threads = std::atoi(v.c_str());
    } else if (arg == "--max-inflight") {
      if (!value(&v)) return usage();
      service_options.default_policy.max_inflight = std::atoi(v.c_str());
    } else if (arg == "--max-budget-sec") {
      if (!value(&v)) return usage();
      service_options.default_policy.max_budget_sec = std::atof(v.c_str());
    } else if (arg == "--chain") {
      if (!value(&chain_flag)) return usage();
    } else if (arg == "--metrics") {
      if (!value(&metrics_path)) return usage();
    } else if (arg == "-v") {
      verbose = true;
    } else {
      return usage();
    }
  }
  if (!chain_flag.empty()) {
    service_options.guard.chain = split_commas(chain_flag);
  }

  obs::Registry& reg = obs::Registry::instance();
  std::shared_ptr<obs::JsonlMetricsSink> metrics_sink;
  if (!metrics_path.empty()) {
    try {
      metrics_sink = std::make_shared<obs::JsonlMetricsSink>(metrics_path);
    } catch (const support::Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
    reg.attach(metrics_sink);
  }
  if (verbose) {
    reg.set_log_threshold(obs::Level::kDebug);
    reg.attach(std::make_shared<obs::StderrLogSink>());
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // broken clients must not kill the server

  serve::Service service(service_options);
  serve::ServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.threads = threads;
  serve::Server server(service, server_options);
  try {
    server.start();
  } catch (const support::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("letdma_served listening on %s\n", socket_path.c_str());

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  const serve::ServiceStats stats = service.stats();
  std::printf("requests: %lld (rejected %lld, certified %lld)\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.rejected),
              static_cast<long long>(stats.certified));
  std::printf("cache: %lld hits, %lld misses (%.1f%% hit rate), "
              "%lld evictions, %lld invalidations, %zu/%zu entries\n",
              static_cast<long long>(stats.cache.hits),
              static_cast<long long>(stats.cache.misses),
              100.0 * stats.cache.hit_rate(),
              static_cast<long long>(stats.cache.evictions),
              static_cast<long long>(stats.cache.invalidations),
              stats.cache.size, stats.cache.capacity);
  if (metrics_sink != nullptr) reg.detach(metrics_sink);
  return 0;
}
