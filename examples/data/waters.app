# letdma application v1
platform cores=4 odp_ns=3360 oisr_ns=10000 wc=1 cpu_wc=4 cpu_oh_ns=200
task name=LID period_ns=33000000 wcet_ns=6000000 core=0 priority=0
task name=DASM period_ns=5000000 wcet_ns=1000000 core=3 priority=0
task name=CAN period_ns=10000000 wcet_ns=1000000 core=3 priority=1
task name=EKF period_ns=15000000 wcet_ns=2000000 core=2 priority=0
task name=PLAN period_ns=15000000 wcet_ns=4000000 core=2 priority=1
task name=SFM period_ns=33000000 wcet_ns=7000000 core=0 priority=1
task name=LOC period_ns=400000000 wcet_ns=60000000 core=1 priority=2
task name=LDET period_ns=66000000 wcet_ns=10000000 core=1 priority=0
task name=DET period_ns=200000000 wcet_ns=30000000 core=1 priority=1
label name=lidar_points bytes=262144 writer=LID readers=LOC,DET
label name=can_status bytes=1024 writer=CAN readers=EKF,DASM
label name=pose bytes=2048 writer=LOC readers=EKF,PLAN
label name=state_est bytes=4096 writer=EKF readers=PLAN
label name=sfm_depth bytes=65536 writer=SFM readers=LDET,DET
label name=objects bytes=16384 writer=DET readers=PLAN
label name=lanes bytes=8192 writer=LDET readers=PLAN
label name=trajectory bytes=8192 writer=PLAN readers=DASM
label name=commands bytes=512 writer=DASM readers=CAN
