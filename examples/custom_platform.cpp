// Customizing the platform model: DMA timing, CPU copy costs, and a
// three-core pipeline. Demonstrates how the per-transfer overhead changes
// the trade-off between many small transfers and few merged ones, and how
// to drive the simulator directly.
#include <cstdio>
#include <memory>

#include "letdma/let/greedy.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/sim/simulator.hpp"
#include "letdma/support/table.hpp"

using namespace letdma;

namespace {

std::unique_ptr<model::Application> make_pipeline(model::DmaParams dma) {
  model::Platform platform(3, dma);
  auto app = std::make_unique<model::Application>(platform);
  const auto sensor = app->add_task("sensor", support::ms(10),
                                    support::ms(1), model::CoreId{0});
  const auto filter = app->add_task("filter", support::ms(10),
                                    support::ms(3), model::CoreId{1});
  const auto control = app->add_task("control", support::ms(20),
                                     support::ms(4), model::CoreId{2});
  app->add_label("raw", 32768, sensor, {filter});
  app->add_label("filtered", 8192, filter, {control});
  app->add_label("setpoint", 512, control, {filter});
  app->finalize();
  return app;
}

}  // namespace

int main() {
  support::TextTable table({"o_DP", "o_ISR", "w_c (ns/B)", "transfers",
                            "max lambda", "deadline misses"});
  // Sweep the DMA cost model: a fast engine (low overhead, high bandwidth)
  // versus a slow one.
  struct Config {
    double odp_us, oisr_us, wc;
  };
  for (const Config cfg : {Config{3.36, 10.0, 1.0}, Config{1.0, 2.0, 0.25},
                           Config{10.0, 20.0, 4.0}}) {
    model::DmaParams dma;
    dma.programming_overhead = support::us(cfg.odp_us);
    dma.isr_overhead = support::us(cfg.oisr_us);
    dma.copy_cost_ns_per_byte = cfg.wc;
    const auto app = make_pipeline(dma);
    let::LetComms comms(*app);
    const let::ScheduleResult sched = let::GreedyScheduler(comms).build();
    const auto report =
        let::validate_schedule(comms, sched.layout, sched.schedule);
    if (!report.ok()) {
      std::printf("configuration invalid: %s\n", report.summary().c_str());
      return 1;
    }
    const auto wc = let::worst_case_latencies(
        comms, sched.schedule, let::ReadinessSemantics::kProposed);
    support::Time worst = 0;
    for (const auto lam : wc) worst = std::max(worst, lam);
    sim::ProtocolSimulator simulator(comms, &sched.schedule,
                                     {sim::Mode::kProposedDma, 0});
    const sim::SimResult sr = simulator.run();
    table.add_row({support::format_time(dma.programming_overhead),
                   support::format_time(dma.isr_overhead),
                   support::fmt_double(cfg.wc, 2),
                   std::to_string(sched.s0_transfers.size()),
                   support::format_time(worst),
                   std::to_string(sr.deadline_misses)});
  }
  std::printf("DMA cost-model sweep on a 3-core pipeline:\n%s",
              table.render().c_str());
  return 0;
}
